//! **Figure 1** — the applied/pending update grid.
//!
//! The paper's only figure illustrates the accumulator model of §6.1: a grid
//! of gradient updates (rows = iterations, columns = model entries), where
//! some updates have been applied to shared memory (red in the paper) and
//! some are still pending (black), with a cursor marking each thread's write
//! progress. This experiment regenerates that picture from a *real*
//! adversarial execution: a mid-execution snapshot (showing in-flight rows
//! with `.` pending cells) and the final grid.

use crate::ExperimentOutput;
use asgd_core::runner::LockFreeSgd;
use asgd_shmem::op::OpTag;
use asgd_shmem::sched::BoundedDelayAdversary;
use asgd_shmem::trace::{EventKind, Trace, TraceLevel};

/// The step at which the most iterations are simultaneously mid-write.
fn step_of_max_in_flight(trace: &Trace) -> u64 {
    let mut open = 0_i64;
    let mut best = (0_i64, 0_u64);
    for ev in trace.events() {
        if let EventKind::Op {
            tag: OpTag::ModelWrite { first, last, .. },
            ..
        } = ev.kind
        {
            if first {
                open += 1;
            }
            if open > best.0 {
                best = (open, ev.step);
            }
            if last {
                open -= 1;
            }
        }
    }
    best.1
}

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig1");
    let d = 6;
    let iterations = if quick { 8 } else { 16 };
    let oracle = super::quad(d, 0.8);
    let run = LockFreeSgd::builder(oracle)
        .threads(3)
        .iterations(iterations)
        .learning_rate(0.1)
        .initial_point(vec![1.0; d])
        .scheduler(BoundedDelayAdversary::new(3))
        .trace(TraceLevel::Events)
        .seed(2024)
        .run();
    let trace = run
        .execution
        .trace
        .as_ref()
        .expect("trace requested for fig1");
    // Snapshot at the moment of maximal write-phase overlap, so in-flight
    // rows with pending cells are visible (the paper's figure shows exactly
    // such a moment).
    let mid_step = step_of_max_in_flight(trace);
    out.notes.push(format!(
        "mid-execution snapshot (step {mid_step} of {}):\n{}",
        run.execution.steps,
        trace.update_grid(d, mid_step).render()
    ));
    out.notes.push(format!(
        "final grid:\n{}",
        trace.update_grid(d, run.execution.steps).render()
    ));
    out.notes.push(format!(
        "contention: tau_max={} tau_avg={:.2} (n=3, delay budget 3)",
        run.execution.contention.tau_max(),
        run.execution.contention.tau_avg()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_renders_applied_and_structure() {
        let out = run(true);
        assert_eq!(out.notes.len(), 3);
        let final_grid = &out.notes[1];
        assert!(final_grid.contains('#'), "applied cells rendered");
        assert!(final_grid.contains("t=1"), "iterations numbered");
        // All 8 iterations appear in the final grid.
        assert!(final_grid.contains("t=8"));
    }

    #[test]
    fn adversary_leaves_pending_cells_mid_execution() {
        let out = run(true);
        let snapshot = &out.notes[0];
        // Under a delay adversary, the mid-execution snapshot shows either a
        // pending cell or at least renders the grid header.
        assert!(snapshot.contains("update grid"));
    }
}
