//! [`ModelRegistry`] — many named training runs served concurrently.
//!
//! [`ModelService`] owns *one* run; the registry
//! generalises it to a multi-tenant host: models are **created** under a
//! unique name, **addressed** by a compact numeric [`ModelId`] (what the
//! wire protocol puts in request frames), and **dropped** when their
//! traffic goes away. Every hosted run is submitted through one shared
//! [`Driver`], and each model carries its own [`ReadMode`] — a registry can
//! serve a live-read model next to a snapshot-read one.
//!
//! Lookup after drop is a typed error ([`ServeError::NoSuchModelId`] /
//! [`ServeError::NoSuchModel`]), never a panic: a front-end keeps answering
//! queries for the models that still exist while one tenant churns.
//! Handles obtained *before* a drop stay readable (the underlying
//! [`ModelReader`](asgd_driver::ModelReader) outlives the run); the drop
//! cancels training and unpublishes the name and id.
//!
//! The create/query/drop lifecycle is model-checked in `asgd-chaos`
//! (`RegistryModel`): the lock-recheck-insert shape used by `create` keeps
//! both name→id and id→entry maps coherent on every bounded-preemption
//! schedule, while a split check-then-insert variant is caught orphaning
//! an entry with a single preemption.

use crate::error::ServeError;
use crate::service::ModelService;
use crate::spec::ReadMode;
use asgd_driver::{Driver, DriverError, RunReport, RunSpec};
use asgd_hogwild::snapshot::lock_recovered;
use asgd_oracle::{BackpressurePolicy, IngressQueue, StreamingOracle};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Longest accepted model name, in bytes. The wire protocol's model-stats
/// frame carries names behind a `u16` length, but practical names are
/// short; the cap keeps hostile create calls from bloating the registry.
pub const MAX_MODEL_NAME_LEN: usize = 255;

/// Compact identifier of a hosted model — the address request frames carry.
/// Ids are assigned once, increase monotonically, and are never reused, so
/// a query racing a drop/create cycle can never silently hit the *wrong*
/// model: a stale id is a typed error, not a different tenant's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub u32);

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model#{}", self.0)
    }
}

/// A point-in-time statistics snapshot of one hosted model (the payload of
/// the wire protocol's model-stats response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// The model's registry id.
    pub id: u32,
    /// The model's unique name.
    pub name: String,
    /// Model dimension `d`.
    pub dim: u64,
    /// How queries read this model.
    pub mode: ReadMode,
    /// Training iterations claimed so far.
    pub iterations: u64,
    /// Snapshot versions published so far.
    pub snapshots: u64,
    /// True once the training run finished (normally or cancelled).
    pub finished: bool,
    /// Staleness of the latest published snapshot, in training iterations
    /// (`iterations − published_at`; `None` before the first publication).
    pub staleness: Option<u64>,
    /// Per-shard applied-update counters (the measured per-range τ rates a
    /// delay-adaptive consumer differences between calls). Empty for flat
    /// stores.
    pub shard_updates: Vec<u64>,
}

/// One hosted model: its identity plus the [`ModelService`] that owns the
/// training run.
pub struct ModelEntry {
    id: ModelId,
    name: String,
    mode: ReadMode,
    service: ModelService,
    /// The live ingress queue for streaming models (`None` for models
    /// trained purely on their spec-built workload). Submit-observe
    /// traffic lands here.
    ingress: Option<IngressQueue>,
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("service", &self.service)
            .field("ingress", &self.ingress.is_some())
            .finish()
    }
}

impl ModelEntry {
    /// The registry id queries address this model by.
    #[must_use]
    pub fn id(&self) -> ModelId {
        self.id
    }

    /// The unique name the model was created under.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How queries read this model (fixed at creation).
    #[must_use]
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// The serving service owning the training run.
    #[must_use]
    pub fn service(&self) -> &ModelService {
        &self.service
    }

    /// The model's live ingress queue (`None` unless created through
    /// [`ModelRegistry::create_streaming`]). Pushing an
    /// [`Observation`](asgd_oracle::Observation) here feeds the trainer's
    /// [`StreamingOracle`] directly.
    #[must_use]
    pub fn ingress(&self) -> Option<&IngressQueue> {
        self.ingress.as_ref()
    }

    /// A point-in-time statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        let reader = self.service.reader();
        let iterations = reader.iterations();
        // (version, iteration) of the latest snapshot; staleness is how far
        // training has advanced past the published point.
        let staleness = reader
            .snapshot_tag()
            .map(|(_, at)| iterations.saturating_sub(at));
        // Flat stores have no per-shard counters: shard_updates stays empty.
        let mut shard_updates = Vec::new();
        let _ = reader.shard_updates(&mut shard_updates);
        ModelStats {
            id: self.id.0,
            name: self.name.clone(),
            dim: reader.dimension() as u64,
            mode: self.mode,
            iterations,
            snapshots: reader.snapshot_version(),
            finished: self.service.is_finished(),
            staleness,
            shard_updates,
        }
    }
}

/// The name/id maps behind one mutex: every mutation (create, drop) swaps
/// both maps atomically, so a name and its id can never disagree.
#[derive(Default)]
struct Inner {
    by_name: HashMap<String, ModelId>,
    by_id: HashMap<u32, Arc<ModelEntry>>,
    next_id: u32,
}

/// A multi-tenant model host: named concurrent training runs sharing one
/// [`Driver`], each served under its own [`ReadMode`].
pub struct ModelRegistry {
    driver: Driver,
    inner: Mutex<Inner>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_recovered(&self.inner);
        f.debug_struct("ModelRegistry")
            .field("models", &inner.by_id.len())
            .field("next_id", &inner.next_id)
            .finish_non_exhaustive()
    }
}

impl ModelRegistry {
    /// An empty registry with its own [`Driver`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_driver(Driver::new())
    }

    /// An empty registry submitting every hosted run through `driver`.
    #[must_use]
    pub fn with_driver(driver: Driver) -> Self {
        Self {
            driver,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Creates (and starts training) a model under a unique `name`.
    ///
    /// Live-mode models skip strided snapshot publication entirely (the
    /// stride is forced to `u64::MAX`, leaving only the claim-0 and final
    /// publications), exactly like `ServeSpec::run` — live queries never
    /// consume snapshots, so trainers must not pay the strided O(d) copy.
    ///
    /// Duplicate-name races are safe: the service is started *before* the
    /// name is claimed, and the loser of a race (or a straight duplicate)
    /// has its just-started run cancelled before the error returns.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateModel`] when the name is taken,
    /// [`ServeError::InvalidSpec`] for an empty or over-long name, plus
    /// everything [`ModelService::start`] can return.
    pub fn create(
        &self,
        name: &str,
        train: &RunSpec,
        mode: ReadMode,
        publish_stride: u64,
    ) -> Result<ModelId, ServeError> {
        self.create_inner(name, train, mode, publish_stride, None)
    }

    /// Creates a **streaming** model: training consumes live labeled
    /// observations from a fresh bounded [`IngressQueue`] (capacity and
    /// backpressure policy given here) through a [`StreamingOracle`], and
    /// falls back to the spec-built workload (the *prior*) whenever the
    /// queue is starved — so the trainer never stalls waiting for traffic.
    ///
    /// The queue is reachable from the returned entry via
    /// [`ModelEntry::ingress`]; the wire protocol's submit-observe opcode
    /// routes into it. Predict queries keep evaluating against a held-out
    /// prior instance, never the live stream.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelRegistry::create`].
    pub fn create_streaming(
        &self,
        name: &str,
        train: &RunSpec,
        mode: ReadMode,
        publish_stride: u64,
        capacity: usize,
        policy: BackpressurePolicy,
    ) -> Result<ModelId, ServeError> {
        let prior = train.oracle.build().map_err(DriverError::from)?;
        let queue = IngressQueue::new(capacity, policy);
        let oracle: Arc<dyn asgd_oracle::GradientOracle> =
            Arc::new(StreamingOracle::new(prior, queue.clone()));
        self.create_inner(name, train, mode, publish_stride, Some((oracle, queue)))
    }

    fn create_inner(
        &self,
        name: &str,
        train: &RunSpec,
        mode: ReadMode,
        publish_stride: u64,
        streaming: Option<(Arc<dyn asgd_oracle::GradientOracle>, IngressQueue)>,
    ) -> Result<ModelId, ServeError> {
        if name.is_empty() {
            return Err(ServeError::InvalidSpec(
                "model name must not be empty".to_string(),
            ));
        }
        if name.len() > MAX_MODEL_NAME_LEN {
            return Err(ServeError::InvalidSpec(format!(
                "model name exceeds {MAX_MODEL_NAME_LEN} bytes ({} given)",
                name.len()
            )));
        }
        // Fast-path duplicate check without starting a run; the
        // authoritative check re-runs under the lock below.
        if self.resolve(name).is_some() {
            return Err(ServeError::DuplicateModel(name.to_string()));
        }
        let stride = match mode {
            ReadMode::Snapshot => publish_stride,
            ReadMode::Live => u64::MAX,
        };
        let (train_oracle, ingress) = match streaming {
            Some((oracle, queue)) => (Some(oracle), Some(queue)),
            None => (None, None),
        };
        let service =
            ModelService::start_with_oracle(&self.driver, train, stride, None, train_oracle)?;
        let mut inner = lock_recovered(&self.inner);
        if inner.by_name.contains_key(name) {
            // Lost a create race: tear the fresh run down outside the maps.
            drop(inner);
            let _ = service.stop();
            // A raced streaming queue dies with its run: close it so any
            // producer already holding a clone gets a typed error instead
            // of feeding a cancelled trainer.
            if let Some(queue) = &ingress {
                queue.close();
            }
            return Err(ServeError::DuplicateModel(name.to_string()));
        }
        let id = ModelId(inner.next_id);
        inner.next_id += 1;
        let entry = Arc::new(ModelEntry {
            id,
            name: name.to_string(),
            mode,
            service,
            ingress,
        });
        inner.by_name.insert(name.to_string(), id);
        inner.by_id.insert(id.0, entry);
        Ok(id)
    }

    /// Resolves a name to its id (`None` when absent).
    #[must_use]
    pub fn resolve(&self, name: &str) -> Option<ModelId> {
        lock_recovered(&self.inner).by_name.get(name).copied()
    }

    /// The entry addressed by `id`.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchModelId`] when no live model has this id
    /// (never created, or already dropped).
    pub fn lookup(&self, id: ModelId) -> Result<Arc<ModelEntry>, ServeError> {
        lock_recovered(&self.inner)
            .by_id
            .get(&id.0)
            .cloned()
            .ok_or(ServeError::NoSuchModelId(id.0))
    }

    /// The entry named `name`.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchModel`] when the name is not registered.
    pub fn attach(&self, name: &str) -> Result<Arc<ModelEntry>, ServeError> {
        let inner = lock_recovered(&self.inner);
        let id = inner
            .by_name
            .get(name)
            .ok_or_else(|| ServeError::NoSuchModel(name.to_string()))?;
        Ok(Arc::clone(
            inner
                .by_id
                .get(&id.0)
                .expect("name and id maps mutate together"),
        ))
    }

    /// Every live entry, in id order.
    #[must_use]
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        let inner = lock_recovered(&self.inner);
        let mut entries: Vec<_> = inner.by_id.values().cloned().collect();
        entries.sort_by_key(|e| e.id);
        entries
    }

    /// Number of live models.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_recovered(&self.inner).by_id.len()
    }

    /// True when no model is hosted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock_recovered(&self.inner).by_id.is_empty()
    }

    /// Drops the model named `name`: unpublishes the name and id first
    /// (new lookups fail immediately with a typed error), then cancels its
    /// training run and waits for the (partial) report. Readers attached
    /// before the drop stay usable — they observe the cancelled run's
    /// final published state.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchModel`] when the name is not registered,
    /// [`ServeError::Driver`] when the run itself failed.
    pub fn drop_model(&self, name: &str) -> Result<RunReport, ServeError> {
        let entry = {
            let mut inner = lock_recovered(&self.inner);
            let id = inner
                .by_name
                .remove(name)
                .ok_or_else(|| ServeError::NoSuchModel(name.to_string()))?;
            inner
                .by_id
                .remove(&id.0)
                .expect("name and id maps mutate together")
        };
        // Close the ingress first so producers holding queue clones fail
        // with a typed error instead of feeding a cancelled trainer.
        if let Some(queue) = &entry.ingress {
            queue.close();
        }
        entry.service.stop().map_err(ServeError::Driver)
    }

    /// Drops every model, returning `(name, outcome)` pairs in id order.
    /// The registry is empty afterwards.
    pub fn shutdown(&self) -> Vec<(String, Result<RunReport, DriverError>)> {
        let entries = {
            let mut inner = lock_recovered(&self.inner);
            let mut entries: Vec<_> = inner.by_id.drain().map(|(_, e)| e).collect();
            inner.by_name.clear();
            entries.sort_by_key(|e| e.id);
            entries
        };
        entries
            .into_iter()
            .map(|e| {
                if let Some(queue) = &e.ingress {
                    queue.close();
                }
                (e.name.clone(), e.service.stop())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_driver::BackendKind;
    use asgd_oracle::OracleSpec;

    fn train(dim: usize) -> RunSpec {
        RunSpec::new(
            OracleSpec::new("noisy-quadratic", dim).sigma(0.1),
            BackendKind::Hogwild,
        )
        .threads(1)
        .iterations(20_000)
        .learning_rate(0.02)
        .x0(vec![1.0; dim])
        .seed(3)
    }

    #[test]
    fn create_lookup_drop_lifecycle() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        let a = registry
            .create("ranker", &train(4), ReadMode::Snapshot, 128)
            .expect("creates");
        let b = registry
            .create("scorer", &train(6), ReadMode::Live, 128)
            .expect("creates");
        assert_ne!(a, b);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.resolve("ranker"), Some(a));
        assert_eq!(registry.lookup(a).unwrap().name(), "ranker");
        assert_eq!(registry.attach("scorer").unwrap().id(), b);
        assert_eq!(registry.attach("scorer").unwrap().mode(), ReadMode::Live);
        let stats: Vec<ModelStats> = registry.list().iter().map(|e| e.stats()).collect();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "ranker");
        assert_eq!(stats[0].dim, 4);
        assert_eq!(stats[1].dim, 6);
        let report = registry.drop_model("ranker").expect("drops");
        assert!(report.iterations > 0);
        assert_eq!(registry.len(), 1);
        // Dropped addresses are typed errors, and ids are never reused.
        assert!(matches!(
            registry.lookup(a),
            Err(ServeError::NoSuchModelId(id)) if id == a.0
        ));
        assert!(matches!(
            registry.drop_model("ranker"),
            Err(ServeError::NoSuchModel(_))
        ));
        let c = registry
            .create("ranker", &train(4), ReadMode::Snapshot, 128)
            .expect("name free again after drop");
        assert!(c.0 > b.0, "ids increase monotonically, no reuse");
        for (name, outcome) in registry.shutdown() {
            outcome.unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(registry.is_empty());
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let registry = ModelRegistry::new();
        registry
            .create("m", &train(4), ReadMode::Snapshot, 64)
            .expect("creates");
        assert!(matches!(
            registry.create("m", &train(4), ReadMode::Snapshot, 64),
            Err(ServeError::DuplicateModel(name)) if name == "m"
        ));
        assert!(matches!(
            registry.create("", &train(4), ReadMode::Snapshot, 64),
            Err(ServeError::InvalidSpec(_))
        ));
        let long = "x".repeat(MAX_MODEL_NAME_LEN + 1);
        assert!(matches!(
            registry.create(&long, &train(4), ReadMode::Snapshot, 64),
            Err(ServeError::InvalidSpec(_))
        ));
        assert_eq!(registry.len(), 1);
        registry.shutdown();
    }

    #[test]
    fn live_mode_models_skip_strided_publication() {
        let registry = ModelRegistry::new();
        let id = registry
            .create("live", &train(4), ReadMode::Live, 64)
            .expect("creates");
        let entry = registry.lookup(id).unwrap();
        assert_eq!(entry.service().hook().publish_stride(), u64::MAX);
        registry.shutdown();
    }

    #[test]
    fn streaming_models_expose_a_live_ingress_queue() {
        use asgd_oracle::Observation;
        let registry = ModelRegistry::new();
        let spec = train(4).iterations(200_000);
        let id = registry
            .create_streaming(
                "stream",
                &spec,
                ReadMode::Live,
                64,
                32,
                BackpressurePolicy::Block,
            )
            .expect("creates");
        let entry = registry.lookup(id).unwrap();
        let queue = entry.ingress().expect("streaming entries carry a queue");
        assert_eq!(queue.capacity(), 32);
        // Observations pushed here are consumed by the live trainer.
        for _ in 0..16 {
            queue
                .push(Observation::new(vec![(0, 1.0), (2, -0.5)], 0.25))
                .expect("queue open");
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while queue.counters().popped() < 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "trainer never drained"
            );
            std::thread::yield_now();
        }
        // Non-streaming entries have no ingress.
        let plain = registry
            .create("plain", &train(4), ReadMode::Snapshot, 64)
            .expect("creates");
        assert!(registry.lookup(plain).unwrap().ingress().is_none());
        // Dropping the streaming model closes its queue: producer clones
        // fail typed instead of feeding a cancelled trainer.
        let producer = queue.clone();
        registry.drop_model("stream").expect("drops");
        assert!(matches!(
            producer.push(Observation::new(vec![(0, 1.0)], 0.0)),
            Err(asgd_oracle::IngressError::Closed)
        ));
        registry.shutdown();
    }

    #[test]
    fn readers_survive_a_drop() {
        let registry = ModelRegistry::new();
        let id = registry
            .create("m", &train(4), ReadMode::Snapshot, 64)
            .expect("creates");
        let entry = registry.lookup(id).unwrap();
        let reader = entry.service().reader();
        let report = registry.drop_model("m").expect("drops");
        // The pre-drop handle still reads the final published state.
        let snap = reader.snapshot().expect("final publication");
        assert_eq!(snap.values, report.final_model);
        let mut live = vec![0.0; 4];
        reader.read_live(&mut live);
        assert_eq!(live, report.final_model);
    }
}
