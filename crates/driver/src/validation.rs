//! Empirical theory validation: the paper's formulas as an executable check.
//!
//! The theory crate computes what the paper *promises* — learning rates
//! (Eq. 12), horizons (Corollary 6.7), epoch budgets (Corollary 7.1) — and
//! the driver measures what the backends *do*. This module closes the loop:
//! a [`ValidationPlan`] derives, for every `(backend, n, ε)` grid cell,
//!
//! 1. a step size `α` from the **Eq. 12** rate (or a caller override),
//!    checked against the Lemma 6.6 stability condition through
//!    [`RateSupermartingale::try_new`] — an unstable rate surfaces as
//!    [`DriverError::InvalidSpec`], never as a panic inside a worker thread;
//! 2. a horizon `T` from **Corollary 6.7** (`bounds::corollary_6_7_horizon`
//!    at the plan's failure-probability target) and, for the Algorithm 2
//!    backends, a halving-epoch budget from **Corollary 7.1**
//!    (`corollary_7_1::{epoch_count, total_iterations}` with `T` per epoch);
//! 3. the predicted failure-probability bound for that configuration.
//!    Eq. 13 is a statement about the Eq. 12 rate specifically, so an
//!    *overridden* `α` is instead judged through **Theorem 6.5** — horizon
//!    and bound from `E[W₀]/((1 − α²HLMC√d)·T)` with `H`, `E[W₀]` taken
//!    from the Lemma 6.6 supermartingale at that `α` (preconditions that
//!    fail at the override are errors, not silent vacuous cells);
//!
//! materialises one [`RunSpec`] per trial seed, executes them on the
//! session driver's bounded pool ([`Driver::run_many`]), and aggregates the
//! measured failure frequency into a Wilson 95% interval
//! ([`ProbabilityEstimate`]). The per-cell verdict is
//! [`ProbabilityEstimate::consistent_with_upper_bound`]: a valid upper
//! bound must not sit below the measurement's lower confidence limit.
//!
//! Two criteria cover the seven backends:
//!
//! * **hitting** (`sequential`, `simulated-lockfree`, `hogwild`,
//!   `guarded-epoch`): the failure event is `F_T` — the run never enters
//!   the success region `S = {‖x − x*‖² ≤ ε}` within `T` iterations — and
//!   the bound is Eq. 13 evaluated at the derived horizon. Native backends
//!   report their observable proxy (first claim whose freshly read view
//!   qualified); the simulated lock-free backend runs under the
//!   bounded-delay adversary at the plan's `τ_max`, so the bound's
//!   contention premise is actually exercised.
//! * **terminal** (`simulated-fullsgd`, `native-fullsgd`): Corollary 7.1
//!   guarantees `E‖r − x*‖ ≤ √ε` after the derived epochs, so by Markov's
//!   inequality `P(‖r − x*‖ > 2√ε) ≤ ½` — the failure event is
//!   `‖r − x*‖² > 4ε` and the bound is [`TERMINAL_FAILURE_BOUND`].
//!
//! The `locked` backend has no hitting-time instrumentation and is
//! rejected with an error rather than silently producing a vacuous cell.
//!
//! The resulting [`ValidationReport`] serialises to JSON with the same
//! exact-round-trip contract as [`RunReport`](crate::RunReport) — the
//! committed `BENCH_validation.json` is one of these.
//!
//! ```
//! use asgd_driver::{validate, ValidationPlan, ValidationReport};
//! use asgd_driver::BackendKind;
//! use asgd_oracle::OracleSpec;
//!
//! let plan = ValidationPlan::new(OracleSpec::new("noisy-quadratic", 2).sigma(0.5))
//!     .backends(vec![BackendKind::Sequential])
//!     .thread_counts(vec![2])
//!     .eps_grid(vec![0.04])
//!     .trials(4);
//! let report = validate(&plan).expect("valid plan");
//! assert!(report.all_consistent());
//! assert_eq!(ValidationReport::from_json(&report.to_json()).unwrap(), report);
//! ```

use crate::error::DriverError;
use crate::json::{self, Value};
use crate::report::{field_bool, field_f64, field_str, field_u64, opt_field, DecodeError};
use crate::session::Driver;
use crate::spec::{BackendKind, RunSpec, SchedulerSpec};
use asgd_math::rng::SeedSequence;
use asgd_math::WilsonInterval;
use asgd_metrics::ProbabilityEstimate;
use asgd_oracle::OracleSpec;
use asgd_theory::martingale::RateSupermartingale;
use asgd_theory::{bounds, corollary_7_1};

/// The Markov bound on the terminal-criterion failure probability: from
/// Corollary 7.1's `E‖r − x*‖ ≤ √ε`, `P(‖r − x*‖ > 2√ε) ≤ ½`.
pub const TERMINAL_FAILURE_BOUND: f64 = 0.5;

/// Squared-distance factor of the terminal failure event: failure iff
/// `‖r − x*‖² > 4ε`, i.e. the final model missed `2√ε`.
pub const TERMINAL_DIST_SQ_FACTOR: f64 = 4.0;

/// Which theorem-to-measurement comparison a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationCriterion {
    /// `P(F_T)` — never hitting `S` within the Corollary 6.7 horizon —
    /// against the Eq. 13 bound.
    Hitting,
    /// `P(‖r − x*‖² > 4ε)` after the Corollary 7.1 epoch budget against the
    /// Markov bound [`TERMINAL_FAILURE_BOUND`].
    Terminal,
}

impl ValidationCriterion {
    /// Canonical JSON/CLI name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Hitting => "hitting",
            Self::Terminal => "terminal",
        }
    }

    fn from_label(label: &str) -> Option<Self> {
        match label {
            "hitting" => Some(Self::Hitting),
            "terminal" => Some(Self::Terminal),
            _ => None,
        }
    }

    /// The criterion validating `backend`, or an error for backends without
    /// the required instrumentation.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::InvalidSpec`] for [`BackendKind::Locked`],
    /// which reports no hitting time.
    pub fn for_backend(backend: BackendKind) -> Result<Self, DriverError> {
        match backend {
            BackendKind::Sequential
            | BackendKind::SimulatedLockFree
            | BackendKind::Hogwild
            | BackendKind::GuardedEpoch => Ok(Self::Hitting),
            BackendKind::SimulatedFullSgd | BackendKind::NativeFullSgd => Ok(Self::Terminal),
            BackendKind::Locked => Err(DriverError::InvalidSpec(
                "backend `locked` has no hitting-time instrumentation; validation covers the \
                 other six backends"
                    .to_string(),
            )),
        }
    }
}

impl std::fmt::Display for ValidationCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The backends [`ValidationPlan`] covers by default: every backend with a
/// theorem-matched measurement (all but `locked`).
#[must_use]
pub fn default_backends() -> Vec<BackendKind> {
    BackendKind::all()
        .iter()
        .copied()
        .filter(|&k| k != BackendKind::Locked)
        .collect()
}

/// A backend × n × ε validation grid over one workload.
///
/// Build with [`ValidationPlan::new`] and the chained setters, then execute
/// with [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationPlan {
    /// Workload, by name through the oracle registry.
    pub oracle: OracleSpec,
    /// Backends to validate (default: [`default_backends`]).
    pub backends: Vec<BackendKind>,
    /// Thread counts `n` to sweep.
    pub thread_counts: Vec<usize>,
    /// Success thresholds `ε` (on `‖x − x*‖²`) to sweep.
    pub eps_grid: Vec<f64>,
    /// Assumed maximum interval contention `τ_max` — the bound's premise.
    /// Simulated lock-free cells enforce it with the bounded-delay
    /// adversary; native cells assume the OS stays below it.
    pub tau_max: u64,
    /// The `ϑ ∈ (0, 1]` slack of the Eq. 12 learning rate.
    pub theta: f64,
    /// Failure-probability target the derived horizon must reach. Terminal
    /// (Algorithm 2) cells clamp their per-epoch target to at most ½ —
    /// Corollary 7.1's premise needs every epoch to succeed w.p. ≥ ½
    /// regardless of how loose a hitting target the plan asks for.
    pub target: f64,
    /// Radius (around `x*`) at which the oracle's `(c, L, M²)` constants are
    /// taken.
    pub radius: f64,
    /// Step-size override. `None` derives the Eq. 12 rate and compares
    /// against the Eq. 13 bound; `Some(α)` is judged through Theorem 6.5 at
    /// that `α` instead (Eq. 13 only covers the Eq. 12 rate). Either way
    /// the Lemma 6.6 stability condition is enforced through
    /// [`RateSupermartingale::try_new`].
    pub alpha_override: Option<f64>,
    /// Independent seeded trials per cell.
    pub trials: u64,
    /// Master seed; every cell and trial derives its own child seed.
    pub seed: u64,
    /// Pool width for [`Driver::run_many`] (`None`: one per core).
    pub workers: Option<usize>,
}

impl ValidationPlan {
    /// A plan with the defaults the committed `BENCH_validation.json` grid
    /// uses: all validatable backends, `n ∈ {1, 2, 4}`, `ε ∈ {0.04, 0.01}`,
    /// `τ_max = 8`, `ϑ = 1`, target `½`, radius 2, 40 trials.
    #[must_use]
    pub fn new(oracle: OracleSpec) -> Self {
        Self {
            oracle,
            backends: default_backends(),
            thread_counts: vec![1, 2, 4],
            eps_grid: vec![0.04, 0.01],
            tau_max: 8,
            theta: 1.0,
            target: 0.5,
            radius: 2.0,
            alpha_override: None,
            trials: 40,
            seed: 0x7A11_DA7E,
            workers: None,
        }
    }

    /// Selects the backends to validate.
    #[must_use]
    pub fn backends(mut self, backends: Vec<BackendKind>) -> Self {
        self.backends = backends;
        self
    }

    /// Selects the thread counts to sweep.
    #[must_use]
    pub fn thread_counts(mut self, thread_counts: Vec<usize>) -> Self {
        self.thread_counts = thread_counts;
        self
    }

    /// Selects the `ε` grid.
    #[must_use]
    pub fn eps_grid(mut self, eps_grid: Vec<f64>) -> Self {
        self.eps_grid = eps_grid;
        self
    }

    /// Sets the assumed `τ_max`.
    #[must_use]
    pub fn tau_max(mut self, tau_max: u64) -> Self {
        self.tau_max = tau_max;
        self
    }

    /// Sets the Eq. 12 slack `ϑ`.
    #[must_use]
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the failure-probability target for the derived horizon.
    #[must_use]
    pub fn target(mut self, target: f64) -> Self {
        self.target = target;
        self
    }

    /// Sets the constants radius.
    #[must_use]
    pub fn radius(mut self, radius: f64) -> Self {
        self.radius = radius;
        self
    }

    /// Overrides the step size (still stability-checked).
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha_override = Some(alpha);
        self
    }

    /// Sets the trials per cell.
    #[must_use]
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the pool width.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Rejects plans whose parameters would panic inside the theory
    /// formulas (which assert their domains) instead of erroring.
    fn check(&self) -> Result<(), DriverError> {
        let invalid = |msg: String| Err(DriverError::InvalidSpec(msg));
        if self.backends.is_empty() {
            return invalid("validation needs at least one backend".into());
        }
        if self.thread_counts.is_empty() || self.thread_counts.contains(&0) {
            return invalid("thread counts must be non-empty and positive".into());
        }
        if self.eps_grid.is_empty() {
            return invalid("eps grid must be non-empty".into());
        }
        for &eps in &self.eps_grid {
            if !eps.is_finite() || eps <= 0.0 {
                return invalid(format!("eps must be positive and finite, got {eps}"));
            }
        }
        if !self.theta.is_finite() || self.theta <= 0.0 || self.theta > 1.0 {
            return invalid(format!("theta must be in (0, 1], got {}", self.theta));
        }
        if !self.target.is_finite() || self.target <= 0.0 || self.target >= 1.0 {
            return invalid(format!("target must be in (0, 1), got {}", self.target));
        }
        if !self.radius.is_finite() || self.radius <= 0.0 {
            return invalid(format!("radius must be positive, got {}", self.radius));
        }
        if let Some(alpha) = self.alpha_override {
            if !alpha.is_finite() || alpha <= 0.0 {
                return invalid(format!(
                    "step-size override must be positive and finite, got {alpha}"
                ));
            }
        }
        if self.trials == 0 {
            return invalid("at least one trial per cell required".into());
        }
        Ok(())
    }
}

/// Everything the theory derives for one grid cell before any run executes.
#[derive(Debug, Clone, Copy)]
struct CellDerivation {
    criterion: ValidationCriterion,
    alpha: f64,
    horizon: u64,
    halving_epochs: Option<u64>,
    total_iterations: u64,
    bound: f64,
}

/// One `(backend, n, ε)` cell of a [`ValidationReport`]: the derived
/// configuration, the measured failure estimate, and the verdict.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ValidationCell {
    /// Backend name (see [`BackendKind::name`]).
    pub backend: String,
    /// Which comparison ran (`"hitting"` or `"terminal"`).
    pub criterion: String,
    /// Thread count `n`.
    pub threads: usize,
    /// Success threshold `ε` on `‖x − x*‖²`.
    pub eps: f64,
    /// Assumed maximum interval contention.
    pub tau_max: u64,
    /// Step size actually run (Eq. 12 unless overridden).
    pub alpha: f64,
    /// Corollary 6.7 horizon `T` (per epoch for the terminal criterion).
    pub horizon: u64,
    /// Corollary 7.1 halving epochs (terminal criterion only).
    pub halving_epochs: Option<u64>,
    /// Total iteration budget each trial executed.
    pub total_iterations: u64,
    /// Independent trials run.
    pub trials: u64,
    /// Trials in which the failure event occurred.
    pub failures: u64,
    /// Point estimate `failures / trials`.
    pub measured: f64,
    /// Lower end of the Wilson 95% interval on the failure probability.
    pub ci_lower: f64,
    /// Upper end of the Wilson 95% interval.
    pub ci_upper: f64,
    /// The theory's upper bound on the failure probability (unclamped; may
    /// exceed 1, in which case it is vacuous but still valid).
    pub bound: f64,
    /// The verdict: the bound does not sit below the measured lower
    /// confidence limit.
    pub consistent_with_upper_bound: bool,
}

impl ValidationCell {
    /// Reconstructs the measurement as a [`ProbabilityEstimate`].
    ///
    /// # Panics
    ///
    /// Panics if the cell records zero trials (never produced by
    /// [`validate`]).
    #[must_use]
    pub fn estimate(&self) -> ProbabilityEstimate {
        ProbabilityEstimate {
            occurrences: self.failures,
            trials: self.trials,
            interval: WilsonInterval::ci95(self.failures, self.trials),
        }
    }

    fn to_value(&self) -> Value {
        Value::obj([
            ("backend", Value::Str(self.backend.clone())),
            ("criterion", Value::Str(self.criterion.clone())),
            ("threads", Value::U64(self.threads as u64)),
            ("eps", Value::f64(self.eps)),
            ("tau_max", Value::U64(self.tau_max)),
            ("alpha", Value::f64(self.alpha)),
            ("horizon", Value::U64(self.horizon)),
            (
                "halving_epochs",
                Value::opt(self.halving_epochs.map(Value::U64)),
            ),
            ("total_iterations", Value::U64(self.total_iterations)),
            ("trials", Value::U64(self.trials)),
            ("failures", Value::U64(self.failures)),
            ("measured", Value::f64(self.measured)),
            ("ci_lower", Value::f64(self.ci_lower)),
            ("ci_upper", Value::f64(self.ci_upper)),
            ("bound", Value::f64(self.bound)),
            (
                "consistent_with_upper_bound",
                Value::Bool(self.consistent_with_upper_bound),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, DecodeError> {
        let criterion = field_str(v, "criterion")?;
        if ValidationCriterion::from_label(&criterion).is_none() {
            return Err(DecodeError::field(
                "criterion",
                "expected `hitting` or `terminal`",
            ));
        }
        Ok(Self {
            backend: field_str(v, "backend")?,
            criterion,
            threads: field_u64(v, "threads")? as usize,
            eps: field_f64(v, "eps")?,
            tau_max: field_u64(v, "tau_max")?,
            alpha: field_f64(v, "alpha")?,
            horizon: field_u64(v, "horizon")?,
            halving_epochs: opt_field(v, "halving_epochs", |f| {
                f.as_u64().ok_or("expected integer")
            })?,
            total_iterations: field_u64(v, "total_iterations")?,
            trials: field_u64(v, "trials")?,
            failures: field_u64(v, "failures")?,
            measured: field_f64(v, "measured")?,
            ci_lower: field_f64(v, "ci_lower")?,
            ci_upper: field_f64(v, "ci_upper")?,
            bound: field_f64(v, "bound")?,
            consistent_with_upper_bound: field_bool(v, "consistent_with_upper_bound")?,
        })
    }
}

/// The outcome of [`validate`]: the full grid with per-cell verdicts.
/// Serialises to JSON with the exact-round-trip contract of
/// [`RunReport`](crate::RunReport).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ValidationReport {
    /// Oracle kind the grid ran.
    pub oracle: String,
    /// Model dimension `d`.
    pub dim: usize,
    /// Oracle noise level σ.
    pub sigma: f64,
    /// The Eq. 12 slack `ϑ` used for every cell.
    pub theta: f64,
    /// Failure-probability target the horizons were derived for.
    pub target: f64,
    /// Constants radius.
    pub radius: f64,
    /// `‖x₀ − x*‖²` every trial started from.
    pub x0_dist_sq: f64,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed of the sweep.
    pub seed: u64,
    /// The grid, in backend × n × ε order.
    pub cells: Vec<ValidationCell>,
}

impl ValidationReport {
    /// True if every cell's measurement is consistent with its bound — the
    /// headline verdict.
    #[must_use]
    pub fn all_consistent(&self) -> bool {
        self.cells.iter().all(|c| c.consistent_with_upper_bound)
    }

    /// Converts into the JSON value tree.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("oracle", Value::Str(self.oracle.clone())),
            ("dim", Value::U64(self.dim as u64)),
            ("sigma", Value::f64(self.sigma)),
            ("theta", Value::f64(self.theta)),
            ("target", Value::f64(self.target)),
            ("radius", Value::f64(self.radius)),
            ("x0_dist_sq", Value::f64(self.x0_dist_sq)),
            ("trials", Value::U64(self.trials)),
            ("seed", Value::U64(self.seed)),
            (
                "cells",
                Value::Arr(self.cells.iter().map(ValidationCell::to_value).collect()),
            ),
            ("all_consistent", Value::Bool(self.all_consistent())),
        ])
    }

    /// Serialises to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Serialises to pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed JSON or missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<Self, DecodeError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Decodes from a JSON value tree. The redundant `all_consistent`
    /// convenience field is ignored (it is recomputed from the cells).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Field`] on missing/mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, DecodeError> {
        Ok(Self {
            oracle: field_str(v, "oracle")?,
            dim: field_u64(v, "dim")? as usize,
            sigma: field_f64(v, "sigma")?,
            theta: field_f64(v, "theta")?,
            target: field_f64(v, "target")?,
            radius: field_f64(v, "radius")?,
            x0_dist_sq: field_f64(v, "x0_dist_sq")?,
            trials: field_u64(v, "trials")?,
            seed: field_u64(v, "seed")?,
            cells: v
                .get("cells")
                .and_then(Value::as_arr)
                .ok_or_else(|| DecodeError::field("cells", "expected array"))?
                .iter()
                .map(ValidationCell::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Derives the cell configuration from the theory crate — no run executes
/// here, so every failure is a recoverable [`DriverError`].
fn derive_cell(
    plan: &ValidationPlan,
    consts: &asgd_oracle::Constants,
    d: usize,
    x0_dist_sq: f64,
    backend: BackendKind,
    n: usize,
    eps: f64,
) -> Result<CellDerivation, DriverError> {
    let criterion = ValidationCriterion::for_backend(backend)?;
    let alpha = plan.alpha_override.unwrap_or_else(|| {
        bounds::corollary_6_7_learning_rate(consts, eps, plan.tau_max, n, d, plan.theta)
    });
    // Satellite contract: the Lemma 6.6 stability gate runs here, on the
    // planning thread, through try_new — `RateSupermartingale::new`'s panic
    // can never fire inside a pooled worker.
    let mart = RateSupermartingale::try_new(alpha, consts, eps)?;
    // The Eq. 13 bound (and the horizon inverting it) is a statement about
    // the Eq. 12 learning rate specifically. An overridden α therefore goes
    // through the theorem Eq. 13 instantiates — Theorem 6.5, whose bound
    // E[W₀]/((1 − α²HLMC√d)·T) holds for *any* stable step size, with H and
    // E[W₀] from the Lemma 6.6 supermartingale at that α. Judging an
    // arbitrary α against the Eq. 12-rate bound would produce false
    // verdicts in both directions (a slower stable α misses the Eq. 12
    // horizon; a faster one makes the check vacuous).
    let horizon_and_bound = |target: f64| -> Result<(u64, f64), DriverError> {
        match plan.alpha_override {
            None => {
                let horizon = bounds::corollary_6_7_horizon(
                    consts,
                    eps,
                    plan.tau_max,
                    n,
                    d,
                    plan.theta,
                    target,
                    x0_dist_sq,
                );
                let bound = bounds::corollary_6_7(
                    consts,
                    eps,
                    plan.tau_max,
                    n,
                    d,
                    plan.theta,
                    horizon,
                    x0_dist_sq,
                );
                Ok((horizon, bound))
            }
            Some(_) => {
                let h = mart.lipschitz_h();
                let pre = bounds::theorem_6_5_precondition(alpha, h, consts, plan.tau_max, n, d);
                if pre >= 1.0 {
                    return Err(DriverError::InvalidSpec(format!(
                        "step-size override {alpha} fails the Theorem 6.5 precondition \
                         α²HLMC√d < 1 (got {pre}) at n = {n}, eps = {eps}; no bound applies — \
                         use a smaller alpha"
                    )));
                }
                let e_w0 = mart.w0_upper_bound(x0_dist_sq);
                // Smallest T with E[W₀]/((1 − pre)·T) ≤ target; saturating
                // cast as in `corollary_6_7_horizon`.
                let horizon = (e_w0 / ((1.0 - pre) * target)).ceil().max(1.0) as u64;
                let bound =
                    bounds::theorem_6_5(e_w0, alpha, h, consts, plan.tau_max, n, d, horizon);
                Ok((horizon, bound))
            }
        }
    };
    let (horizon, halving_epochs, total_iterations, bound) = match criterion {
        ValidationCriterion::Hitting => {
            let (horizon, bound) = horizon_and_bound(plan.target)?;
            (horizon, None, horizon, bound)
        }
        ValidationCriterion::Terminal => {
            // Corollary 7.1's E‖r − x*‖ ≤ √ε (and so the Markov ½ bound)
            // needs every epoch to succeed w.p. ≥ ½ — a plan target looser
            // than ½ would silently break the premise and manufacture false
            // inconsistencies, so the per-epoch horizon is derived at the
            // tighter of the two.
            let per_epoch_target = plan.target.min(TERMINAL_FAILURE_BOUND);
            let (horizon, _) = horizon_and_bound(per_epoch_target)?;
            let halving = corollary_7_1::epoch_count(alpha, consts, n, eps);
            let total = corollary_7_1::total_iterations(horizon, halving);
            (horizon, Some(halving as u64), total, TERMINAL_FAILURE_BOUND)
        }
    };
    if total_iterations == u64::MAX {
        return Err(DriverError::InvalidSpec(format!(
            "derived iteration budget for backend `{backend}` at n = {n}, eps = {eps} saturates \
             u64 — the configuration is not runnable; relax eps/target or override alpha"
        )));
    }
    Ok(CellDerivation {
        criterion,
        alpha,
        horizon,
        halving_epochs,
        total_iterations,
        bound,
    })
}

/// Materialises the spec for one trial of a cell.
fn trial_spec(
    plan: &ValidationPlan,
    der: &CellDerivation,
    backend: BackendKind,
    n: usize,
    eps: f64,
    x0: &[f64],
    seed: u64,
) -> RunSpec {
    let mut spec = RunSpec::new(plan.oracle.clone(), backend)
        .threads(n)
        .iterations(der.total_iterations)
        .x0(x0.to_vec())
        .seed(seed);
    spec = match der.criterion {
        ValidationCriterion::Hitting => spec.learning_rate(der.alpha).success_radius_sq(eps),
        ValidationCriterion::Terminal => spec.halving(
            der.alpha,
            der.halving_epochs.expect("terminal cells derive epochs") as usize,
        ),
    };
    match backend {
        // Exercise the bound's τ_max premise with the adversary that
        // manufactures exactly that much interval contention.
        BackendKind::SimulatedLockFree => {
            spec = spec.scheduler(SchedulerSpec::BoundedDelay {
                budget: plan.tau_max,
            });
        }
        // Vary the interleaving across trials (the c71 experiment's setup).
        BackendKind::SimulatedFullSgd => {
            spec = spec.scheduler(SchedulerSpec::Random {
                seed: seed ^ 0x5EED,
            });
        }
        _ => {}
    }
    spec
}

/// True if this report realises the cell's failure event.
fn is_failure(criterion: ValidationCriterion, eps: f64, report: &crate::RunReport) -> bool {
    match criterion {
        ValidationCriterion::Hitting => report.hit_iteration.is_none(),
        ValidationCriterion::Terminal => report.final_dist_sq > TERMINAL_DIST_SQ_FACTOR * eps,
    }
}

/// Executes a [`ValidationPlan`]: derive → materialise → run → aggregate.
///
/// Trials run on the session driver's bounded pool; every cell and trial
/// draws its own child seed from the plan's master seed, so the sweep is
/// reproducible wherever the backends are deterministic.
///
/// # Errors
///
/// Returns [`DriverError::InvalidSpec`] for unrunnable plans (empty grids,
/// out-of-domain parameters, an unstable step size, a backend without the
/// required instrumentation), [`DriverError::Oracle`] when the workload
/// cannot be built, and whatever [`crate::run_spec`] returns if a
/// materialised trial fails.
pub fn validate(plan: &ValidationPlan) -> Result<ValidationReport, DriverError> {
    plan.check()?;
    let oracle = plan.oracle.build()?;
    let d = oracle.dimension();
    let consts = oracle.constants(plan.radius);
    // Start every trial at distance ~1 from the optimum, spread evenly over
    // the coordinates (works for any registry oracle: the offset is applied
    // to the oracle's own minimizer).
    let offset = 1.0 / (d as f64).sqrt();
    let x0: Vec<f64> = oracle.minimizer().iter().map(|m| m + offset).collect();
    let x0_dist_sq = asgd_math::vec::l2_dist_sq(&x0, oracle.minimizer());
    let driver = plan
        .workers
        .map_or_else(Driver::new, |w| Driver::new().workers(w));
    let mut cells = Vec::new();
    let seq = SeedSequence::new(plan.seed);
    let mut cell_index = 0_u64;
    for &backend in &plan.backends {
        for &n in &plan.thread_counts {
            for &eps in &plan.eps_grid {
                let der = derive_cell(plan, &consts, d, x0_dist_sq, backend, n, eps)?;
                let cell_seeds = seq.subsequence(cell_index);
                cell_index += 1;
                let specs: Vec<RunSpec> = (0..plan.trials)
                    .map(|i| trial_spec(plan, &der, backend, n, eps, &x0, cell_seeds.child_seed(i)))
                    .collect();
                let mut failures = 0_u64;
                for outcome in driver.run_many(&specs) {
                    if is_failure(der.criterion, eps, &outcome?) {
                        failures += 1;
                    }
                }
                let interval = WilsonInterval::ci95(failures, plan.trials);
                let estimate = ProbabilityEstimate {
                    occurrences: failures,
                    trials: plan.trials,
                    interval,
                };
                cells.push(ValidationCell {
                    backend: backend.name().to_string(),
                    criterion: der.criterion.label().to_string(),
                    threads: n,
                    eps,
                    tau_max: plan.tau_max,
                    alpha: der.alpha,
                    horizon: der.horizon,
                    halving_epochs: der.halving_epochs,
                    total_iterations: der.total_iterations,
                    trials: plan.trials,
                    failures,
                    measured: estimate.estimate(),
                    ci_lower: interval.lower,
                    ci_upper: interval.upper,
                    bound: der.bound,
                    consistent_with_upper_bound: estimate.consistent_with_upper_bound(der.bound),
                });
            }
        }
    }
    Ok(ValidationReport {
        oracle: plan.oracle.kind.clone(),
        dim: d,
        sigma: plan.oracle.sigma,
        theta: plan.theta,
        target: plan.target,
        radius: plan.radius,
        x0_dist_sq,
        trials: plan.trials,
        seed: plan.seed,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_plan() -> ValidationPlan {
        ValidationPlan::new(OracleSpec::new("noisy-quadratic", 2).sigma(0.5))
            .backends(vec![
                BackendKind::Sequential,
                BackendKind::SimulatedLockFree,
            ])
            .thread_counts(vec![2])
            .eps_grid(vec![0.04])
            .trials(4)
            .workers(2)
    }

    fn sample_report() -> ValidationReport {
        ValidationReport {
            oracle: "noisy-quadratic".to_string(),
            dim: 2,
            sigma: 0.5,
            theta: 1.0,
            target: 0.5,
            radius: 2.0,
            x0_dist_sq: 1.0 - f64::EPSILON,
            trials: 7,
            seed: u64::MAX - 1,
            cells: vec![
                ValidationCell {
                    backend: "sequential".to_string(),
                    criterion: "hitting".to_string(),
                    threads: 2,
                    eps: 0.04,
                    tau_max: 8,
                    alpha: 0.002_183,
                    horizon: 4_711,
                    halving_epochs: None,
                    total_iterations: 4_711,
                    trials: 7,
                    failures: 0,
                    measured: 0.0,
                    ci_lower: 0.0,
                    ci_upper: 0.35,
                    bound: 0.499_999,
                    consistent_with_upper_bound: true,
                },
                ValidationCell {
                    backend: "native-fullsgd".to_string(),
                    criterion: "terminal".to_string(),
                    threads: 4,
                    eps: 0.01,
                    tau_max: 8,
                    alpha: 0.000_88,
                    horizon: 12_600,
                    halving_epochs: Some(1),
                    total_iterations: 25_200,
                    trials: 7,
                    failures: 7,
                    measured: 1.0,
                    ci_lower: 0.64,
                    ci_upper: 1.0,
                    bound: 0.5,
                    consistent_with_upper_bound: false,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_exactly() {
        let report = sample_report();
        assert_eq!(
            ValidationReport::from_json(&report.to_json()).unwrap(),
            report
        );
        assert_eq!(
            ValidationReport::from_json(&report.to_json_pretty()).unwrap(),
            report
        );
        assert!(!report.all_consistent(), "second cell is inconsistent");
    }

    #[test]
    fn decode_rejects_unknown_criterion() {
        let text = sample_report().to_json().replace("hitting", "vibes");
        let err = ValidationReport::from_json(&text).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("criterion"), "{err}");
    }

    #[test]
    fn quick_grid_validates_and_holds() {
        let report = validate(&quick_plan()).expect("valid plan");
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.criterion, "hitting");
            assert!(cell.alpha > 0.0 && cell.horizon >= 1);
            assert!(
                cell.consistent_with_upper_bound,
                "{}: measured {} (CI ≥ {}) vs bound {}",
                cell.backend, cell.measured, cell.ci_lower, cell.bound
            );
        }
        assert!(report.all_consistent());
        // Exact JSON round-trip on a real, measured report.
        assert_eq!(
            ValidationReport::from_json(&report.to_json()).unwrap(),
            report
        );
    }

    #[test]
    fn validation_is_reproducible_on_deterministic_backends() {
        let plan = quick_plan().backends(vec![BackendKind::Sequential]);
        assert_eq!(validate(&plan).unwrap(), validate(&plan).unwrap());
    }

    #[test]
    fn locked_backend_is_rejected_not_vacuous() {
        let plan = quick_plan().backends(vec![BackendKind::Locked]);
        match validate(&plan) {
            Err(DriverError::InvalidSpec(msg)) => assert!(msg.contains("locked"), "{msg}"),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn overridden_alpha_is_judged_through_theorem_6_5_not_eq_13() {
        // A stable α well below the Eq. 12 rate: under the old Eq. 13
        // coupling the run would miss the Eq. 12-derived horizon and be
        // falsely flagged inconsistent. Theorem 6.5 derives a horizon that
        // matches the actual rate, so the verdict holds.
        let eq12 = validate(&quick_plan().backends(vec![BackendKind::Sequential])).unwrap();
        let slow = validate(
            &quick_plan()
                .backends(vec![BackendKind::Sequential])
                .alpha(2e-4),
        )
        .unwrap();
        let (fast_cell, slow_cell) = (&eq12.cells[0], &slow.cells[0]);
        assert!(
            slow_cell.horizon > fast_cell.horizon,
            "slower rate must get a longer Theorem 6.5 horizon: {} vs {}",
            slow_cell.horizon,
            fast_cell.horizon
        );
        assert!(slow_cell.bound <= quick_plan().target + 1e-9);
        assert!(
            slow_cell.consistent_with_upper_bound,
            "measured {} (CI ≥ {}) vs bound {}",
            slow_cell.measured, slow_cell.ci_lower, slow_cell.bound
        );
    }

    #[test]
    fn override_failing_theorem_6_5_precondition_is_rejected() {
        // α just under the Lemma 6.6 stability limit 2cε/M² ≈ 0.0178: H
        // blows up, α²HLMC√d ≥ 1, and no bound applies — must be an error,
        // not a vacuous or false cell.
        let plan = quick_plan().alpha(0.0177);
        match validate(&plan) {
            Err(DriverError::InvalidSpec(msg)) => {
                assert!(msg.contains("Theorem 6.5 precondition"), "{msg}");
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn unstable_step_override_surfaces_as_invalid_spec() {
        // 2cε/M² with c=1, ε=0.04, M²=4.5 is ≈ 0.0178: α = 1.0 violates the
        // Lemma 6.6 stability condition and must error, not panic.
        let plan = quick_plan().alpha(1.0);
        match validate(&plan) {
            Err(DriverError::InvalidSpec(msg)) => {
                assert!(msg.contains("stability limit"), "{msg}");
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn plan_domain_errors_are_recoverable() {
        for plan in [
            quick_plan().eps_grid(vec![]),
            quick_plan().eps_grid(vec![-1.0]),
            quick_plan().theta(1.5),
            quick_plan().target(1.0),
            quick_plan().radius(0.0),
            quick_plan().alpha(f64::NAN),
            quick_plan().trials(0),
            quick_plan().thread_counts(vec![0]),
            quick_plan().backends(vec![]),
        ] {
            assert!(
                matches!(validate(&plan), Err(DriverError::InvalidSpec(_))),
                "plan {plan:?} must be rejected"
            );
        }
    }

    #[test]
    fn terminal_cells_derive_epoch_budgets() {
        let plan = quick_plan()
            .backends(vec![BackendKind::SimulatedFullSgd])
            .trials(3);
        let report = validate(&plan).expect("valid plan");
        let cell = &report.cells[0];
        assert_eq!(cell.criterion, "terminal");
        let halving = cell.halving_epochs.expect("terminal derives epochs");
        assert!(halving >= 1);
        assert_eq!(cell.total_iterations, cell.horizon * (halving + 1));
        assert_eq!(cell.bound, TERMINAL_FAILURE_BOUND);
    }

    #[test]
    fn loose_targets_do_not_weaken_terminal_epoch_budgets() {
        // Corollary 7.1 needs per-epoch success w.p. ≥ ½. A plan target of
        // 0.9 must clamp the terminal per-epoch horizon to the one derived
        // at ½ (and keep the ½ Markov bound), not shrink the budget and
        // manufacture false inconsistencies.
        let base = quick_plan()
            .backends(vec![BackendKind::SimulatedFullSgd])
            .trials(3);
        let at_half = validate(&base.clone()).expect("valid plan");
        let loose = validate(&base.clone().target(0.9)).expect("valid plan");
        assert_eq!(loose.cells[0].horizon, at_half.cells[0].horizon);
        assert_eq!(loose.cells[0].bound, TERMINAL_FAILURE_BOUND);
        assert!(loose.cells[0].consistent_with_upper_bound);
        // Tighter targets than ½ are honoured (longer epochs, same bound).
        let tight = validate(&base.target(0.1)).expect("valid plan");
        assert!(tight.cells[0].horizon > at_half.cells[0].horizon);
        assert_eq!(tight.cells[0].bound, TERMINAL_FAILURE_BOUND);
    }
}
