//! Experiment CLI: paper-claim tables *and* spec-driven single runs.
//!
//! Table mode (regenerates the paper artifacts, as before):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- all
//! cargo run -p asgd-bench --release --bin experiments -- t51 t65
//! cargo run -p asgd-bench --release --bin experiments -- --quick all
//! ```
//!
//! Run mode (the unified driver from the command line — one `RunSpec`, any
//! backend, JSON out):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- run \
//!     --backend hogwild --oracle noisy-quadratic --dim 8 --threads 4 \
//!     --iterations 50000 --alpha 0.02 --seed 7 --json out.json
//! cargo run -p asgd-bench --release --bin experiments -- run --backend all --pretty
//! ```
//!
//! `--json PATH` writes the report; if `PATH` is a directory, files named
//! `BENCH_<backend>.json` are created inside it. Without `--json`, reports
//! print to stdout.
//!
//! Validate mode (the paper's bounds against live measurements — derives
//! step sizes/horizons/epoch budgets from the theory crate, runs a
//! backend × n × ε grid of multi-seed sweeps, and emits per-cell
//! bound-vs-measurement verdicts; the committed `BENCH_validation.json` is
//! its output):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- validate \
//!     --json BENCH_validation.json
//! cargo run -p asgd-bench --release --bin experiments -- validate --quick
//! ```
//!
//! Serve-net mode (the wire path: a multi-model registry behind a TCP
//! front-end, hammered by open- or closed-loop socket clients):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- serve-net \
//!     --models 2 --clients 8 --arrival rate:2000 --slo-ms 1 --pretty
//! ```
//!
//! Bench-check mode (the committed-artifact regression gate: re-measures
//! the serving, serving-net, sparse-path, and theory-validation grids and
//! fails on >30% regressions against `BENCH_serving.json` /
//! `BENCH_net.json` / `BENCH_sparse_path.json` / `BENCH_validation.json`,
//! and requires every drifted cell of `BENCH_ingest.json` — plus one
//! fresh live drift cell — to have recovered in finite time):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- bench-check
//! ```
//!
//! Chaos mode (the adversarial-robustness gate: bounded-preemption model
//! checking of the workspace's concurrent protocols — correct variants
//! must verify, seeded bugs must be caught with replayable minimized
//! traces — plus the zero-wrong-answers fault-injection net campaign):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- chaos
//! cargo run -p asgd-bench --release --bin experiments -- chaos \
//!     --suite net --seed 7 --clients 4 --requests 64
//! ```
//!
//! Stats mode (the observability scraper: issue the wire protocol's
//! stats-scrape opcode against a live server and print the Prometheus
//! text, or run the self-contained telemetry smoke gate):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- stats \
//!     --addr 127.0.0.1:7878
//! cargo run -p asgd-bench --release --bin experiments -- stats \
//!     --smoke --dim 8192 --artifacts bench-artifacts
//! ```

use asgd_bench::{experiment_ids, run_experiment};
use asgd_driver::validation::default_backends;
use asgd_driver::{
    run_spec, validate, BackendKind, Driver, DriverError, ModelLayoutSpec, PinSpec, RunReport,
    RunSpec, SchedulerSpec, ShardsSpec, SparsePathSpec, UpdateOrderSpec, ValidationPlan,
};
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_net::{
    run_net_workload, NetClient, NetConfig, NetOp, NetServer, NetWorkloadSpec, Priority, SloPolicy,
};
use asgd_oracle::{registry, OracleSpec};
use asgd_serve::ModelRegistry;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_mode(&args[1..]),
        Some("validate") => validate_mode(&args[1..]),
        Some("serve") => serve_mode(&args[1..]),
        Some("serve-net") => serve_net_mode(&args[1..]),
        Some("bench-check") => bench_check_mode(&args[1..]),
        Some("chaos") => chaos_mode(&args[1..]),
        Some("stats") => stats_mode(&args[1..]),
        _ => table_mode(args),
    }
}

// ------------------------------------------------- shared flag plumbing

/// Pulls a flag's value off the argument iterator, or prints the calling
/// mode's usage and exits.
fn flag_value<'a>(it: &mut std::slice::Iter<'a, String>, name: &str, usage: fn() -> !) -> &'a str {
    match it.next() {
        Some(v) => v,
        None => {
            eprintln!("error: {name} needs a value");
            usage();
        }
    }
}

/// [`flag_value`] + `FromStr`, with the uniform bad-value error (exit 2).
macro_rules! parse_flag {
    ($it:expr, $name:literal, $usage:path) => {{
        let raw = flag_value($it, $name, $usage);
        match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("error: bad value `{raw}` for {}", $name);
                exit(2);
            }
        }
    }};
}

/// Parses a comma-separated list, trimming around each element.
fn parse_csv<T: std::str::FromStr>(raw: &str) -> Result<Vec<T>, T::Err> {
    raw.split(',').map(str::trim).map(str::parse).collect()
}

// ---------------------------------------------------------------- run mode

struct RunArgs {
    backend: String,
    oracle: OracleSpec,
    threads: usize,
    iterations: u64,
    alpha: f64,
    halving_epochs: Option<usize>,
    scheduler: SchedulerSpec,
    seed: u64,
    eps: Option<f64>,
    max_steps: Option<u64>,
    x0: Option<Vec<f64>>,
    layout: ModelLayoutSpec,
    order: UpdateOrderSpec,
    sparse: SparsePathSpec,
    shards: ShardsSpec,
    pin: PinSpec,
    trajectory_every: Option<u64>,
    json: Option<PathBuf>,
    pretty: bool,
    parallel: bool,
}

fn usage_run() -> ! {
    eprintln!(
        "usage: experiments run [options]\n\
         \n\
         options (defaults in parentheses):\n\
         \x20 --backend NAME|all     execution model ({backends}; default hogwild)\n\
         \x20 --oracle KIND          workload ({oracles}; default noisy-quadratic)\n\
         \x20 --dim D                model dimension (4)\n\
         \x20 --sigma S              noise level (0.1)\n\
         \x20 --dataset M            dataset size for dataset oracles (500)\n\
         \x20 --batch B              minibatch size (32)\n\
         \x20 --lambda L             ridge coefficient (0.1)\n\
         \x20 --threads N            worker threads (2)\n\
         \x20 --iterations T         total iteration budget (10000)\n\
         \x20 --alpha A              learning rate (0.05)\n\
         \x20 --halving-epochs E     use Algorithm 2's halving schedule with E halvings\n\
         \x20 --scheduler SPEC       simulated scheduler: serial | round-robin |\n\
         \x20                        iteration-serial | random:SEED | delay:BUDGET |\n\
         \x20                        stale:DELAY (round-robin)\n\
         \x20 --seed S               master seed (0)\n\
         \x20 --eps EPS              success region threshold on ‖x−x*‖²\n\
         \x20 --x0 V1,V2,…           initial point (origin; must match --dim)\n\
         \x20 --max-steps K          simulated step cap\n\
         \x20 --layout L             native model layout: compact | padded (compact)\n\
         \x20 --order O              native memory order: seqcst | relaxed (seqcst)\n\
         \x20 --sparse P             gradient path: auto | dense | sparse (auto)\n\
         \x20 --shards S             native parameter-store sharding: flat | auto | N (flat)\n\
         \x20 --pin P                pin native workers to cores: on | off (off)\n\
         \x20 --trajectory-every K   record a trajectory sample every K iterations\n\
         \x20 --parallel             run multiple backends concurrently (Driver::run_many)\n\
         \x20 --json PATH            write JSON report(s); directory ⇒ BENCH_<backend>.json\n\
         \x20 --pretty               pretty-print JSON",
        backends = BackendKind::all()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(" | "),
        oracles = registry::known_kinds().join(" | "),
    );
    exit(2);
}

fn run_mode(args: &[String]) {
    let parsed = parse_run_args(args);
    let mut spec = RunSpec::new(parsed.oracle.clone(), BackendKind::Hogwild)
        .threads(parsed.threads)
        .iterations(parsed.iterations)
        .seed(parsed.seed)
        .scheduler(parsed.scheduler)
        .layout(parsed.layout)
        .order(parsed.order)
        .sparse(parsed.sparse)
        .shards(parsed.shards)
        .pin(parsed.pin);
    spec = match parsed.halving_epochs {
        Some(epochs) => spec.halving(parsed.alpha, epochs),
        None => spec.learning_rate(parsed.alpha),
    };
    if let Some(eps) = parsed.eps {
        spec = spec.success_radius_sq(eps);
    }
    if let Some(steps) = parsed.max_steps {
        spec = spec.max_steps(steps);
    }
    if let Some(x0) = parsed.x0.clone() {
        spec = spec.x0(x0);
    }
    if let Some(stride) = parsed.trajectory_every {
        spec = spec.trajectory_every(stride);
    }

    let backends: Vec<BackendKind> = if parsed.backend == "all" {
        BackendKind::all().to_vec()
    } else {
        match parsed.backend.parse() {
            Ok(kind) => vec![kind],
            Err(e) => {
                eprintln!("{e}");
                exit(2);
            }
        }
    };

    let specs: Vec<RunSpec> = backends
        .iter()
        .map(|&backend| spec.clone().backend(backend))
        .collect();
    let outcomes: Vec<Result<RunReport, DriverError>> = if parsed.parallel {
        // The session driver's bounded pool: all backends at once, results
        // in spec order.
        Driver::new().run_many(&specs)
    } else {
        specs.iter().map(run_spec).collect()
    };

    let mut reports = Vec::new();
    for (backend, outcome) in backends.iter().zip(outcomes) {
        match outcome {
            Ok(report) => {
                eprintln!(
                    "[{}] T={} dist²={:.3e} wall={:.3}s{}{}",
                    report.backend,
                    report.iterations,
                    report.final_dist_sq,
                    report.wall_time_secs,
                    report
                        .hit_iteration
                        .map(|t| format!(" hit@{t}"))
                        .unwrap_or_default(),
                    report
                        .fingerprint
                        .map(|f| format!(" fp={f:016x}"))
                        .unwrap_or_default(),
                );
                reports.push(report);
            }
            Err(e) => {
                if parsed.backend == "all" {
                    eprintln!("[{backend}] skipped: {e}");
                } else {
                    eprintln!("error: {e}");
                    exit(1);
                }
            }
        }
    }
    if reports.is_empty() {
        eprintln!("error: no backend produced a report");
        exit(1);
    }
    emit_reports(&reports, parsed.json.as_deref(), parsed.pretty);
}

fn emit_reports(reports: &[RunReport], json: Option<&Path>, pretty: bool) {
    let render = |report: &RunReport| {
        if pretty {
            report.to_json_pretty()
        } else {
            report.to_json()
        }
    };
    match json {
        None => {
            for report in reports {
                println!("{}", render(report));
            }
        }
        Some(path) if path.is_dir() => {
            for report in reports {
                let file = path.join(format!("BENCH_{}.json", report.backend));
                if let Err(e) = std::fs::write(&file, render(report) + "\n") {
                    eprintln!("error: writing {}: {e}", file.display());
                    exit(1);
                }
                println!("[json] {}", file.display());
            }
        }
        Some(path) => {
            let payload = if reports.len() == 1 {
                render(&reports[0]) + "\n"
            } else {
                // An array of reports, preserving individual formatting.
                let items: Vec<String> = reports.iter().map(render).collect();
                format!("[{}]\n", items.join(","))
            };
            if let Err(e) = std::fs::write(path, payload) {
                eprintln!("error: writing {}: {e}", path.display());
                exit(1);
            }
            println!("[json] {}", path.display());
        }
    }
}

fn parse_run_args(args: &[String]) -> RunArgs {
    let mut parsed = RunArgs {
        backend: "hogwild".to_string(),
        oracle: OracleSpec::new("noisy-quadratic", 4),
        threads: 2,
        iterations: 10_000,
        alpha: 0.05,
        halving_epochs: None,
        scheduler: SchedulerSpec::RoundRobin,
        seed: 0,
        eps: None,
        max_steps: None,
        x0: None,
        layout: ModelLayoutSpec::Compact,
        order: UpdateOrderSpec::SeqCst,
        sparse: SparsePathSpec::Auto,
        shards: ShardsSpec::Flat,
        pin: PinSpec::Off,
        trajectory_every: None,
        json: None,
        pretty: false,
        parallel: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--backend" => parsed.backend = flag_value(&mut it, "--backend", usage_run).to_string(),
            "--oracle" => {
                parsed.oracle.kind = flag_value(&mut it, "--oracle", usage_run).to_string()
            }
            "--dim" => parsed.oracle.dim = parse_flag!(&mut it, "--dim", usage_run),
            "--sigma" => parsed.oracle.sigma = parse_flag!(&mut it, "--sigma", usage_run),
            "--dataset" => parsed.oracle.dataset = parse_flag!(&mut it, "--dataset", usage_run),
            "--batch" => parsed.oracle.batch = parse_flag!(&mut it, "--batch", usage_run),
            "--lambda" => parsed.oracle.lambda = parse_flag!(&mut it, "--lambda", usage_run),
            "--threads" => parsed.threads = parse_flag!(&mut it, "--threads", usage_run),
            "--iterations" => parsed.iterations = parse_flag!(&mut it, "--iterations", usage_run),
            "--alpha" => parsed.alpha = parse_flag!(&mut it, "--alpha", usage_run),
            "--halving-epochs" => {
                parsed.halving_epochs = Some(parse_flag!(&mut it, "--halving-epochs", usage_run));
            }
            "--scheduler" => {
                let raw = flag_value(&mut it, "--scheduler", usage_run);
                parsed.scheduler = match raw.parse() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(2);
                    }
                };
            }
            "--seed" => parsed.seed = parse_flag!(&mut it, "--seed", usage_run),
            "--eps" => parsed.eps = Some(parse_flag!(&mut it, "--eps", usage_run)),
            "--x0" => {
                let raw = flag_value(&mut it, "--x0", usage_run);
                match parse_csv(raw) {
                    Ok(x0) => parsed.x0 = Some(x0),
                    Err(_) => {
                        eprintln!("error: bad value `{raw}` for --x0 (want V1,V2,…)");
                        exit(2);
                    }
                }
            }
            "--max-steps" => {
                parsed.max_steps = Some(parse_flag!(&mut it, "--max-steps", usage_run))
            }
            "--layout" => parsed.layout = parse_flag!(&mut it, "--layout", usage_run),
            "--order" => parsed.order = parse_flag!(&mut it, "--order", usage_run),
            "--sparse" => parsed.sparse = parse_flag!(&mut it, "--sparse", usage_run),
            "--shards" => parsed.shards = parse_flag!(&mut it, "--shards", usage_run),
            "--pin" => parsed.pin = parse_flag!(&mut it, "--pin", usage_run),
            "--trajectory-every" => {
                parsed.trajectory_every =
                    Some(parse_flag!(&mut it, "--trajectory-every", usage_run));
            }
            "--json" => parsed.json = Some(PathBuf::from(flag_value(&mut it, "--json", usage_run))),
            "--pretty" => parsed.pretty = true,
            "--parallel" => parsed.parallel = true,
            "--help" | "-h" => usage_run(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_run();
            }
        }
    }
    parsed
}

// ------------------------------------------------------------ serve mode

fn usage_serve() -> ! {
    eprintln!(
        "usage: experiments serve [options]\n\
         \n\
         Starts a hogwild training run and serves it: N client threads read\n\
         the live shared model (or its published snapshots) while training\n\
         mutates it underneath, then prints the ServeReport (latency\n\
         percentiles, throughput, snapshot staleness, training report).\n\
         \n\
         options (defaults in parentheses):\n\
         \x20 --oracle KIND          workload ({oracles}; default sparse-quadratic)\n\
         \x20 --dim D                model dimension (4096)\n\
         \x20 --sigma S              noise level (0.0)\n\
         \x20 --threads N            trainer threads (2)\n\
         \x20 --iterations T         training budget (effectively unbounded)\n\
         \x20 --alpha A              learning rate (0.5/d)\n\
         \x20 --seed S               training master seed (0)\n\
         \x20 --mode M               read mode: live | snapshot (snapshot)\n\
         \x20 --query Q              query kind: dot-score | predict | fetch (dot-score)\n\
         \x20 --arrival A            closed-loop | rate:QPS per client (closed-loop)\n\
         \x20 --clients N            client threads (4)\n\
         \x20 --duration SECS        serving window (1.0)\n\
         \x20 --publish-every K      snapshot publication stride (2048)\n\
         \x20 --probe K              dot-score probe support (8)\n\
         \x20 --serve-seed S         client RNG master seed (0xCAFE)\n\
         \x20 --json PATH            write the ServeReport JSON\n\
         \x20 --pretty               pretty-print JSON",
        oracles = registry::known_kinds().join(" | "),
    );
    exit(2);
}

fn serve_mode(args: &[String]) {
    let mut oracle = OracleSpec::new("sparse-quadratic", 4096).sigma(0.0);
    let mut threads = 2_usize;
    let mut iterations = u64::MAX / 2;
    let mut alpha: Option<f64> = None;
    let mut seed = 0_u64;
    let mut mode = asgd_serve::ReadMode::Snapshot;
    let mut query = asgd_serve::QueryKind::DotScore;
    let mut arrival = asgd_serve::Arrival::ClosedLoop;
    let mut clients = 4_usize;
    let mut duration = 1.0_f64;
    let mut publish_every = 2_048_u64;
    let mut probe = 8_usize;
    let mut serve_seed = 0xCAFE_u64;
    let mut json: Option<PathBuf> = None;
    let mut pretty = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--oracle" => oracle.kind = flag_value(&mut it, "--oracle", usage_serve).to_string(),
            "--dim" => oracle.dim = parse_flag!(&mut it, "--dim", usage_serve),
            "--sigma" => oracle.sigma = parse_flag!(&mut it, "--sigma", usage_serve),
            "--dataset" => oracle.dataset = parse_flag!(&mut it, "--dataset", usage_serve),
            "--batch" => oracle.batch = parse_flag!(&mut it, "--batch", usage_serve),
            "--lambda" => oracle.lambda = parse_flag!(&mut it, "--lambda", usage_serve),
            "--threads" => threads = parse_flag!(&mut it, "--threads", usage_serve),
            "--iterations" => iterations = parse_flag!(&mut it, "--iterations", usage_serve),
            "--alpha" => alpha = Some(parse_flag!(&mut it, "--alpha", usage_serve)),
            "--seed" => seed = parse_flag!(&mut it, "--seed", usage_serve),
            "--mode" => mode = parse_serve_flag(flag_value(&mut it, "--mode", usage_serve)),
            "--query" => query = parse_serve_flag(flag_value(&mut it, "--query", usage_serve)),
            "--arrival" => {
                arrival = parse_serve_flag(flag_value(&mut it, "--arrival", usage_serve));
            }
            "--clients" => clients = parse_flag!(&mut it, "--clients", usage_serve),
            "--duration" => duration = parse_flag!(&mut it, "--duration", usage_serve),
            "--publish-every" => {
                publish_every = parse_flag!(&mut it, "--publish-every", usage_serve);
            }
            "--probe" => probe = parse_flag!(&mut it, "--probe", usage_serve),
            "--serve-seed" => serve_seed = parse_flag!(&mut it, "--serve-seed", usage_serve),
            "--json" => json = Some(PathBuf::from(flag_value(&mut it, "--json", usage_serve))),
            "--pretty" => pretty = true,
            "--help" | "-h" => usage_serve(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_serve();
            }
        }
    }
    let alpha = alpha.unwrap_or(0.5 / oracle.dim as f64);
    let train = RunSpec::new(oracle.clone(), BackendKind::Hogwild)
        .threads(threads)
        .iterations(iterations)
        .learning_rate(alpha)
        .x0(vec![1.0; oracle.dim])
        .seed(seed);
    let spec = asgd_serve::ServeSpec::new(train)
        .mode(mode)
        .query(query)
        .arrival(arrival)
        .clients(clients)
        .duration_secs(duration)
        .publish_every(publish_every)
        .probe_len(probe)
        .serve_seed(serve_seed);
    let report = match spec.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };
    eprintln!(
        "[serve] {} clients={} mode={} queries={} qps={:.0} p50={:.1}µs p99={:.1}µs p999={:.1}µs{} train: T={} ({:.0} iters/s)",
        report.query,
        report.clients,
        report.mode,
        report.queries,
        report.qps,
        report.latency.p50_ns as f64 / 1e3,
        report.latency.p99_ns as f64 / 1e3,
        report.latency.p999_ns as f64 / 1e3,
        report
            .staleness
            .as_ref()
            .map(|s| format!(" staleness avg={:.0} max={}", s.mean, s.max))
            .unwrap_or_default(),
        report.train.iterations,
        report.train.iterations_per_sec(),
    );
    let payload = if pretty {
        report.to_json_pretty()
    } else {
        report.to_json()
    };
    match json {
        None => println!("{payload}"),
        Some(path) => {
            if let Err(e) = std::fs::write(&path, payload + "\n") {
                eprintln!("error: writing {}: {e}", path.display());
                exit(1);
            }
            println!("[json] {}", path.display());
        }
    }
}

/// Parses a serve-mode enum flag (`ReadMode`/`QueryKind`/`Arrival`),
/// exiting with the error's own message (it lists the known labels).
fn parse_serve_flag<T: std::str::FromStr<Err = asgd_serve::ServeError>>(raw: &str) -> T {
    match raw.parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            exit(2);
        }
    }
}

// -------------------------------------------------------- serve-net mode

fn usage_serve_net() -> ! {
    eprintln!(
        "usage: experiments serve-net [options]\n\
         \n\
         Hosts N hogwild training runs in a ModelRegistry behind the TCP\n\
         wire protocol, drives them with socket clients over loopback, and\n\
         prints the per-priority NetReport plus the server's own counters\n\
         (admissions, busy rejections, shed requests, rolling p99).\n\
         \n\
         options (defaults in parentheses):\n\
         \x20 --oracle KIND          workload ({oracles}; default sparse-quadratic)\n\
         \x20 --dim D                model dimension (4096)\n\
         \x20 --sigma S              noise level (0.0)\n\
         \x20 --models N             hosted models, named model-0… (1)\n\
         \x20 --threads N            trainer threads per model (1)\n\
         \x20 --iterations T         training budget (effectively unbounded)\n\
         \x20 --alpha A              learning rate (0.5/d)\n\
         \x20 --seed S               training master seed (0x5E1F00D + model index)\n\
         \x20 --mode M               read mode: live | snapshot (snapshot)\n\
         \x20 --publish-every K      snapshot publication stride (2048)\n\
         \x20 --op OP                request op: dot-score | predict | fetch-range (dot-score)\n\
         \x20 --arrival A            closed-loop | rate:QPS per client (closed-loop)\n\
         \x20 --clients N            client connections (4)\n\
         \x20 --duration SECS        serving window (1.0)\n\
         \x20 --probe K              dot-score probe support (8)\n\
         \x20 --fetch K              fetch-range length (16)\n\
         \x20 --priorities CSV       client priority classes, round-robin over\n\
         \x20                        clients: low,normal,high (normal)\n\
         \x20 --serve-seed S         client RNG master seed (0xE75EED)\n\
         \x20 --slo-ms MS            executed-request p99 objective; enables\n\
         \x20                        SLO load shedding (off)\n\
         \x20 --shed-trigger R       shed at R x the SLO, 0 < R <= 1: headroom\n\
         \x20                        so the settled p99 lands inside the\n\
         \x20                        objective, not at it (1.0)\n\
         \x20 --max-connections N    admission-control connection budget (64)\n\
         \x20 --max-inflight N       bounded in-flight window (64)\n\
         \x20 --addr HOST:PORT       bind address (127.0.0.1:0)\n\
         \x20 --json PATH            write the NetReport JSON\n\
         \x20 --pretty               pretty-print JSON",
        oracles = registry::known_kinds().join(" | "),
    );
    exit(2);
}

#[allow(clippy::too_many_lines)]
fn serve_net_mode(args: &[String]) {
    let mut oracle = OracleSpec::new("sparse-quadratic", 4096).sigma(0.0);
    let mut models = 1_usize;
    let mut threads = 1_usize;
    let mut iterations = u64::MAX / 2;
    let mut alpha: Option<f64> = None;
    let mut seed = 0x5E1_F00D_u64;
    let mut mode = asgd_serve::ReadMode::Snapshot;
    let mut publish_every = 2_048_u64;
    let mut op = NetOp::DotScore;
    let mut arrival = asgd_serve::Arrival::ClosedLoop;
    let mut clients = 4_usize;
    let mut duration = 1.0_f64;
    let mut probe = 8_usize;
    let mut fetch = 16_u32;
    let mut priorities = vec![Priority::Normal];
    let mut serve_seed = 0x00E7_5EED_u64;
    let mut slo_ms: Option<f64> = None;
    let mut shed_trigger = 1.0_f64;
    let mut config = NetConfig::default();
    let mut json: Option<PathBuf> = None;
    let mut pretty = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--oracle" => {
                oracle.kind = flag_value(&mut it, "--oracle", usage_serve_net).to_string();
            }
            "--dim" => oracle.dim = parse_flag!(&mut it, "--dim", usage_serve_net),
            "--sigma" => oracle.sigma = parse_flag!(&mut it, "--sigma", usage_serve_net),
            "--dataset" => oracle.dataset = parse_flag!(&mut it, "--dataset", usage_serve_net),
            "--batch" => oracle.batch = parse_flag!(&mut it, "--batch", usage_serve_net),
            "--lambda" => oracle.lambda = parse_flag!(&mut it, "--lambda", usage_serve_net),
            "--models" => models = parse_flag!(&mut it, "--models", usage_serve_net),
            "--threads" => threads = parse_flag!(&mut it, "--threads", usage_serve_net),
            "--iterations" => iterations = parse_flag!(&mut it, "--iterations", usage_serve_net),
            "--alpha" => alpha = Some(parse_flag!(&mut it, "--alpha", usage_serve_net)),
            "--seed" => seed = parse_flag!(&mut it, "--seed", usage_serve_net),
            "--mode" => mode = parse_serve_flag(flag_value(&mut it, "--mode", usage_serve_net)),
            "--publish-every" => {
                publish_every = parse_flag!(&mut it, "--publish-every", usage_serve_net);
            }
            "--op" => op = parse_flag!(&mut it, "--op", usage_serve_net),
            "--arrival" => {
                arrival = parse_serve_flag(flag_value(&mut it, "--arrival", usage_serve_net));
            }
            "--clients" => clients = parse_flag!(&mut it, "--clients", usage_serve_net),
            "--duration" => duration = parse_flag!(&mut it, "--duration", usage_serve_net),
            "--probe" => probe = parse_flag!(&mut it, "--probe", usage_serve_net),
            "--fetch" => fetch = parse_flag!(&mut it, "--fetch", usage_serve_net),
            "--priorities" => {
                let raw = flag_value(&mut it, "--priorities", usage_serve_net);
                match parse_csv(raw) {
                    Ok(list) => priorities = list,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(2);
                    }
                }
            }
            "--serve-seed" => serve_seed = parse_flag!(&mut it, "--serve-seed", usage_serve_net),
            "--slo-ms" => slo_ms = Some(parse_flag!(&mut it, "--slo-ms", usage_serve_net)),
            "--shed-trigger" => {
                shed_trigger = parse_flag!(&mut it, "--shed-trigger", usage_serve_net);
            }
            "--max-connections" => {
                config = config.max_connections(parse_flag!(
                    &mut it,
                    "--max-connections",
                    usage_serve_net
                ));
            }
            "--max-inflight" => {
                config =
                    config.max_inflight(parse_flag!(&mut it, "--max-inflight", usage_serve_net));
            }
            "--addr" => config = config.addr(flag_value(&mut it, "--addr", usage_serve_net)),
            "--json" => {
                json = Some(PathBuf::from(flag_value(
                    &mut it,
                    "--json",
                    usage_serve_net,
                )))
            }
            "--pretty" => pretty = true,
            "--help" | "-h" => usage_serve_net(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_serve_net();
            }
        }
    }
    if let Some(ms) = slo_ms {
        if !ms.is_finite() || ms <= 0.0 {
            eprintln!("error: --slo-ms must be positive");
            exit(2);
        }
        if !shed_trigger.is_finite() || shed_trigger <= 0.0 || shed_trigger > 1.0 {
            eprintln!("error: --shed-trigger must be in (0, 1]");
            exit(2);
        }
        config = config.slo(SloPolicy {
            trigger_ratio: shed_trigger,
            ..SloPolicy::with_slo(Duration::from_secs_f64(ms / 1e3))
        });
    }

    let alpha = alpha.unwrap_or(0.5 / oracle.dim as f64);
    let model_registry = Arc::new(ModelRegistry::new());
    let mut ids = Vec::new();
    for m in 0..models {
        let train = RunSpec::new(oracle.clone(), BackendKind::Hogwild)
            .threads(threads)
            .iterations(iterations)
            .learning_rate(alpha)
            .x0(vec![1.0; oracle.dim])
            .seed(seed + m as u64);
        match model_registry.create(&format!("model-{m}"), &train, mode, publish_every) {
            Ok(id) => ids.push(id.0),
            Err(e) => {
                eprintln!("error: creating model-{m}: {e}");
                exit(1);
            }
        }
    }
    let server = match NetServer::serve(Arc::clone(&model_registry), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: binding server: {e}");
            model_registry.shutdown();
            exit(1);
        }
    };
    eprintln!(
        "[serve-net] listening on {} ({} model(s), mode={})",
        server.local_addr(),
        models,
        mode.label(),
    );
    let spec = NetWorkloadSpec::new(ids)
        .clients(clients)
        .duration_secs(duration)
        .arrival(arrival)
        .op(op)
        .probe_len(probe)
        .fetch_len(fetch)
        .priorities(priorities)
        .seed(serve_seed);
    let report = match run_net_workload(server.local_addr(), &spec) {
        Ok(report) => report,
        Err(e) => {
            server.stop();
            model_registry.shutdown();
            eprintln!("error: {e}");
            exit(1);
        }
    };
    let stats = server.stats();
    server.stop();
    model_registry.shutdown();
    eprintln!(
        "[serve-net] {} clients={} sent={} answered={} shed={} errors={} lost={} qps={:.0} p50={:.1}µs p99={:.1}µs",
        report.op,
        report.clients,
        report.sent,
        report.answered,
        report.shed,
        report.errors,
        report.lost,
        report.qps,
        report.latency.p50_ns as f64 / 1e3,
        report.latency.p99_ns as f64 / 1e3,
    );
    for class in &report.classes {
        eprintln!(
            "[serve-net]   class {}: sent={} answered={} shed={} p99={:.1}µs",
            class.priority,
            class.sent,
            class.answered,
            class.shed,
            class.latency.p99_ns as f64 / 1e3,
        );
    }
    eprintln!(
        "[serve-net] server: accepted={} denied={} busy={} bad_frames={} executed={} shed={} rolling_p99={}",
        stats.accepted,
        stats.denied,
        stats.busy,
        stats.bad_frames,
        stats.executed,
        stats.shed,
        stats
            .rolling_p99_ns
            .map_or_else(|| "-".to_string(), |ns| format!("{:.1}µs", ns as f64 / 1e3)),
    );
    let payload = if pretty {
        report.to_json_pretty()
    } else {
        report.to_json()
    };
    match json {
        None => println!("{payload}"),
        Some(path) => {
            if let Err(e) = std::fs::write(&path, payload + "\n") {
                eprintln!("error: writing {}: {e}", path.display());
                exit(1);
            }
            println!("[json] {}", path.display());
        }
    }
}

// ------------------------------------------------------ bench-check mode

fn usage_bench_check() -> ! {
    eprintln!(
        "usage: experiments bench-check [options]\n\
         \n\
         Re-runs the quick `serving` and `serving-net` sweeps and compares\n\
         every cell both grids measured against the committed artifacts\n\
         (BENCH_serving.json, BENCH_net.json). Exits non-zero when answered\n\
         throughput drops, or p99 latency rises, past the tolerance. Also\n\
         gates the sparse-path and validation artifacts, and the ingest\n\
         artifact (every committed drifted cell, and one fresh live drift\n\
         cell, must have recovered in finite time).\n\
         \n\
         options (defaults in parentheses):\n\
         \x20 --dir PATH        directory holding the committed artifacts (.)\n\
         \x20 --tolerance F     allowed fractional regression (0.30)",
    );
    exit(2);
}

fn bench_check_mode(args: &[String]) {
    let mut dir = PathBuf::from(".");
    let mut tolerance = asgd_bench::check::DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dir" => dir = PathBuf::from(flag_value(&mut it, "--dir", usage_bench_check)),
            "--tolerance" => tolerance = parse_flag!(&mut it, "--tolerance", usage_bench_check),
            "--help" | "-h" => usage_bench_check(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_bench_check();
            }
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("error: --tolerance must be in [0, 1)");
        exit(2);
    }
    let report = asgd_bench::check::run_bench_check(&dir, tolerance);
    print!("{}", report.render());
    if !report.passed() {
        exit(1);
    }
}

// -------------------------------------------------------------- chaos mode

fn usage_chaos() -> ! {
    eprintln!(
        "usage: experiments chaos [options]\n\
         \n\
         Adversarial-robustness gate. The `explore` suite model-checks the\n\
         workspace's concurrent protocols (snapshot seqlock, AtomicF64 CAS\n\
         loop, registry lifecycle, ingress queue under every backpressure\n\
         policy, the telemetry registry's striped-cell validated collect)\n\
         over every schedule within a preemption\n\
         bound: the shipped protocols must verify, and deliberately seeded\n\
         bugs must be caught with minimized traces that replay to the\n\
         identical violation. The `net` suite runs the fault-injection\n\
         campaign against a live server and fails on any wrong answer.\n\
         Counterexample traces are written to the artifact directory.\n\
         \n\
         options (defaults in parentheses):\n\
         \x20 --suite NAME      explore | net | all (all)\n\
         \x20 --bound K         explorer preemption bound (2)\n\
         \x20 --seed S          net campaign seed (3405691582)\n\
         \x20 --clients N       net campaign client threads (4)\n\
         \x20 --requests N      net campaign requests per client (48)\n\
         \x20 --artifacts DIR   counterexample trace directory (chaos-artifacts)",
    );
    exit(2);
}

/// Writes a counterexample trace artifact and prints how to replay it.
fn write_trace(dir: &Path, name: &str, cex: &asgd_chaos::Counterexample) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("chaos: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.trace"));
    let body = format!(
        "model: {name}\nviolation: {}\nviolation_step: {}\npreemptions: {}\nschedule: {}\n",
        cex.violation.message,
        cex.violation.step,
        cex.preemptions,
        cex.artifact()
    );
    match std::fs::write(&path, body) {
        Ok(()) => println!(
            "  trace -> {} (decode_schedule + asgd_chaos::replay reproduces it)",
            path.display()
        ),
        Err(e) => eprintln!("chaos: cannot write {}: {e}", path.display()),
    }
}

/// Runs one explorer cell: a protocol that must verify (`expect_bug =
/// false`) or a seeded-bug variant that must be caught with a replayable
/// minimized trace (`expect_bug = true`). Returns whether the cell passed.
fn chaos_explore_cell<P: asgd_chaos::Schedulable>(
    name: &str,
    protocol: &P,
    bound: usize,
    expect_bug: bool,
    artifacts: &Path,
) -> bool {
    let report = asgd_chaos::Explorer::with_bound(bound).explore(protocol);
    match (&report.counterexample, expect_bug) {
        (None, false) => {
            if report.truncated {
                println!(
                    "FAIL {name}: search truncated at {} schedules",
                    report.schedules
                );
                return false;
            }
            println!(
                "  ok  {name}: verified over {} schedules ({} steps, bound {bound})",
                report.schedules, report.steps
            );
            true
        }
        (None, true) => {
            println!("FAIL {name}: seeded bug escaped the explorer (bound {bound})");
            false
        }
        (Some(cex), expect) => {
            let replayed = asgd_chaos::replay(protocol, &cex.trace);
            let reproduces =
                replayed == Err(asgd_chaos::ReplayOutcome::Violation(cex.violation.clone()));
            if expect {
                println!(
                    "  ok  {name}: caught `{}` in {} steps / {} preemption(s); replay {}",
                    cex.violation.message,
                    cex.trace.len(),
                    cex.preemptions,
                    if reproduces { "identical" } else { "DIVERGED" }
                );
            } else {
                println!("FAIL {name}: counterexample `{}`", cex.violation.message);
            }
            write_trace(artifacts, name, cex);
            expect && reproduces
        }
    }
}

fn chaos_mode(args: &[String]) {
    use asgd_chaos::{
        AddMode, AtomicAddModel, CollectMode, FenceMode, IngestQueueModel, LenMode, RegistryMode,
        RegistryModel, ScanMode, ShardedCounterModel, SnapshotModel, TelemetryCellModel,
    };
    use asgd_oracle::BackpressurePolicy;

    let mut suite = "all".to_string();
    let mut bound = 2usize;
    let mut seed = 0xCAFE_BABE_u64;
    let mut clients: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut artifacts = PathBuf::from("chaos-artifacts");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--suite" => suite = flag_value(&mut it, "--suite", usage_chaos).to_string(),
            "--bound" => bound = parse_flag!(&mut it, "--bound", usage_chaos),
            "--seed" => seed = parse_flag!(&mut it, "--seed", usage_chaos),
            "--clients" => clients = Some(parse_flag!(&mut it, "--clients", usage_chaos)),
            "--requests" => requests = Some(parse_flag!(&mut it, "--requests", usage_chaos)),
            "--artifacts" => {
                artifacts = PathBuf::from(flag_value(&mut it, "--artifacts", usage_chaos));
            }
            "--help" | "-h" => usage_chaos(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_chaos();
            }
        }
    }
    if !matches!(suite.as_str(), "explore" | "net" | "all") {
        eprintln!("error: --suite must be explore, net, or all");
        exit(2);
    }

    let mut failed = false;

    if suite != "net" {
        println!("explore suite (preemption bound {bound}):");
        // The shipped protocols: every schedule within the bound must hold.
        failed |= !chaos_explore_cell(
            "snapshot-correct",
            &SnapshotModel::buffer_reuse(FenceMode::Correct),
            bound,
            false,
            &artifacts,
        );
        failed |= !chaos_explore_cell(
            "atomic-cas",
            &AtomicAddModel::two_by_two(AddMode::Cas),
            bound,
            false,
            &artifacts,
        );
        failed |= !chaos_explore_cell(
            "registry-locked",
            &RegistryModel::name_race(RegistryMode::Locked),
            bound,
            false,
            &artifacts,
        );
        for (name, policy) in [
            ("ingest-queue-block", BackpressurePolicy::Block),
            ("ingest-queue-drop-oldest", BackpressurePolicy::DropOldest),
            ("ingest-queue-reject", BackpressurePolicy::Reject),
        ] {
            failed |= !chaos_explore_cell(
                name,
                &IngestQueueModel::churning(policy, LenMode::Atomic),
                bound,
                false,
                &artifacts,
            );
        }
        failed |= !chaos_explore_cell(
            "sharded-counters",
            &ShardedCounterModel::churning(ScanMode::Coherent),
            bound,
            false,
            &artifacts,
        );
        failed |= !chaos_explore_cell(
            "telemetry-collect-validated",
            &TelemetryCellModel::churning(CollectMode::Validated),
            bound,
            false,
            &artifacts,
        );
        // Seeded bugs: the explorer must catch each one, and the minimized
        // trace must replay to the identical violation.
        failed |= !chaos_explore_cell(
            "snapshot-weak-fence",
            &SnapshotModel::buffer_reuse(FenceMode::WeakPublish),
            bound,
            true,
            &artifacts,
        );
        failed |= !chaos_explore_cell(
            "atomic-blind-store",
            &AtomicAddModel::two_by_two(AddMode::BlindStore),
            bound,
            true,
            &artifacts,
        );
        failed |= !chaos_explore_cell(
            "registry-split-check",
            &RegistryModel::name_race(RegistryMode::SplitCheck),
            bound,
            true,
            &artifacts,
        );
        failed |= !chaos_explore_cell(
            "ingest-queue-split-check",
            &IngestQueueModel::contended(BackpressurePolicy::Block, LenMode::SplitCheck),
            bound,
            true,
            &artifacts,
        );
        failed |= !chaos_explore_cell(
            "sharded-counters-split-read",
            &ShardedCounterModel::contended(ScanMode::SplitRead),
            bound,
            true,
            &artifacts,
        );
        failed |= !chaos_explore_cell(
            "telemetry-collect-single-pass",
            &TelemetryCellModel::contended(CollectMode::SinglePass),
            bound,
            true,
            &artifacts,
        );
    }

    if suite != "explore" {
        let mut spec = asgd_chaos::NetChaosSpec::new(seed);
        if let Some(clients) = clients {
            spec.clients = clients;
        }
        if let Some(requests) = requests {
            spec.requests_per_client = requests;
        }
        println!(
            "net suite (seed {seed}, {} clients x {} requests):",
            spec.clients, spec.requests_per_client
        );
        match asgd_chaos::run_net_chaos(&spec) {
            Ok(report) => {
                println!(
                    "  {} requests: {} exact, {} wrong, {} gave up; {} retries, {} reconnects",
                    report.requests,
                    report.exact,
                    report.wrong,
                    report.gave_up,
                    report.retries,
                    report.reconnects
                );
                if !report.zero_wrong() {
                    println!(
                        "FAIL net: {} wrong answer(s) under fault injection",
                        report.wrong
                    );
                    failed = true;
                }
                if report.exact == 0 {
                    println!("FAIL net: no request ever succeeded — the campaign is vacuous");
                    failed = true;
                }
            }
            Err(e) => {
                println!("FAIL net: campaign harness error: {e}");
                failed = true;
            }
        }
    }

    if failed {
        println!("chaos: FAIL");
        exit(1);
    }
    println!("chaos: PASS");
}

// -------------------------------------------------------------- stats mode

fn usage_stats() -> ! {
    eprintln!(
        "usage: experiments stats --addr HOST:PORT\n\
         \x20      experiments stats --smoke [options]\n\
         \n\
         The observability scraper. With --addr it connects to a running\n\
         asgd-net server, issues the wire protocol's stats-scrape opcode,\n\
         and prints the Prometheus exposition text. With --smoke it runs\n\
         the self-contained end-to-end gate: a streaming hogwild model\n\
         behind a real loopback socket under live query/ingest load, a\n\
         mid-run scrape that must be non-vacuous (iteration and per-shard\n\
         counters moving, serve-latency histogram filling, ingest gauges\n\
         present), a trace sink whose JSONL must replay into a monotone\n\
         per-run timeline, and a final scrape whose iteration counter must\n\
         equal the training run's RunReport exactly.\n\
         \n\
         options (defaults in parentheses):\n\
         \x20 --addr HOST:PORT    scrape a live server and print the text\n\
         \x20 --smoke             run the self-contained smoke gate\n\
         \x20 --dim D             smoke model dimension (8192)\n\
         \x20 --artifacts DIR     write telemetry_scrape.prom and\n\
         \x20                     telemetry_trace.jsonl under DIR",
    );
    exit(2);
}

fn stats_mode(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut smoke = false;
    let mut dim = 8_192_usize;
    let mut artifacts: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = Some(flag_value(&mut it, "--addr", usage_stats).to_string()),
            "--smoke" => smoke = true,
            "--dim" => dim = parse_flag!(&mut it, "--dim", usage_stats),
            "--artifacts" => {
                artifacts = Some(PathBuf::from(flag_value(
                    &mut it,
                    "--artifacts",
                    usage_stats,
                )));
            }
            "--help" | "-h" => usage_stats(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_stats();
            }
        }
    }
    match (addr, smoke) {
        (Some(addr), false) => {
            let mut client = match NetClient::connect(addr.as_str()) {
                Ok(client) => client,
                Err(e) => {
                    eprintln!("error: connecting to {addr}: {e}");
                    exit(1);
                }
            };
            match client.stats_scrape() {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: scraping {addr}: {e}");
                    exit(1);
                }
            }
        }
        (None, true) => stats_smoke(dim, artifacts.as_deref()),
        _ => {
            eprintln!("error: pass exactly one of --addr or --smoke");
            usage_stats();
        }
    }
}

/// Looks a counter up in a parsed scrape (0 when absent).
fn scraped_counter(snap: &asgd_telemetry::MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(k, _)| k == name)
        .map_or(0, |(_, v)| *v)
}

/// The self-contained telemetry smoke gate: every assertion it makes is a
/// non-vacuity check — a scrape that parses but shows nothing moving means
/// the instrumentation rotted even though the wire path still works.
#[allow(clippy::too_many_lines)]
fn stats_smoke(dim: usize, artifacts: Option<&Path>) {
    use asgd_driver::{run_spec_session, SessionCtx, TraceObserver};
    use asgd_oracle::BackpressurePolicy;
    use asgd_serve::ReadMode;
    use asgd_telemetry::TraceSink;

    fn fail(msg: &str) -> ! {
        eprintln!("stats smoke: FAIL: {msg}");
        exit(1);
    }

    // Trace sink: a JSONL file when artifacts are requested, else memory.
    let (sink, trace_buffer, trace_path) = match artifacts {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail(&format!("cannot create {}: {e}", dir.display()));
            }
            let path = dir.join("telemetry_trace.jsonl");
            match TraceSink::to_file(&path) {
                Ok(sink) => (Arc::new(sink), None, Some(path)),
                Err(e) => fail(&format!("cannot open trace sink: {e}")),
            }
        }
        None => {
            let (sink, buffer) = TraceSink::in_memory();
            (Arc::new(sink), Some(buffer), None)
        }
    };

    // A streaming hogwild model behind a real socket. The budget is finite
    // and large enough that the mid-run scrape lands while training is
    // still in flight; sharding is fixed so the per-shard counter families
    // are guaranteed to exist.
    let model = "stats-smoke";
    let iterations = 1_500_000_u64;
    let spec = RunSpec::new(
        OracleSpec::new("sparse-quadratic", dim).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(2)
    .iterations(iterations)
    .learning_rate(0.4 / dim as f64)
    .x0(vec![1.0; dim])
    .shards(ShardsSpec::Fixed(4))
    .seed(0x57A75);
    let model_registry = Arc::new(ModelRegistry::new());
    let id = match model_registry.create_streaming(
        model,
        &spec,
        ReadMode::Snapshot,
        1_024,
        256,
        BackpressurePolicy::DropOldest,
    ) {
        Ok(id) => id.0,
        Err(e) => fail(&format!("creating {model}: {e}")),
    };
    let observer = Arc::new(TraceObserver::new(Arc::clone(&sink), model));
    let server = match NetServer::serve(
        Arc::clone(&model_registry),
        NetConfig::default().observer(observer),
    ) {
        Ok(server) => server,
        Err(e) => fail(&format!("binding server: {e}")),
    };
    let mut client = match NetClient::connect(server.local_addr()) {
        Ok(client) => client,
        Err(e) => fail(&format!("connecting: {e}")),
    };

    // Live load while training runs: predictions, probes, and submitted
    // observations, so every metric family the scrape asserts on is fed.
    let load = 64_u32;
    for i in 0..load {
        let key = i % dim as u32;
        if let Err(e) = client.predict(id, Priority::Normal) {
            fail(&format!("predict under load: {e}"));
        }
        if let Err(e) = client.dot_score(id, &[(key, 1.0)], Priority::Normal) {
            fail(&format!("dot-score under load: {e}"));
        }
        if let Err(e) = client.submit_observe(id, &[(key, 1.0)], 0.0, Priority::Normal) {
            fail(&format!("submit-observe under load: {e}"));
        }
    }

    // Mid-run scrape: live Prometheus text over the wire, non-vacuous.
    let mid = match client.stats_scrape() {
        Ok(text) => text,
        Err(e) => fail(&format!("mid-run scrape: {e}")),
    };
    let mid_snap = match asgd_telemetry::parse(&mid) {
        Ok(snap) => snap,
        Err(e) => fail(&format!("mid-run scrape does not parse: {e}")),
    };
    let iter_key = format!("asgd_model_iterations_total{{model=\"{model}\"}}");
    if scraped_counter(&mid_snap, &iter_key) == 0 {
        fail("mid-run scrape shows zero training iterations");
    }
    let shard_prefix = format!("asgd_shard_updates_total{{model=\"{model}\"");
    if !mid_snap
        .counters
        .iter()
        .any(|(k, v)| k.starts_with(&shard_prefix) && *v > 0)
    {
        fail("mid-run scrape shows no per-shard update counter moving");
    }
    if scraped_counter(&mid_snap, "asgd_net_executed_total") < u64::from(load) {
        fail("mid-run scrape undercounts executed requests");
    }
    if scraped_counter(
        &mid_snap,
        &format!("asgd_ingest_pushed_total{{model=\"{model}\"}}"),
    ) == 0
    {
        fail("mid-run scrape shows no ingested observations");
    }
    let latency_ok = mid_snap
        .histograms
        .iter()
        .any(|(k, h)| k == "asgd_net_serve_latency_ns" && h.count > 0 && h.sum > 0);
    if !latency_ok {
        fail("mid-run scrape's serve-latency histogram is empty");
    }
    if !mid_snap
        .gauges
        .iter()
        .any(|(k, _)| k == &format!("asgd_ingest_queue_depth{{model=\"{model}\"}}"))
    {
        fail("mid-run scrape is missing the ingest queue depth gauge");
    }
    println!(
        "[stats] mid-run scrape: {} counters, {} gauges, {} histograms (coherent: {})",
        mid_snap.counters.len(),
        mid_snap.gauges.len(),
        mid_snap.histograms.len(),
        mid_snap.coherent,
    );

    // One observed driver session shares the trace sink, so the artifact
    // carries a full run lifecycle (started → progress → finished) next to
    // whatever serving events the load produced.
    let train_run = "stats-smoke-train";
    let tiny = RunSpec::new(
        OracleSpec::new("noisy-quadratic", 8).sigma(0.1),
        BackendKind::Hogwild,
    )
    .threads(2)
    .iterations(20_000)
    .learning_rate(0.02)
    .trajectory_every(5_000)
    .seed(7);
    let train_observer = Arc::new(TraceObserver::new(Arc::clone(&sink), train_run));
    if let Err(e) = run_spec_session(&tiny, &SessionCtx::observed(train_observer)) {
        fail(&format!("observed driver session: {e}"));
    }

    // Wait for the hosted run to finish so the final scrape has a
    // quiescent truth to be bit-consistent with.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let final_stats = loop {
        match client.stats_by_id(id) {
            Ok(stats) if stats.finished => break stats,
            Ok(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(_) => fail("training never finished within the smoke deadline"),
            Err(e) => fail(&format!("polling stats: {e}")),
        }
    };

    // Final scrape: exact render∘parse inversion, and bit-consistency with
    // the model's own stats and (below) the RunReport the registry hands
    // back at drop.
    let text = match client.stats_scrape() {
        Ok(text) => text,
        Err(e) => fail(&format!("final scrape: {e}")),
    };
    let snap = match asgd_telemetry::parse(&text) {
        Ok(snap) => snap,
        Err(e) => fail(&format!("final scrape does not parse: {e}")),
    };
    if asgd_telemetry::render(&snap) != text {
        fail("render(parse(scrape)) is not the identical text");
    }
    let scraped_iterations = scraped_counter(&snap, &iter_key);
    if scraped_iterations != final_stats.iterations {
        fail(&format!(
            "scraped iteration counter {scraped_iterations} != model stats {}",
            final_stats.iterations
        ));
    }
    server.stop();
    let report = match model_registry.drop_model(model) {
        Ok(report) => report,
        Err(e) => fail(&format!("dropping {model}: {e}")),
    };
    model_registry.shutdown();
    if scraped_iterations != report.iterations {
        fail(&format!(
            "scraped iteration counter {scraped_iterations} != RunReport {}",
            report.iterations
        ));
    }
    println!(
        "[stats] final scrape: {} bytes, iterations counter {} == RunReport ({} shards live)",
        text.len(),
        scraped_iterations,
        final_stats.shard_updates.len(),
    );
    if let Some(dir) = artifacts {
        let path = dir.join("telemetry_scrape.prom");
        if let Err(e) = std::fs::write(&path, &text) {
            fail(&format!("writing {}: {e}", path.display()));
        }
        println!("[stats] scrape -> {}", path.display());
    }

    // The trace must replay into a monotone per-run timeline and carry the
    // observed session's lifecycle.
    sink.flush();
    let trace_text = match (&trace_buffer, &trace_path) {
        (Some(buffer), _) => {
            let bytes = buffer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            String::from_utf8_lossy(&bytes).into_owned()
        }
        (None, Some(path)) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => fail(&format!("reading {}: {e}", path.display())),
        },
        (None, None) => unreachable!("the sink is either buffered or file-backed"),
    };
    let spans = match asgd_telemetry::replay(&trace_text) {
        Ok(spans) => spans,
        Err(line) => fail(&format!("trace line {line} is malformed")),
    };
    let lifecycle: Vec<&str> = spans
        .iter()
        .filter(|s| s.run == train_run)
        .map(|s| s.event.as_str())
        .collect();
    if lifecycle.first() != Some(&"started") || lifecycle.last() != Some(&"finished") {
        fail(&format!(
            "observed session lifecycle is not started→finished: {lifecycle:?}"
        ));
    }
    let mut last_ts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for span in &spans {
        let prev = last_ts.entry(span.run.as_str()).or_insert(0);
        if span.ts_ns < *prev {
            fail(&format!(
                "trace timeline for run `{}` runs backwards at {}ns",
                span.run, span.ts_ns
            ));
        }
        *prev = span.ts_ns;
    }
    println!(
        "[stats] trace: {} span(s), {} run(s), monotone per-run timeline",
        spans.len(),
        last_ts.len(),
    );
    if let Some(path) = &trace_path {
        println!("[stats] trace -> {}", path.display());
    }
    println!("stats smoke: PASS");
}

// --------------------------------------------------------- validate mode

fn usage_validate() -> ! {
    eprintln!(
        "usage: experiments validate [options]\n\
         \n\
         Derives (α, horizon, epoch budget) from the paper's formulas for a\n\
         backend × n × ε grid, measures failure probabilities over seeded\n\
         trials, and reports whether every bound is consistent with its\n\
         measurement. Exits non-zero if any cell is inconsistent.\n\
         \n\
         options (defaults in parentheses):\n\
         \x20 --oracle KIND     workload ({oracles}; default noisy-quadratic)\n\
         \x20 --dim D           model dimension (2)\n\
         \x20 --sigma S         noise level (0.5)\n\
         \x20 --backends CSV    backends or `all` (all validatable: {backends})\n\
         \x20 --threads CSV     thread counts n (1,2,4; quick: 1,2)\n\
         \x20 --eps CSV         success thresholds ε (0.04,0.01; quick: 0.04)\n\
         \x20 --tau T           assumed τ_max (8)\n\
         \x20 --theta TH        Eq. 12 slack ϑ in (0,1] (1.0)\n\
         \x20 --target P        failure-probability target in (0,1) (0.5)\n\
         \x20 --radius R        constants radius (2.0)\n\
         \x20 --alpha A         step-size override, judged via Theorem 6.5 (default: Eq. 12 rate vs Eq. 13)\n\
         \x20 --trials K        trials per cell (40; quick: 8)\n\
         \x20 --seed S          master seed (0x7A11DA7E)\n\
         \x20 --workers W       run_many pool width (one per core)\n\
         \x20 --quick           smaller grid for smoke runs\n\
         \x20 --json PATH       write the ValidationReport JSON\n\
         \x20 --pretty          pretty-print JSON",
        oracles = registry::known_kinds().join(" | "),
        backends = default_backends()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(","),
    );
    exit(2);
}

fn validate_mode(args: &[String]) {
    let mut oracle = OracleSpec::new("noisy-quadratic", 2).sigma(0.5);
    let mut backends: Option<Vec<BackendKind>> = None;
    let mut threads: Option<Vec<usize>> = None;
    let mut eps: Option<Vec<f64>> = None;
    let mut plan_tweaks: Vec<Box<dyn FnOnce(ValidationPlan) -> ValidationPlan>> = Vec::new();
    let mut trials: Option<u64> = None;
    let mut quick = false;
    let mut json: Option<PathBuf> = None;
    let mut pretty = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--oracle" => oracle.kind = flag_value(&mut it, "--oracle", usage_validate).to_string(),
            "--dim" => oracle.dim = parse_flag!(&mut it, "--dim", usage_validate),
            "--sigma" => oracle.sigma = parse_flag!(&mut it, "--sigma", usage_validate),
            "--backends" => {
                let raw = flag_value(&mut it, "--backends", usage_validate);
                if raw == "all" {
                    backends = Some(default_backends());
                } else {
                    match parse_csv(raw) {
                        Ok(list) => backends = Some(list),
                        Err(e) => {
                            eprintln!("error: {e}");
                            exit(2);
                        }
                    }
                }
            }
            "--threads" => match parse_csv(flag_value(&mut it, "--threads", usage_validate)) {
                Ok(list) => threads = Some(list),
                Err(_) => {
                    eprintln!("error: bad value for --threads (want N1,N2,…)");
                    exit(2);
                }
            },
            "--eps" => match parse_csv(flag_value(&mut it, "--eps", usage_validate)) {
                Ok(list) => eps = Some(list),
                Err(_) => {
                    eprintln!("error: bad value for --eps (want E1,E2,…)");
                    exit(2);
                }
            },
            "--tau" => {
                let tau: u64 = parse_flag!(&mut it, "--tau", usage_validate);
                plan_tweaks.push(Box::new(move |p| p.tau_max(tau)));
            }
            "--theta" => {
                let theta: f64 = parse_flag!(&mut it, "--theta", usage_validate);
                plan_tweaks.push(Box::new(move |p| p.theta(theta)));
            }
            "--target" => {
                let target: f64 = parse_flag!(&mut it, "--target", usage_validate);
                plan_tweaks.push(Box::new(move |p| p.target(target)));
            }
            "--radius" => {
                let radius: f64 = parse_flag!(&mut it, "--radius", usage_validate);
                plan_tweaks.push(Box::new(move |p| p.radius(radius)));
            }
            "--alpha" => {
                let alpha: f64 = parse_flag!(&mut it, "--alpha", usage_validate);
                plan_tweaks.push(Box::new(move |p| p.alpha(alpha)));
            }
            "--trials" => trials = Some(parse_flag!(&mut it, "--trials", usage_validate)),
            "--seed" => {
                let seed: u64 = parse_flag!(&mut it, "--seed", usage_validate);
                plan_tweaks.push(Box::new(move |p| p.seed(seed)));
            }
            "--workers" => {
                let workers: usize = parse_flag!(&mut it, "--workers", usage_validate);
                plan_tweaks.push(Box::new(move |p| p.workers(workers)));
            }
            "--quick" => quick = true,
            "--json" => json = Some(PathBuf::from(flag_value(&mut it, "--json", usage_validate))),
            "--pretty" => pretty = true,
            "--help" | "-h" => usage_validate(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_validate();
            }
        }
    }

    let mut plan = ValidationPlan::new(oracle)
        .thread_counts(threads.unwrap_or(if quick { vec![1, 2] } else { vec![1, 2, 4] }))
        .eps_grid(eps.unwrap_or(if quick { vec![0.04] } else { vec![0.04, 0.01] }))
        .trials(trials.unwrap_or(if quick { 8 } else { 40 }));
    if let Some(backends) = backends {
        plan = plan.backends(backends);
    }
    for tweak in plan_tweaks {
        plan = tweak(plan);
    }

    let report = match validate(&plan) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };

    let mut table = Table::new(
        format!(
            "Theory validation: {} d={} σ={} τ_max={} ϑ={} target={} ({} trials/cell)",
            report.oracle,
            report.dim,
            report.sigma,
            plan.tau_max,
            report.theta,
            report.target,
            report.trials,
        ),
        &[
            "backend",
            "criterion",
            "n",
            "eps",
            "alpha",
            "T",
            "epochs",
            "P(fail) measured",
            "CI",
            "bound",
            "consistent",
        ],
    );
    for c in &report.cells {
        table.row(&[
            c.backend.clone(),
            c.criterion.clone(),
            c.threads.to_string(),
            fmt_f(c.eps),
            fmt_f(c.alpha),
            c.total_iterations.to_string(),
            c.halving_epochs
                .map_or_else(|| "-".to_string(), |h| (h + 1).to_string()),
            format!("{}/{} = {}", c.failures, c.trials, fmt_f(c.measured)),
            format!("[{}, {}]", fmt_f(c.ci_lower), fmt_f(c.ci_upper)),
            fmt_f(c.bound),
            c.consistent_with_upper_bound.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "every bound consistent with its measurement: {}",
        report.all_consistent()
    );

    if let Some(path) = &json {
        let payload = if pretty {
            report.to_json_pretty()
        } else {
            report.to_json()
        };
        if let Err(e) = std::fs::write(path, payload + "\n") {
            eprintln!("error: writing {}: {e}", path.display());
            exit(1);
        }
        println!("[json] {}", path.display());
    }
    if !report.all_consistent() {
        exit(1);
    }
}

// -------------------------------------------------------------- table mode

fn table_mode(mut args: Vec<String>) {
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if args.is_empty() {
        eprintln!("usage: experiments [--quick] <id…|all>");
        eprintln!(
            "       experiments run|validate|serve|serve-net|bench-check|chaos|stats [--help for options]"
        );
        eprintln!("known experiments: {}", experiment_ids().join(", "));
        exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiment_ids()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let out_dir = PathBuf::from("target").join("experiments");
    for id in ids {
        let started = std::time::Instant::now();
        let output = run_experiment(id, quick);
        print!("{}", output.render());
        for (i, table) in output.tables.iter().enumerate() {
            let name = if output.tables.len() == 1 {
                output.id.clone()
            } else {
                format!("{}_{i}", output.id)
            };
            match table.write_csv(&out_dir, &name) {
                Ok(path) => println!("[csv] {}", path.display()),
                Err(e) => eprintln!("[csv] failed to write {name}: {e}"),
            }
        }
        println!(
            "[done] {id} in {:.1}s{}\n",
            started.elapsed().as_secs_f64(),
            if quick { " (quick mode)" } else { "" }
        );
    }
}
