//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so the real `serde` stack
//! is unavailable; the workspace's `serde` features exist so downstream
//! consumers *with* a registry get real derives. This stub keeps those
//! feature-gated `#[derive(serde::Serialize, serde::Deserialize)]`
//! attributes compiling (and therefore CI-checkable — unexercised cfg_attr
//! blocks rot silently): each derive emits an empty impl of the matching
//! stub trait from the sibling `serde` compat crate.
//!
//! Limitations (documented, deliberate): the target type must be a plain
//! (non-generic) `struct` or `enum` — exactly what the workspace derives on.
//! A generic type would need real `syn`-level parsing; adding one under the
//! `serde` feature will fail this stub's compile step, which is the loud
//! signal we want.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    // Non-ident trees (attribute groups, doc comments, punctuation) are
    // skipped.
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    None
}

fn stub_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// Stub `Serialize` derive: emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    stub_impl("Serialize", input)
}

/// Stub `Deserialize` derive: emits `impl ::serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    stub_impl("Deserialize", input)
}
