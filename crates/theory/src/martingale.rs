//! The rate supermartingale of Lemma 6.6.
//!
//! ```text
//! W_t(x_t, …, x₀) = ε / (2αcε − α²M²) · plog(‖x_t − x*‖²/ε) + t
//! ```
//!
//! while the algorithm has not succeeded, frozen at its value `W_{u−1}` once
//! some `x_u ∈ S`. It is a rate supermartingale for *sequential* SGD with
//! horizon `B = ∞` and is `H`-Lipschitz in its first coordinate with
//! `H = 2√ε·(2αcε − α²M²)⁻¹`.
//!
//! **Transcription note.** The arXiv text of Lemma 6.6 prints the
//! denominator as `2αc − α²M²`; the `ε` on the first term was lost in
//! PDF-to-text conversion. Two independent checks pin down the form used
//! here: (i) the supermartingale inequality at the success-region boundary
//! `‖x−x*‖² = ε` requires the coefficient `κ` to satisfy
//! `κ·(2αcε − α²M²)/ε ≥ 1` (the `+t` term grows by one per step and must be
//! offset by the expected `plog` decrease, which is smallest on the
//! boundary); (ii) substituting the Eq. 12 learning rate into the
//! Corollary 6.7 proof only reproduces Eq. 13's `M²/(c²εϑT)` scale with the
//! `ε` present. The statistical test `supermartingale_property_on_
//! sequential_sgd` below verifies property (6) holds for this form on real
//! trajectories.

use asgd_math::plog;
use asgd_oracle::Constants;

/// Error returned when the step size violates the stability condition
/// `α < 2cε/M²` (the Lemma 6.6 denominator would be non-positive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnstableStepSizeError {
    /// The offending step size.
    pub alpha: f64,
    /// The supremum of stable step sizes, `2cε/M²`.
    pub limit: f64,
}

impl std::fmt::Display for UnstableStepSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step size {} is not below the stability limit 2cε/M² = {}",
            self.alpha, self.limit
        )
    }
}

impl std::error::Error for UnstableStepSizeError {}

/// The Lemma 6.6 process for a fixed configuration `(α, c, M², ε)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSupermartingale {
    alpha: f64,
    eps: f64,
    denom: f64,
}

impl RateSupermartingale {
    /// Creates the process, validating `α < 2cε/M²`.
    ///
    /// # Errors
    ///
    /// Returns [`UnstableStepSizeError`] if the denominator `2αcε − α²M²`
    /// is not strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` or `eps` is not finite and positive.
    pub fn try_new(
        alpha: f64,
        consts: &Constants,
        eps: f64,
    ) -> Result<Self, UnstableStepSizeError> {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        assert!(eps.is_finite() && eps > 0.0, "eps must be positive");
        let denom = 2.0 * alpha * consts.c * eps - alpha * alpha * consts.m_sq;
        if denom <= 0.0 {
            return Err(UnstableStepSizeError {
                alpha,
                limit: 2.0 * consts.c * eps / consts.m_sq,
            });
        }
        Ok(Self { alpha, eps, denom })
    }

    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics on invalid `alpha`/`eps` or if the stability condition
    /// `α < 2cε/M²` fails; use [`RateSupermartingale::try_new`] to handle
    /// that case gracefully.
    #[must_use]
    pub fn new(alpha: f64, consts: &Constants, eps: f64) -> Self {
        Self::try_new(alpha, consts, eps).unwrap_or_else(|e| panic!("unstable step size: {e}"))
    }

    /// The step size `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The Lipschitz constant `H = 2√ε·(2αcε − α²M²)⁻¹` of Lemma 6.6.
    #[must_use]
    pub fn lipschitz_h(&self) -> f64 {
        2.0 * self.eps.sqrt() / self.denom
    }

    /// Evaluates the **Lemma 6.6** process `W_t` for a *not-yet-successful*
    /// trajectory state: `W_t = ε/(2αcε−α²M²)·plog(‖x_t−x*‖²/ε) + t`.
    #[must_use]
    pub fn value(&self, dist_sq: f64, t: u64) -> f64 {
        self.eps / self.denom * plog(dist_sq / self.eps) + t as f64
    }

    /// Upper bound on `E[W₀(x₀)]` used in the Theorem 6.5 / Corollary 6.7
    /// proofs: `ε/(2αcε−α²M²) · plog(e·‖x₀−x*‖²/ε)`.
    #[must_use]
    pub fn w0_upper_bound(&self, x0_dist_sq: f64) -> f64 {
        self.eps / self.denom * plog(std::f64::consts::E * x0_dist_sq / self.eps)
    }

    /// Evaluates `W` along a full squared-distance trajectory (freezing at
    /// success, per the lemma's definition). `dists_sq[t]` is
    /// `‖x_t − x*‖²`; index 0 is the initial point.
    #[must_use]
    pub fn along_trajectory(&self, dists_sq: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(dists_sq.len());
        let mut frozen: Option<f64> = None;
        for (t, &dsq) in dists_sq.iter().enumerate() {
            if let Some(v) = frozen {
                out.push(v);
                continue;
            }
            if dsq <= self.eps {
                // Success at time u = t: freeze at W_{u-1} (or W_0's value
                // for an immediately successful start).
                let v = out.last().copied().unwrap_or_else(|| self.value(dsq, 0));
                frozen = Some(v);
                out.push(v);
            } else {
                out.push(self.value(dsq, t as u64));
            }
        }
        out
    }

    /// Condition (7) of Definition 6.1: on failure, `W_T ≥ T`.
    /// Holds structurally because `plog(dist²/ε) ≥ 1` outside `S`.
    #[must_use]
    pub fn failure_floor_holds(&self, dist_sq: f64, t: u64) -> bool {
        dist_sq <= self.eps || self.value(dist_sq, t) >= t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_math::OnlineStats;
    use asgd_oracle::{GradientOracle, NoisyQuadratic};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk(alpha: f64, eps: f64) -> RateSupermartingale {
        let k = Constants::new(1.0, 1.0, 4.0, 10.0);
        RateSupermartingale::new(alpha, &k, eps)
    }

    #[test]
    fn lipschitz_h_formula() {
        // c=1, M²=4, α=0.01, ε=0.04: denom = 2·0.01·0.04 − 0.0001·4
        // = 0.0008 − 0.0004 = 0.0004; H = 2·0.2/0.0004 = 1000.
        let w = mk(0.01, 0.04);
        assert!((w.lipschitz_h() - 1000.0).abs() < 1e-9);
        assert_eq!(w.alpha(), 0.01);
    }

    #[test]
    fn rejects_unstable_alpha() {
        // Stability limit 2cε/M² = 2·0.04/4 = 0.02.
        let k = Constants::new(1.0, 1.0, 4.0, 10.0);
        let err = RateSupermartingale::try_new(0.05, &k, 0.04).unwrap_err();
        assert!((err.limit - 0.02).abs() < 1e-12);
        assert!(err.to_string().contains("stability limit"));
        assert!(RateSupermartingale::try_new(0.019, &k, 0.04).is_ok());
    }

    #[test]
    #[should_panic(expected = "unstable step size")]
    fn new_panics_on_unstable_alpha() {
        let _ = mk(0.05, 0.04);
    }

    #[test]
    fn value_increases_with_time_and_distance() {
        let w = mk(0.002, 0.01);
        assert!(w.value(1.0, 5) > w.value(1.0, 4));
        assert!(w.value(2.0, 5) > w.value(1.0, 5));
    }

    #[test]
    fn failure_floor_structural() {
        let w = mk(0.002, 0.01);
        for t in [0, 1, 10, 1000] {
            assert!(w.failure_floor_holds(0.02, t)); // outside S
            assert!(w.failure_floor_holds(0.005, t)); // inside S: vacuous
        }
    }

    #[test]
    fn trajectory_freezes_at_success() {
        let w = mk(0.002, 1.0);
        // dists: fail, fail, success, would-be-large.
        let vals = w.along_trajectory(&[9.0, 4.0, 0.5, 100.0]);
        assert_eq!(vals.len(), 4);
        assert_eq!(vals[2], vals[1], "frozen at W_{{u-1}}");
        assert_eq!(vals[3], vals[1], "stays frozen");
    }

    #[test]
    fn supermartingale_property_on_sequential_sgd() {
        // Statistical check of Eq. (6): E[W_{t+1} | x_t] ≤ W_t for the
        // sequential process x_{t+1} = x_t − α·g̃(x_t), at a fixed state,
        // by Monte-Carlo estimation of the conditional expectation.
        let oracle = NoisyQuadratic::new(2, 1.0).unwrap();
        let consts = oracle.constants(4.0); // c = 1, M² = 16 + 2 = 18
        let eps = 0.01;
        let alpha = 0.0005; // < 2cε/M² ≈ 0.00111
        let w = RateSupermartingale::new(alpha, &consts, eps);
        let mut rng = StdRng::seed_from_u64(31);
        let x_t = vec![1.5, -1.0];
        let dist_sq_t = asgd_math::vec::l2_norm_sq(&x_t);
        let t = 7u64;
        let w_t = w.value(dist_sq_t, t);
        let mut stats = OnlineStats::new();
        let mut g = vec![0.0; 2];
        for _ in 0..100_000 {
            let mut x = x_t.clone();
            oracle.sample_gradient(&x, &mut rng, &mut g);
            asgd_math::vec::axpy(&mut x, -alpha, &g);
            stats.push(w.value(asgd_math::vec::l2_norm_sq(&x), t + 1));
        }
        assert!(
            stats.mean() <= w_t + 3.0 * stats.std_err(),
            "E[W_{{t+1}}] = {} ± {} should be ≤ W_t = {}",
            stats.mean(),
            stats.std_err(),
            w_t
        );
        // The drift should be genuinely negative, not borderline.
        assert!(
            stats.mean() < w_t - 0.1,
            "drift too weak: E[W_{{t+1}}] = {} vs W_t = {}",
            stats.mean(),
            w_t
        );
    }

    #[test]
    fn supermartingale_drift_near_boundary() {
        // The binding case of the coefficient derivation: a state just
        // outside the success region.
        let oracle = NoisyQuadratic::new(1, 0.5).unwrap();
        let consts = oracle.constants(2.0); // M² = 4 + 0.25
        let eps = 0.25;
        let alpha = 0.02; // < 2cε/M² ≈ 0.1176
        let w = RateSupermartingale::new(alpha, &consts, eps);
        let mut rng = StdRng::seed_from_u64(77);
        let x_t = [0.51_f64]; // dist² = 0.2601, barely outside ε = 0.25
        let w_t = w.value(x_t[0] * x_t[0], 3);
        let mut stats = OnlineStats::new();
        let mut g = vec![0.0; 1];
        for _ in 0..100_000 {
            let mut x = x_t.to_vec();
            oracle.sample_gradient(&x, &mut rng, &mut g);
            asgd_math::vec::axpy(&mut x, -alpha, &g);
            // Post-success states freeze (contribute W_{t}'s prior value);
            // conservatively evaluate the unfrozen form, which only makes
            // the test harder when the step lands inside S.
            stats.push(w.value(asgd_math::vec::l2_norm_sq(&x), 4));
        }
        assert!(
            stats.mean() <= w_t + 3.0 * stats.std_err(),
            "boundary drift: E[W_{{t+1}}] = {} ± {} vs W_t = {}",
            stats.mean(),
            stats.std_err(),
            w_t
        );
    }

    #[test]
    fn w0_bound_dominates_value() {
        let w = mk(0.002, 0.01);
        // plog(e·x) ≥ plog(x): the E[W₀] bound dominates W₀ itself.
        for dsq in [0.001, 0.01, 0.5, 10.0] {
            assert!(w.w0_upper_bound(dsq) >= w.value(dsq, 0) - 1e-12);
        }
    }

    proptest! {
        /// Lipschitz property of W in the first coordinate:
        /// |W(u) − W(v)| ≤ H·‖u − v‖ for 1-d states u, v.
        #[test]
        fn lipschitz_in_first_coordinate(u in -10.0_f64..10.0, v in -10.0_f64..10.0) {
            let w = mk(0.002, 0.01);
            // States on the real line, optimum at 0.
            let wu = w.value(u * u, 3);
            let wv = w.value(v * v, 3);
            let h = w.lipschitz_h();
            prop_assert!((wu - wv).abs() <= h * (u - v).abs() + 1e-9,
                "|ΔW| = {} > H·|Δx| = {}", (wu - wv).abs(), h * (u - v).abs());
        }
    }
}
