//! **§3, footnote 2** — the analysis needs no sparsity assumption.
//!
//! De Sa et al. \[10\] (Theorem 6.3 here) require stochastic gradients with
//! a *single nonzero entry*; this paper's analysis removes that assumption.
//! Measured: lock-free SGD converges on both the dense quadratic and the
//! single-nonzero-entry workload, under the same adversary, with comparable
//! hitting behaviour — dense gradients are not a correctness problem.
//!
//! Spec-driven: both arms are the *same* [`RunSpec`]; only the oracle
//! registry name differs (`noisy-quadratic` vs `sparse-quadratic`).

use crate::ExperimentOutput;
use asgd_driver::{run_spec, BackendKind, RunSpec, SchedulerSpec};
use asgd_math::rng::SeedSequence;
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::OracleSpec;

/// Per-oracle measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Oracle label.
    pub oracle: &'static str,
    /// Median hitting iteration across trials (`None` trials count as cap).
    pub median_hit: f64,
    /// Fraction of trials that converged.
    pub converged: f64,
    /// Median final squared distance.
    pub median_final_dist_sq: f64,
}

fn measure(label: &'static str, oracle: OracleSpec, iterations: u64, trials: u64, eps: f64) -> Row {
    let d = oracle.dim;
    let seq = SeedSequence::new(0x59A55E);
    let base = RunSpec::new(oracle, BackendKind::SimulatedLockFree)
        .threads(4)
        .iterations(iterations)
        .learning_rate(0.02)
        .x0(vec![1.0 / (d as f64).sqrt(); d])
        .success_radius_sq(eps)
        .scheduler(SchedulerSpec::BoundedDelay { budget: 8 });
    let mut hits = Vec::new();
    let mut finals = Vec::new();
    let mut converged = 0u64;
    for i in 0..trials {
        let report = run_spec(&base.clone().seed(seq.child_seed(i))).expect("spec runs");
        if let Some(t) = report.hit_iteration {
            hits.push(t as f64);
            converged += 1;
        } else {
            hits.push(iterations as f64);
        }
        finals.push(report.final_dist_sq);
    }
    Row {
        oracle: label,
        median_hit: super::median(&hits),
        converged: converged as f64 / trials as f64,
        median_final_dist_sq: super::median(&finals),
    }
}

/// Runs the comparison.
#[must_use]
pub fn sweep(quick: bool) -> Vec<Row> {
    let d = 8;
    let (iterations, trials): (u64, u64) = if quick { (4_000, 4) } else { (20_000, 20) };
    let eps = 0.04;
    vec![
        measure(
            "dense (this paper's regime)",
            OracleSpec::new("noisy-quadratic", d).sigma(0.3),
            iterations,
            trials,
            eps,
        ),
        measure(
            "single-nonzero ([10]'s regime)",
            OracleSpec::new("sparse-quadratic", d).sigma(0.3),
            iterations,
            trials,
            eps,
        ),
    ]
}

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("sparse");
    let rows = sweep(quick);
    let mut table = Table::new(
        "§3 fn.2: dense vs single-nonzero-entry gradients under the delay adversary (d=8, n=4)",
        &[
            "oracle",
            "median hit iteration",
            "converged fraction",
            "median final dist²",
        ],
    );
    for r in &rows {
        table.row(&[
            r.oracle.to_string(),
            fmt_f(r.median_hit),
            fmt_f(r.converged),
            fmt_f(r.median_final_dist_sq),
        ]);
    }
    out.tables.push(table);
    out.notes.push(
        "both regimes converge — the paper's analysis correctly needs no sparsity assumption"
            .to_string(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_regimes_converge() {
        for r in sweep(true) {
            assert!(
                r.converged >= 0.75,
                "{}: only {} of trials converged",
                r.oracle,
                r.converged
            );
        }
    }
}
