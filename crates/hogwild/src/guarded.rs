//! Op-level epoch guard: `(epoch, value)` packed into one atomic word.
//!
//! §7 of the paper requires that "a gradient update can only be applied to X
//! in the same epoch when it was generated", naming double-compare-single-
//! swap (DCAS) as one enforcement mechanism. DCAS does not exist on
//! commodity hardware, but packing a 32-bit epoch tag and an `f32` value
//! into one 64-bit word makes a single-word CAS express exactly the DCAS
//! condition — at the cost of `f32` precision. [`GuardedModel`] implements
//! this variant; the main Algorithm-2 implementations use the paper's other
//! sanctioned mechanism (distinct model per epoch, full `f64`), and this
//! type exists to demonstrate and test the guard semantics at the op level.

use crate::control::RunControl;
use crate::shard::{ShardRouter, ShardedVec};
use crate::tuning::{dense_scratch, ExecTuning};
use asgd_oracle::{ModelView, SparseGrad};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Error returned when an update is rejected because its epoch tag does not
/// match the entry's current epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleEpochError {
    /// Epoch the update was generated in.
    pub update_epoch: u32,
    /// Epoch the entry is currently in.
    pub current_epoch: u32,
}

impl std::fmt::Display for StaleEpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale update from epoch {} rejected (entry is in epoch {})",
            self.update_epoch, self.current_epoch
        )
    }
}

impl std::error::Error for StaleEpochError {}

fn pack(epoch: u32, value: f32) -> u64 {
    (u64::from(epoch) << 32) | u64::from(value.to_bits())
}

fn unpack(word: u64) -> (u32, f32) {
    ((word >> 32) as u32, f32::from_bits(word as u32))
}

/// A model whose every entry carries an epoch tag enforced on each update —
/// the single-word-CAS rendition of the paper's DCAS epoch guard.
///
/// The packed words live in a [`ShardedVec`]: the same router-backed
/// per-range arenas as the sharded `f64` store, so the guarded executor's
/// claim loop routes through the shard layer like the plain lock-free one
/// ([`GuardedModel::new`] builds the degenerate single-shard layout).
#[derive(Debug)]
pub struct GuardedModel {
    entries: ShardedVec<AtomicU64>,
}

impl GuardedModel {
    /// Creates a model at epoch 0 initialised to `x0` (values narrowed to
    /// `f32`), in a single arena.
    #[must_use]
    pub fn new(x0: &[f64]) -> Self {
        Self::with_shards(x0, 1)
    }

    /// Like [`GuardedModel::new`] with at most `shards` power-of-two chunked
    /// arenas (clamped to `1..=d`; shift-and-mask routing, same chunk
    /// rounding as [`crate::ShardedModel::with_options`]).
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    #[must_use]
    pub fn with_shards(x0: &[f64], shards: usize) -> Self {
        let router = ShardRouter::pow2(x0.len(), shards);
        Self {
            entries: ShardedVec::from_fn(router, |j| AtomicU64::new(pack(0, x0[j] as f32))),
        }
    }

    /// Model dimension.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.entries.dimension()
    }

    /// Number of shards the packed words are split into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.entries.router().shard_count()
    }

    /// Reads `(epoch, value)` of entry `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[must_use]
    pub fn read(&self, j: usize) -> (u32, f32) {
        unpack(self.entries.get(j).load(Ordering::SeqCst))
    }

    /// Streaming `‖X − y‖²` over the widened `f32` values, accumulated in
    /// index order — identical arithmetic to `l2_dist_sq` over a widened
    /// view scan, with no O(d) scratch.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != d`.
    #[must_use]
    pub fn dist_sq_to(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.dimension(), "dist_sq_to dimension mismatch");
        y.iter()
            .enumerate()
            .map(|(j, &b)| {
                let a = f64::from(self.read(j).1);
                (a - b) * (a - b)
            })
            .sum()
    }

    /// Epoch-guarded `fetch&add`: adds `delta` to entry `j` **only if** the
    /// entry is still in `epoch`. Returns the prior value on success.
    ///
    /// # Errors
    ///
    /// Returns [`StaleEpochError`] if the entry has moved to a different
    /// epoch — the stale update is dropped, which is the whole point of the
    /// guard.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn guarded_add(&self, j: usize, epoch: u32, delta: f32) -> Result<f32, StaleEpochError> {
        let entry = self.entries.get(j);
        let mut current = entry.load(Ordering::SeqCst);
        loop {
            let (cur_epoch, cur_value) = unpack(current);
            if cur_epoch != epoch {
                return Err(StaleEpochError {
                    update_epoch: epoch,
                    current_epoch: cur_epoch,
                });
            }
            let new = pack(epoch, cur_value + delta);
            match entry.compare_exchange_weak(current, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Ok(cur_value),
                Err(actual) => current = actual,
            }
        }
    }

    /// Advances entry `j` to `new_epoch`, carrying its value over — the
    /// epoch-transition step (performed entry-wise by whichever thread
    /// starts the new epoch).
    ///
    /// # Errors
    ///
    /// Returns [`StaleEpochError`] if the entry is not in `from_epoch`
    /// anymore (someone else already advanced it).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn advance_epoch(
        &self,
        j: usize,
        from_epoch: u32,
        new_epoch: u32,
    ) -> Result<(), StaleEpochError> {
        let entry = self.entries.get(j);
        let mut current = entry.load(Ordering::SeqCst);
        loop {
            let (cur_epoch, cur_value) = unpack(current);
            if cur_epoch != from_epoch {
                return Err(StaleEpochError {
                    update_epoch: from_epoch,
                    current_epoch: cur_epoch,
                });
            }
            let new = pack(new_epoch, cur_value);
            match entry.compare_exchange_weak(current, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Snapshot of all values (epochs discarded).
    #[must_use]
    pub fn snapshot_values(&self) -> Vec<f32> {
        self.entries
            .iter()
            .map(|e| unpack(e.load(Ordering::SeqCst)).1)
            .collect()
    }
}

/// Per-entry reads for sparse oracles: one atomic load per call, widening
/// the guard's `f32` storage back to `f64` (epoch tags discarded — the
/// guard is enforced on the *write* side).
impl ModelView for GuardedModel {
    fn dimension(&self) -> usize {
        self.dimension()
    }

    fn entry(&self, j: usize) -> f64 {
        f64::from(self.read(j).1)
    }
}

/// Configuration of a [`GuardedEpochSgd`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardedEpochSgdConfig {
    /// Worker thread count `n ≥ 1`.
    pub threads: usize,
    /// Total iteration budget across all epochs.
    pub iterations: u64,
    /// Initial learning rate `α₀ > 0` (halved every epoch).
    pub alpha0: f64,
    /// Halving epochs after the first (0 ⇒ a single constant-α epoch).
    pub halving_epochs: usize,
    /// Master seed; thread `i` derives coin stream `i`.
    pub seed: u64,
    /// Optional `ε`: record the first global claim index whose freshly read
    /// view satisfied `‖v − x*‖² ≤ ε`.
    pub success_radius_sq: Option<f64>,
}

/// Outcome of a [`GuardedEpochSgd`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedEpochSgdReport {
    /// Final model (entries widened from the guard's `f32` storage).
    pub final_model: Vec<f64>,
    /// `‖X_final − x*‖²`.
    pub final_dist_sq: f64,
    /// Iterations executed (= configured total, or fewer if cancelled).
    pub iterations: u64,
    /// Total epochs executed.
    pub epochs: usize,
    /// Gradient-entry updates dropped by the epoch guard (stale updates from
    /// threads still finishing an epoch after its entries advanced).
    pub stale_rejected: u64,
    /// Smallest global claim index whose view was inside the success region,
    /// if tracking was enabled and any view qualified (sampled every
    /// [`ExecTuning::success_check_stride`] claims on the sparse path).
    pub first_success_claim: Option<u64>,
    /// Wall-clock duration of the parallel section.
    pub elapsed: std::time::Duration,
    /// Whether the run took the O(Δ) sparse gradient path.
    pub used_sparse: bool,
    /// Whether the run was ended early by [`RunControl::stop`].
    pub cancelled: bool,
}

/// SGD on a [`GuardedModel`]: Algorithm 2's epoch structure enforced at the
/// *operation* level by the single-word-CAS epoch guard, on OS threads.
///
/// The first thread to exhaust an epoch's claim counter advances every
/// entry's epoch tag; updates still in flight from slower threads are then
/// rejected by the guard — exactly the "only apply updates in the epoch they
/// were generated" rule of §7, paid for with `f32` value precision.
#[derive(Debug)]
pub struct GuardedEpochSgd<O> {
    oracle: O,
    cfg: GuardedEpochSgdConfig,
    tuning: ExecTuning,
}

impl<O: asgd_oracle::GradientOracle> GuardedEpochSgd<O> {
    /// Creates the executor with default [`ExecTuning`] (the guard packs its
    /// own words, so only the sparse-path knobs apply here).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `alpha0` is not finite and positive.
    #[must_use]
    pub fn new(oracle: O, cfg: GuardedEpochSgdConfig) -> Self {
        assert!(cfg.threads >= 1, "at least one thread required");
        assert!(
            cfg.alpha0.is_finite() && cfg.alpha0 > 0.0,
            "alpha0 must be positive"
        );
        Self {
            oracle,
            cfg,
            tuning: ExecTuning::default(),
        }
    }

    /// Overrides the execution tuning (sparse policy and check stride; the
    /// layout/ordering knobs do not apply to the packed guard words).
    #[must_use]
    pub fn tuning(mut self, tuning: ExecTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Runs to completion.
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run(&self, x0: &[f64]) -> GuardedEpochSgdReport {
        self.run_controlled(x0, RunControl::default())
    }

    /// Like [`GuardedEpochSgd::run`], with a [`RunControl`] for cancellation
    /// and strided metrics (claim indices in the callback are global across
    /// epochs).
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run_controlled(&self, x0: &[f64], ctrl: RunControl<'_>) -> GuardedEpochSgdReport {
        let d = self.oracle.dimension();
        assert_eq!(x0.len(), d, "x0 dimension mismatch");
        let epochs = self.cfg.halving_epochs + 1;
        let base = self.cfg.iterations / epochs as u64;
        let rem = (self.cfg.iterations % epochs as u64) as usize;
        // Budgets sum to exactly `iterations`; early epochs absorb the
        // remainder.
        let budgets: Vec<u64> = (0..epochs).map(|e| base + u64::from(e < rem)).collect();
        let offsets: Vec<u64> = budgets
            .iter()
            .scan(0u64, |acc, b| {
                let off = *acc;
                *acc += b;
                Some(off)
            })
            .collect();

        let model = GuardedModel::with_shards(x0, self.tuning.shards.resolve(d).unwrap_or(1));
        let counters: Vec<AtomicU64> = (0..epochs).map(|_| AtomicU64::new(0)).collect();
        // advance[e] guards the transition into epoch e (0 = pending,
        // 1 = advancing, 2 = done); epoch 0 needs no transition.
        let advance: Vec<AtomicU64> = (0..epochs)
            .map(|e| AtomicU64::new(if e == 0 { 2 } else { 0 }))
            .collect();
        let stale = AtomicU64::new(0);
        let first_success = AtomicU64::new(u64::MAX);
        let interrupted = AtomicBool::new(false);
        let executed = AtomicU64::new(0);
        let seeds = asgd_math::rng::SeedSequence::new(self.cfg.seed);
        let use_sparse = self.tuning.sparse.use_sparse(d, self.oracle.max_support());
        let stride = self.tuning.stride();
        let grad_cap = self.oracle.max_support().unwrap_or(1);
        // Loop-invariant: resolve the minimizer virtual call once.
        let minimizer = self.oracle.minimizer();

        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for tid in 0..self.cfg.threads {
                let model = &model;
                let counters = &counters;
                let advance = &advance;
                let stale = &stale;
                let first_success = &first_success;
                let interrupted = &interrupted;
                let executed = &executed;
                let budgets = &budgets;
                let offsets = &offsets;
                let oracle = &self.oracle;
                let cfg = self.cfg;
                let mut rng = seeds.child_rng(tid as u64);
                let pin = self.tuning.pin;
                scope.spawn(move || {
                    if pin {
                        let _ = crate::pin::pin_current_thread(tid);
                    }
                    let mut view = dense_scratch(d, use_sparse, !use_sparse);
                    let mut grad = dense_scratch(d, use_sparse, !use_sparse);
                    let mut sgrad = SparseGrad::with_capacity(grad_cap);
                    let mut done = 0u64;
                    'epochs: for epoch in 0..epochs {
                        // Transition protocol: one thread advances every
                        // entry's epoch tag, the rest wait until done.
                        match advance[epoch].compare_exchange(
                            0,
                            1,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        ) {
                            Ok(_) => {
                                for j in 0..d {
                                    model
                                        .advance_epoch(j, epoch as u32 - 1, epoch as u32)
                                        .expect("single winner advances each entry once");
                                }
                                advance[epoch].store(2, Ordering::SeqCst);
                            }
                            Err(state) => {
                                if state != 2 {
                                    while advance[epoch].load(Ordering::SeqCst) != 2 {
                                        std::hint::spin_loop();
                                    }
                                }
                            }
                        }
                        let alpha = cfg.alpha0 / (1u64 << epoch.min(63)) as f64;
                        loop {
                            let claim = counters[epoch].fetch_add(1, Ordering::SeqCst);
                            if claim >= budgets[epoch] {
                                break;
                            }
                            let global_claim = offsets[epoch] + claim;
                            if global_claim.is_multiple_of(stride) && ctrl.is_stopped() {
                                interrupted.store(true, Ordering::SeqCst);
                                break 'epochs;
                            }
                            if use_sparse {
                                // O(Δ) path: sampled success check/metrics,
                                // per-entry reads of just the support.
                                let at_success = cfg.success_radius_sq.is_some()
                                    && global_claim.is_multiple_of(stride);
                                let at_metrics = ctrl.metrics_at(global_claim);
                                if at_success || at_metrics {
                                    // Streaming per-entry distance — no O(d)
                                    // scratch on the sparse path.
                                    let dist_sq = model.dist_sq_to(minimizer);
                                    if at_success
                                        && cfg.success_radius_sq.is_some_and(|eps| dist_sq <= eps)
                                    {
                                        first_success.fetch_min(global_claim, Ordering::SeqCst);
                                    }
                                    if at_metrics {
                                        ctrl.emit_metrics(global_claim, dist_sq);
                                    }
                                }
                                oracle.sample_gradient_sparse(model, &mut rng, &mut sgrad);
                                for &(j, gj) in sgrad.entries() {
                                    if gj != 0.0 {
                                        let delta = (-alpha * gj) as f32;
                                        if model.guarded_add(j, epoch as u32, delta).is_err() {
                                            stale.fetch_add(1, Ordering::SeqCst);
                                        }
                                    }
                                }
                            } else {
                                for (j, v) in view.iter_mut().enumerate() {
                                    *v = f64::from(model.read(j).1);
                                }
                                let at_metrics = ctrl.metrics_at(global_claim);
                                if cfg.success_radius_sq.is_some() || at_metrics {
                                    let dist_sq = asgd_math::vec::l2_dist_sq(&view, minimizer);
                                    if cfg.success_radius_sq.is_some_and(|eps| dist_sq <= eps) {
                                        first_success.fetch_min(global_claim, Ordering::SeqCst);
                                    }
                                    if at_metrics {
                                        ctrl.emit_metrics(global_claim, dist_sq);
                                    }
                                }
                                oracle.sample_gradient(&view, &mut rng, &mut grad);
                                for (j, &gj) in grad.iter().enumerate() {
                                    if gj != 0.0 {
                                        let delta = (-alpha * gj) as f32;
                                        if model.guarded_add(j, epoch as u32, delta).is_err() {
                                            stale.fetch_add(1, Ordering::SeqCst);
                                        }
                                    }
                                }
                            }
                            done += 1;
                        }
                    }
                    executed.fetch_add(done, Ordering::SeqCst);
                });
            }
        });
        let elapsed = start.elapsed();

        let final_model: Vec<f64> = model
            .snapshot_values()
            .iter()
            .map(|&v| f64::from(v))
            .collect();
        let final_dist_sq = asgd_math::vec::l2_dist_sq(&final_model, self.oracle.minimizer());
        let hit = first_success.load(Ordering::SeqCst);
        GuardedEpochSgdReport {
            final_model,
            final_dist_sq,
            iterations: executed.load(Ordering::SeqCst),
            epochs,
            stale_rejected: stale.load(Ordering::SeqCst),
            first_success_claim: (hit != u64::MAX).then_some(hit),
            elapsed,
            used_sparse: use_sparse,
            cancelled: interrupted.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pack_unpack_roundtrip() {
        for (e, v) in [(0u32, 0.0f32), (7, -1.25), (u32::MAX, f32::MAX)] {
            let (e2, v2) = unpack(pack(e, v));
            assert_eq!(e, e2);
            assert_eq!(v.to_bits(), v2.to_bits());
        }
    }

    #[test]
    fn same_epoch_updates_accumulate() {
        let m = GuardedModel::new(&[1.0]);
        assert_eq!(m.guarded_add(0, 0, 0.5), Ok(1.0));
        assert_eq!(m.guarded_add(0, 0, 0.25), Ok(1.5));
        assert_eq!(m.read(0), (0, 1.75));
        assert_eq!(m.dimension(), 1);
    }

    #[test]
    fn stale_epoch_update_is_dropped() {
        let m = GuardedModel::new(&[2.0]);
        m.advance_epoch(0, 0, 1).unwrap();
        let err = m.guarded_add(0, 0, 100.0).unwrap_err();
        assert_eq!(err.update_epoch, 0);
        assert_eq!(err.current_epoch, 1);
        assert!(err.to_string().contains("stale update"));
        // Value untouched, epoch-1 updates proceed.
        assert_eq!(m.read(0), (1, 2.0));
        assert_eq!(m.guarded_add(0, 1, 1.0), Ok(2.0));
    }

    #[test]
    fn advance_epoch_is_exactly_once() {
        let m = GuardedModel::new(&[3.0]);
        assert!(m.advance_epoch(0, 0, 1).is_ok());
        assert!(m.advance_epoch(0, 0, 1).is_err(), "second advance rejected");
    }

    #[test]
    fn concurrent_guarded_adds_conserve_within_epoch() {
        let m = Arc::new(GuardedModel::new(&[0.0]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        m.guarded_add(0, 0, 1.0).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.read(0), (0, 40_000.0));
    }

    #[test]
    fn guarded_epoch_sgd_converges_on_quadratic() {
        let oracle = Arc::new(asgd_oracle::NoisyQuadratic::new(3, 0.1).unwrap());
        let report = GuardedEpochSgd::new(
            Arc::clone(&oracle),
            GuardedEpochSgdConfig {
                threads: 4,
                iterations: 12_000,
                alpha0: 0.1,
                halving_epochs: 3,
                seed: 7,
                success_radius_sq: Some(0.05),
            },
        )
        .run(&[2.0, -2.0, 1.0]);
        assert_eq!(report.epochs, 4);
        assert_eq!(report.iterations, 12_000);
        assert!(
            report.final_dist_sq < 0.05,
            "final dist² {} (f32 precision)",
            report.final_dist_sq
        );
        assert!(report.first_success_claim.is_some());
    }

    #[test]
    fn guarded_epoch_sgd_single_thread_drops_nothing() {
        let oracle = Arc::new(asgd_oracle::NoisyQuadratic::new(2, 0.0).unwrap());
        let report = GuardedEpochSgd::new(
            oracle,
            GuardedEpochSgdConfig {
                threads: 1,
                iterations: 100,
                alpha0: 0.1,
                halving_epochs: 1,
                seed: 0,
                success_radius_sq: None,
            },
        )
        .run(&[1.0, 1.0]);
        assert_eq!(report.stale_rejected, 0, "no concurrency, no stale drops");
        assert!(report.final_dist_sq < 1.0);
    }

    #[test]
    fn guarded_epoch_budgets_cover_total_exactly() {
        // Odd totals distribute the remainder without losing iterations:
        // visible through convergence with an exact, non-divisible budget.
        let oracle = Arc::new(asgd_oracle::NoisyQuadratic::new(1, 0.0).unwrap());
        let report = GuardedEpochSgd::new(
            oracle,
            GuardedEpochSgdConfig {
                threads: 1,
                iterations: 101,
                alpha0: 0.2,
                halving_epochs: 2,
                seed: 0,
                success_radius_sq: None,
            },
        )
        .run(&[1.0]);
        assert_eq!(report.iterations, 101);
        // 101 noiseless contraction steps with α ∈ {0.2, 0.1, 0.05}.
        let expected = 0.8_f64.powi(34) * 0.9_f64.powi(34) * 0.95_f64.powi(33);
        assert!(
            (report.final_model[0] - expected).abs() < 1e-3,
            "got {} expected ≈ {expected} (f32 rounding)",
            report.final_model[0]
        );
    }

    #[test]
    fn guarded_epoch_sgd_sparse_path_converges_and_is_exact_single_thread() {
        // 1-thread, sparse path: guard drops nothing, and the O(Δ) loop
        // applies the same f32-narrowed updates the dense loop would.
        let oracle = Arc::new(asgd_oracle::SparseQuadratic::uniform(8, 1.0, 0.0).unwrap());
        let run = |sparse| {
            GuardedEpochSgd::new(
                Arc::clone(&oracle),
                GuardedEpochSgdConfig {
                    threads: 1,
                    iterations: 4_000,
                    alpha0: 0.05,
                    halving_epochs: 1,
                    seed: 11,
                    success_radius_sq: None,
                },
            )
            .tuning(crate::tuning::ExecTuning {
                sparse,
                ..crate::tuning::ExecTuning::default()
            })
            .run(&[1.0; 8])
        };
        let dense = run(crate::tuning::SparsePolicy::ForceDense);
        let sparse = run(crate::tuning::SparsePolicy::ForceSparse);
        assert!(!dense.used_sparse);
        assert!(sparse.used_sparse);
        assert_eq!(sparse.stale_rejected, 0);
        for (j, (a, b)) in dense
            .final_model
            .iter()
            .zip(&sparse.final_model)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "entry {j}");
        }
        assert!(
            sparse.final_dist_sq < 0.05,
            "dist² {}",
            sparse.final_dist_sq
        );
    }

    #[test]
    fn stop_flag_cancels_across_epochs_without_deadlock() {
        use std::sync::atomic::AtomicBool;
        let oracle = Arc::new(asgd_oracle::NoisyQuadratic::new(2, 0.1).unwrap());
        let flag = AtomicBool::new(true);
        let report = GuardedEpochSgd::new(
            oracle,
            GuardedEpochSgdConfig {
                threads: 4,
                iterations: u64::MAX / 8,
                alpha0: 0.01,
                halving_epochs: 3,
                seed: 2,
                success_radius_sq: None,
            },
        )
        .run_controlled(
            &[1.0, 1.0],
            RunControl {
                stop: Some(&flag),
                ..RunControl::default()
            },
        );
        assert!(report.cancelled);
        let stride = ExecTuning::default().stride();
        assert!(report.iterations <= 4 * stride, "{}", report.iterations);
    }

    #[test]
    fn sharded_guarded_model_matches_single_arena_semantics() {
        let x0 = [1.0, 2.0, 3.0, 4.0, 5.0];
        let flat = GuardedModel::new(&x0);
        let sharded = GuardedModel::with_shards(&x0, 3);
        assert_eq!(flat.shard_count(), 1);
        assert_eq!(sharded.shard_count(), 3);
        for j in 0..5 {
            assert_eq!(flat.read(j), sharded.read(j), "entry {j}");
            assert_eq!(
                flat.guarded_add(j, 0, 0.5),
                sharded.guarded_add(j, 0, 0.5),
                "entry {j}"
            );
        }
        sharded.advance_epoch(2, 0, 1).unwrap();
        assert!(sharded.guarded_add(2, 0, 1.0).is_err());
        assert_eq!(flat.snapshot_values()[3], sharded.snapshot_values()[3]);
        let y = vec![0.0; 5];
        let widened: Vec<f64> = sharded
            .snapshot_values()
            .iter()
            .map(|&v| f64::from(v))
            .collect();
        assert_eq!(
            sharded.dist_sq_to(&y).to_bits(),
            asgd_math::vec::l2_dist_sq(&widened, &y).to_bits(),
            "streaming dist² matches the widened scan bitwise"
        );
    }

    #[test]
    fn guarded_model_is_a_model_view() {
        let m = GuardedModel::new(&[1.5, -2.5]);
        let view: &dyn asgd_oracle::ModelView = &m;
        assert_eq!(view.dimension(), 2);
        assert_eq!(view.entry(0), 1.5);
        assert_eq!(view.entry(1), -2.5);
    }

    #[test]
    #[should_panic(expected = "alpha0 must be positive")]
    fn guarded_epoch_sgd_rejects_bad_alpha() {
        let oracle = Arc::new(asgd_oracle::NoisyQuadratic::new(1, 0.0).unwrap());
        let _ = GuardedEpochSgd::new(
            oracle,
            GuardedEpochSgdConfig {
                threads: 1,
                iterations: 1,
                alpha0: 0.0,
                halving_epochs: 0,
                seed: 0,
                success_radius_sq: None,
            },
        );
    }

    #[test]
    fn concurrent_epoch_transition_drops_exactly_the_stale_tail() {
        // Writers add in epoch 0 while one thread advances the epoch; every
        // successful add is reflected, every failed add is not: the final
        // value equals the number of Ok(_) results.
        let m = Arc::new(GuardedModel::new(&[0.0]));
        let oks = std::thread::scope(|s| {
            let writers: Vec<_> = (0..4)
                .map(|_| {
                    let m = Arc::clone(&m);
                    s.spawn(move || {
                        let mut oks = 0u32;
                        for _ in 0..50_000 {
                            if m.guarded_add(0, 0, 1.0).is_ok() {
                                oks += 1;
                            }
                        }
                        oks
                    })
                })
                .collect();
            let advancer = {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    // Let some writes land first.
                    std::thread::yield_now();
                    m.advance_epoch(0, 0, 1).expect("sole advancer");
                })
            };
            advancer.join().unwrap();
            writers.into_iter().map(|w| w.join().unwrap()).sum::<u32>()
        });
        let (epoch, value) = m.read(0);
        assert_eq!(epoch, 1);
        assert_eq!(
            value, oks as f32,
            "value reflects exactly the accepted adds"
        );
    }
}
