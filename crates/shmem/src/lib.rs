//! An executable model of the **asynchronous shared-memory machine with a
//! strong adaptive adversary** — the setting of *"The Convergence of
//! Stochastic Gradient Descent in Asynchronous Shared Memory"* (Alistarh,
//! De Sa, Konstantinov; PODC 2018), §2.
//!
//! # Model
//!
//! * `n` threads ([`process::Process`] state machines) communicate only
//!   through atomic registers ([`memory::Memory`]) via `read`, `write`,
//!   `fetch&add` and `compare&swap` ops ([`op::MemOp`]).
//! * The engine ([`engine::Engine`]) fires **one op per global step**, so
//!   every execution is sequentially consistent by construction.
//! * A [`sched::Scheduler`] decides which thread steps next with *full*
//!   knowledge of the machine — including each thread's declared next action
//!   and therefore the local coins it has already flipped. This is the strong
//!   adaptive adversary; it may also crash up to `n − 1` threads.
//! * The engine reconstructs the paper's iteration order (Lemma 6.1) and all
//!   contention quantities — `ρ(θ)`, `τ_max`, `τ_avg`, staleness `τ_t` — from
//!   tagged ops ([`op::OpTag`]), and can audit Lemma 6.2 and Lemma 6.4 on any
//!   execution ([`contention`]).
//!
//! # Example: two threads hammering a register under an adversary
//!
//! ```
//! use asgd_shmem::engine::Engine;
//! use asgd_shmem::memory::Memory;
//! use asgd_shmem::process::FaaHammer;
//! use asgd_shmem::sched::RandomScheduler;
//!
//! let report = Engine::builder()
//!     .memory(Memory::new(1, 0))
//!     .process(FaaHammer::new(0, 1.0, 100))
//!     .process(FaaHammer::new(0, -1.0, 100))
//!     .scheduler(RandomScheduler::new(7))
//!     .seed(42)
//!     .build()
//!     .run();
//! // fetch&add never loses updates, regardless of interleaving:
//! assert_eq!(report.memory.float(0), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod engine;
pub mod memory;
pub mod op;
pub mod process;
pub mod sched;
pub mod trace;

pub use contention::{ContentionReport, ContentionTracker};
pub use engine::{Engine, EngineBuilder, ExecutionReport, StopReason};
pub use memory::Memory;
pub use op::{Action, MemOp, OpResult, OpTag, Step, ThreadId};
pub use process::{Process, ProcessCtx};
pub use sched::{
    BoundedDelayAdversary, CrashAdversary, Decision, IterationSerial, RandomScheduler,
    RecordingScheduler, ReplayScheduler, SchedView, Scheduler, SerialScheduler,
    StaleGradientAdversary, StepRoundRobin, ThreadStatus, ThreadView,
};
pub use trace::{CellState, EventKind, EventRecord, Trace, TraceLevel, UpdateGrid};
