//! Single-nonzero-entry stochastic gradients — the De Sa et al. \[10\] regime.
//!
//! Theorem 6.3 (quoted from \[10\]) requires every stochastic gradient to
//! touch exactly one coordinate; this paper's contribution (§3, footnote 2)
//! is an analysis that *drops* that requirement. This workload exists so the
//! experiment suite can run both regimes side by side.

use crate::constants::Constants;
use crate::oracle::GradientOracle;
use crate::quadratic::InvalidWorkloadError;
use crate::sparse_grad::{ModelView, SparseGrad};
use asgd_math::gaussian::standard_normal;
use rand::{Rng, RngCore};

/// Diagonal quadratic `f(x) = ½·Σ_j w_j·x_j²` whose stochastic gradient
/// samples one coordinate uniformly and returns
/// `g̃(x) = (d·w_j·x_j + σ·z)·e_j`, `z ~ N(0,1)` — a single nonzero entry,
/// unbiased for `∇f`.
///
/// Constants:
/// * `c = min_j w_j` (exact),
/// * `L = √(d·Σ_j w_j²)`: under common random numbers
///   `E‖g̃(x)−g̃(y)‖ = (1/d)·Σ_j d·w_j·|x_j−y_j| ≤ √(Σ w_j²)·‖x−y‖`;
///   we report the looser `√(d·Σ w_j²)` which also dominates the
///   worst single coordinate `d·max_j w_j / √d`.
/// * `M²(R) = d·(max_j w_j)²·R² + σ²`: from
///   `E‖g̃(x)‖² = (1/d)·Σ_j (d²w_j²x_j² + σ²) = d·Σ_j w_j²x_j² + σ²`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseQuadratic {
    weights: Vec<f64>,
    sigma: f64,
    minimizer: Vec<f64>,
}

impl SparseQuadratic {
    /// Creates the workload with per-coordinate curvatures `weights` (all
    /// strictly positive) and noise level `sigma ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty, any weight is not strictly
    /// positive and finite, or `sigma` is negative/non-finite.
    pub fn new(weights: Vec<f64>, sigma: f64) -> Result<Self, InvalidWorkloadError> {
        if weights.is_empty() {
            return Err(InvalidWorkloadError("weights must be non-empty"));
        }
        if !weights.iter().all(|w| w.is_finite() && *w > 0.0) {
            return Err(InvalidWorkloadError("weights must be positive and finite"));
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(InvalidWorkloadError("sigma must be finite and >= 0"));
        }
        let d = weights.len();
        Ok(Self {
            weights,
            sigma,
            minimizer: vec![0.0; d],
        })
    }

    /// Uniform curvature `w_j = w` in dimension `d`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SparseQuadratic::new`].
    pub fn uniform(d: usize, w: f64, sigma: f64) -> Result<Self, InvalidWorkloadError> {
        if d == 0 {
            return Err(InvalidWorkloadError("dimension must be at least 1"));
        }
        Self::new(vec![w; d], sigma)
    }

    /// The per-coordinate curvatures.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The gradient value at coordinate `j` given the model value `xj` there,
    /// with `noise` already drawn.
    fn entry_value(&self, j: usize, xj: f64, noise: f64) -> f64 {
        self.dimension() as f64 * self.weights[j] * xj + noise
    }

    /// Draws the gradient noise term (consumes one normal draw iff σ > 0 —
    /// the same RNG schedule on every sampling path).
    fn draw_noise(&self, rng: &mut dyn RngCore) -> f64 {
        if self.sigma > 0.0 {
            self.sigma * standard_normal(rng)
        } else {
            0.0
        }
    }
}

impl GradientOracle for SparseQuadratic {
    fn dimension(&self) -> usize {
        self.weights.len()
    }

    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        let d = self.dimension();
        assert_eq!(x.len(), d, "x dimension mismatch");
        assert_eq!(out.len(), d, "out dimension mismatch");
        out.fill(0.0);
        let j = rng.gen_range(0..d);
        let noise = self.draw_noise(rng);
        out[j] = self.entry_value(j, x[j], noise);
    }

    fn max_support(&self) -> Option<usize> {
        Some(1)
    }

    fn sample_gradient_sparse(
        &self,
        view: &dyn ModelView,
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        // Same RNG schedule as the dense sampler (coordinate coin, then
        // noise), but exactly one model read — O(Δ) = O(1) per iteration.
        let d = self.dimension();
        assert_eq!(view.dimension(), d, "view dimension mismatch");
        out.clear();
        let j = rng.gen_range(0..d);
        let noise = self.draw_noise(rng);
        out.push(j, self.entry_value(j, view.entry(j), noise));
    }

    fn sample_support(&self, rng: &mut dyn RngCore, out: &mut Vec<usize>) -> bool {
        out.clear();
        out.push(rng.gen_range(0..self.dimension()));
        true
    }

    fn gradient_on_support(
        &self,
        support: &[usize],
        values: &[f64],
        rng: &mut dyn RngCore,
        out: &mut SparseGrad,
    ) {
        assert_eq!(support.len(), 1, "single-coordinate support");
        assert_eq!(values.len(), 1, "one value per support entry");
        out.clear();
        let noise = self.draw_noise(rng);
        out.push(support[0], self.entry_value(support[0], values[0], noise));
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dimension(), "x dimension mismatch");
        for ((o, &w), &xi) in out.iter_mut().zip(&self.weights).zip(x) {
            *o = w * xi;
        }
    }

    fn objective(&self, x: &[f64]) -> f64 {
        0.5 * x
            .iter()
            .zip(&self.weights)
            .map(|(&xi, &w)| w * xi * xi)
            .sum::<f64>()
    }

    fn minimizer(&self) -> &[f64] {
        &self.minimizer
    }

    fn constants(&self, radius: f64) -> Constants {
        assert!(radius > 0.0, "radius must be positive");
        let d = self.dimension() as f64;
        let c = self.weights.iter().copied().fold(f64::INFINITY, f64::min);
        let w_max = self.weights.iter().copied().fold(0.0_f64, f64::max);
        let w_sq_sum: f64 = self.weights.iter().map(|w| w * w).sum();
        let l = (d * w_sq_sum).sqrt();
        let m_sq = d * w_max * w_max * radius * radius + self.sigma * self.sigma;
        Constants::new(c, l, m_sq.max(f64::MIN_POSITIVE), radius)
    }

    fn name(&self) -> &str {
        "sparse-quadratic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::unbiasedness_gap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(SparseQuadratic::new(vec![], 0.0).is_err());
        assert!(SparseQuadratic::new(vec![1.0, 0.0], 0.0).is_err());
        assert!(SparseQuadratic::new(vec![1.0], -1.0).is_err());
        assert!(SparseQuadratic::uniform(0, 1.0, 0.0).is_err());
    }

    #[test]
    fn gradient_touches_exactly_one_entry() {
        let o = SparseQuadratic::uniform(8, 0.5, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = vec![1.0; 8];
        let mut g = vec![0.0; 8];
        for _ in 0..100 {
            o.sample_gradient(&x, &mut rng, &mut g);
            let nonzero = g.iter().filter(|v| **v != 0.0).count();
            assert!(nonzero <= 1, "more than one nonzero entry: {:?}", g);
        }
    }

    #[test]
    fn gradient_is_unbiased() {
        let o = SparseQuadratic::new(vec![0.5, 1.0, 2.0], 0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let gap = unbiasedness_gap(&o, &[1.0, -1.0, 0.5], &mut rng, 120_000);
        assert!(gap < 0.05, "gap {gap}");
    }

    #[test]
    fn objective_and_full_gradient() {
        let o = SparseQuadratic::new(vec![2.0, 4.0], 0.0).unwrap();
        assert_eq!(o.objective(&[1.0, 1.0]), 3.0);
        let mut g = vec![0.0; 2];
        o.full_gradient(&[1.0, -1.0], &mut g);
        assert_eq!(g, vec![2.0, -4.0]);
        assert_eq!(o.minimizer(), &[0.0, 0.0]);
        assert_eq!(o.weights(), &[2.0, 4.0]);
    }

    #[test]
    fn second_moment_bound_dominates_measurement() {
        let o = SparseQuadratic::new(vec![1.0, 0.5, 2.0], 0.7).unwrap();
        let radius = 2.0;
        let k = o.constants(radius);
        let mut rng = StdRng::seed_from_u64(5);
        // Point on the trust-region boundary in the steepest coordinate.
        let x = [0.0, 0.0, radius];
        let mut g = vec![0.0; 3];
        let mut acc = 0.0;
        let mut acc_sq = 0.0;
        let trials = 40_000;
        for _ in 0..trials {
            o.sample_gradient(&x, &mut rng, &mut g);
            let norm_sq = asgd_math::vec::l2_norm_sq(&g);
            acc += norm_sq;
            acc_sq += norm_sq * norm_sq;
        }
        let measured = acc / trials as f64;
        // At this x the bound is *tight* (x sits on the trust-region
        // boundary in the steepest coordinate), so the sample mean lands on
        // either side of it; allow Monte-Carlo error at ~4 standard errors.
        let variance = (acc_sq / trials as f64 - measured * measured).max(0.0);
        let stderr = (variance / trials as f64).sqrt();
        assert!(
            measured <= k.m_sq + 4.0 * stderr,
            "measured {measured} exceeds bound {} beyond sampling error {stderr}",
            k.m_sq
        );
    }

    #[test]
    fn sparse_paths_match_dense_bitwise() {
        // One seed, three sampling paths (dense, sparse-view, two-phase):
        // identical RNG schedule ⇒ identical gradients, bit for bit.
        let o = SparseQuadratic::new(vec![0.5, 1.0, 2.0, 0.25], 0.6).unwrap();
        let x = [1.0, -2.0, 0.5, 3.0];
        for seed in 0..20 {
            let mut dense = vec![0.0; 4];
            o.sample_gradient(&x, &mut StdRng::seed_from_u64(seed), &mut dense);

            let mut sparse = SparseGrad::new();
            o.sample_gradient_sparse(&&x[..], &mut StdRng::seed_from_u64(seed), &mut sparse);
            assert_eq!(sparse.len(), 1);
            let mut densified = vec![0.0; 4];
            sparse.densify_into(&mut densified);
            for (a, b) in dense.iter().zip(&densified) {
                assert_eq!(a.to_bits(), b.to_bits(), "sparse-view path");
            }

            let mut rng = StdRng::seed_from_u64(seed);
            let mut support = Vec::new();
            assert!(o.sample_support(&mut rng, &mut support));
            let values: Vec<f64> = support.iter().map(|&j| x[j]).collect();
            let mut two_phase = SparseGrad::new();
            o.gradient_on_support(&support, &values, &mut rng, &mut two_phase);
            two_phase.densify_into(&mut densified);
            for (a, b) in dense.iter().zip(&densified) {
                assert_eq!(a.to_bits(), b.to_bits(), "two-phase path");
            }
        }
        assert_eq!(o.max_support(), Some(1));
    }

    #[test]
    fn constants_reflect_extremes() {
        let o = SparseQuadratic::new(vec![0.25, 1.0, 4.0], 0.0).unwrap();
        let k = o.constants(1.0);
        assert_eq!(k.c, 0.25);
        assert!(k.l >= 4.0, "L must dominate the steepest coordinate");
        assert_eq!(o.name(), "sparse-quadratic");
    }
}
