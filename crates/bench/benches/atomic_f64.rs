//! Primitive cost of the paper's update operation: `fetch&add` on a shared
//! float, versus the alternatives it displaces.
//!
//! Columns of interest: CAS-loop `AtomicF64::fetch_add` (what Algorithm 1
//! uses), native integer `AtomicU64::fetch_add` (the hardware ceiling), and
//! a `Mutex<f64>` add (what coarse-grained designs pay *per entry*).

use asgd_hogwild::AtomicF64;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parking_lot::Mutex;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn bench_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("faa_uncontended");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));

    let f = AtomicF64::new(0.0);
    group.bench_function("atomic_f64_cas_loop", |b| {
        b.iter(|| f.fetch_add(black_box(1.0)))
    });

    let u = AtomicU64::new(0);
    group.bench_function("atomic_u64_native", |b| {
        b.iter(|| u.fetch_add(black_box(1), Ordering::SeqCst))
    });

    let m = Mutex::new(0.0_f64);
    group.bench_function("mutex_f64", |b| {
        b.iter(|| {
            let mut g = m.lock();
            *g += black_box(1.0);
            *g
        })
    });
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("faa_contended_4_threads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let adds_per_thread = 50_000_u64;

    group.bench_function("atomic_f64_cas_loop", |b| {
        b.iter_batched(
            || Arc::new(AtomicF64::new(0.0)),
            |x| {
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        let x = Arc::clone(&x);
                        s.spawn(move || {
                            for _ in 0..adds_per_thread {
                                x.fetch_add(1.0);
                            }
                        });
                    }
                });
                x.load()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("mutex_f64", |b| {
        b.iter_batched(
            || Arc::new(Mutex::new(0.0_f64)),
            |x| {
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        let x = Arc::clone(&x);
                        s.spawn(move || {
                            for _ in 0..adds_per_thread {
                                *x.lock() += 1.0;
                            }
                        });
                    }
                });
                *x.lock()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_uncontended, bench_contended);
criterion_main!(benches);
