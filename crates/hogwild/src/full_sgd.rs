//! Native Algorithm 2 — `FullSGD` on OS threads.
//!
//! Same structure as the simulated version in `asgd-core`: per-epoch model
//! arrays (the paper's own alternative to DCAS), an init race per epoch won
//! by CAS with losers spinning until the winner marks the epoch ready, a
//! snapshot of the final epoch's start state, and a shared `Acc` region the
//! final epoch's threads publish their locally accumulated updates into.
//! The result is `r = snapshot + Σᵢ Acc[i]` (Algorithm 2, line 9).

use crate::control::RunControl;
use crate::shard::{ParamStore, StoreWriter};
use crate::tuning::{dense_scratch, ExecTuning};
use asgd_math::rng::SeedSequence;
use asgd_oracle::{apply_dense_chunk, GradientOracle, SparseGrad};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration of a native Algorithm-2 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeFullSgdConfig {
    /// Initial learning rate `α₀ > 0`.
    pub alpha0: f64,
    /// Iterations per epoch `T`.
    pub epoch_iterations: u64,
    /// Halving epochs before the final accumulating epoch.
    pub halving_epochs: usize,
    /// Worker thread count `n ≥ 1`.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

/// Outcome of a native Algorithm-2 run.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeFullSgdReport {
    /// The collected result `r`.
    pub r: Vec<f64>,
    /// Final model of the last epoch (≈ `r` up to f64 summation order).
    pub final_model: Vec<f64>,
    /// `‖r − x*‖` (the Corollary 7.1 quantity).
    pub dist_to_opt: f64,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// Total epochs executed.
    pub epochs: usize,
    /// Iterations actually executed (= `epoch_iterations ×` total epochs, or
    /// fewer if cancelled).
    pub iterations: u64,
    /// Whether the run took the O(Δ) sparse gradient path.
    pub used_sparse: bool,
    /// Whether the run was ended early by [`RunControl::stop`]. The final
    /// epoch's local accumulators are still published, so `r` remains the
    /// snapshot-plus-sum of every applied final-epoch update.
    pub cancelled: bool,
}

/// The native Algorithm-2 executor.
#[derive(Debug)]
pub struct NativeFullSgd<O> {
    oracle: O,
    cfg: NativeFullSgdConfig,
    tuning: ExecTuning,
}

const GUARD_UNINIT: u64 = 0;
const GUARD_BUSY: u64 = 1;
const GUARD_READY: u64 = 2;

impl<O: GradientOracle> NativeFullSgd<O> {
    /// Creates the executor with default [`ExecTuning`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `alpha0` is not finite and positive.
    #[must_use]
    pub fn new(oracle: O, cfg: NativeFullSgdConfig) -> Self {
        assert!(cfg.threads >= 1, "at least one thread required");
        assert!(
            cfg.alpha0.is_finite() && cfg.alpha0 > 0.0,
            "alpha0 must be positive"
        );
        Self {
            oracle,
            cfg,
            tuning: ExecTuning::default(),
        }
    }

    /// Overrides the execution tuning (layout, ordering, sparse policy).
    #[must_use]
    pub fn tuning(mut self, tuning: ExecTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Runs Algorithm 2 to completion.
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run(&self, x0: &[f64]) -> NativeFullSgdReport {
        self.run_controlled(x0, RunControl::default())
    }

    /// Like [`NativeFullSgd::run`], with a [`RunControl`] for cancellation
    /// and strided metrics (claim indices in the callback are global across
    /// epochs; dist² is measured on the current epoch's model).
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run_controlled(&self, x0: &[f64], ctrl: RunControl<'_>) -> NativeFullSgdReport {
        let d = self.oracle.dimension();
        assert_eq!(x0.len(), d, "x0 dimension mismatch");
        let total_epochs = self.cfg.halving_epochs + 1;

        // Per-epoch stores (flat or sharded per the tuning); epoch 0 seeded
        // with x₀, later epochs zeroed until their init winner copies the
        // predecessor in.
        let models: Vec<ParamStore> = (0..total_epochs)
            .map(|e| {
                if e == 0 {
                    ParamStore::with_tuning(x0, &self.tuning)
                } else {
                    ParamStore::zeros_with_tuning(d, &self.tuning)
                }
            })
            .collect();
        let snapshot = ParamStore::zeros_with_tuning(d, &self.tuning);
        let acc = ParamStore::zeros_with_tuning(d, &self.tuning);
        let counters: Vec<AtomicU64> = (0..total_epochs).map(|_| AtomicU64::new(0)).collect();
        let guards: Vec<AtomicU64> = (0..total_epochs)
            .map(|e| AtomicU64::new(if e == 0 { GUARD_READY } else { GUARD_UNINIT }))
            .collect();
        // Epoch 0 of a single-epoch run starts from x₀; pre-fill the
        // snapshot accordingly (no init race writes it in that case).
        if total_epochs == 1 {
            for (j, &v) in x0.iter().enumerate() {
                snapshot.write(j, v);
            }
        }
        let seeds = SeedSequence::new(self.cfg.seed);
        let use_sparse = self.tuning.sparse.use_sparse(d, self.oracle.max_support());
        let stride = self.tuning.stride();
        let minimizer = self.oracle.minimizer();
        let grad_cap = self.oracle.max_support().unwrap_or(1);
        let interrupted = AtomicBool::new(false);
        let executed = AtomicU64::new(0);

        let start = Instant::now();
        std::thread::scope(|scope| {
            for tid in 0..self.cfg.threads {
                let models = &models;
                let snapshot = &snapshot;
                let acc = &acc;
                let counters = &counters;
                let guards = &guards;
                let interrupted = &interrupted;
                let executed = &executed;
                let oracle = &self.oracle;
                let cfg = self.cfg;
                let mut rng = seeds.child_rng(tid as u64);
                let pin = self.tuning.pin;
                scope.spawn(move || {
                    if pin {
                        let _ = crate::pin::pin_current_thread(tid);
                    }
                    // O(d) scratch exists only on the dense path; the sparse
                    // path streams its metrics samples and keeps its final-
                    // epoch accumulator sparse (asserted by `dense_scratch`).
                    let mut view = dense_scratch(d, use_sparse, !use_sparse);
                    let mut grad = dense_scratch(d, use_sparse, !use_sparse);
                    let mut local_acc = dense_scratch(d, use_sparse, !use_sparse);
                    let mut sgrad = SparseGrad::with_capacity(grad_cap);
                    let mut sparse_acc: BTreeMap<usize, f64> = BTreeMap::new();
                    let mut done = 0u64;
                    let mut stopped = false;
                    for epoch in 0..total_epochs {
                        let is_final = epoch + 1 == total_epochs;
                        // Epoch initialisation protocol.
                        if epoch > 0 {
                            match guards[epoch].compare_exchange(
                                GUARD_UNINIT,
                                GUARD_BUSY,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            ) {
                                Ok(_) => {
                                    // Winner: copy predecessor (late epoch-
                                    // (e−1) writes after this copy are
                                    // dropped — the guard semantics).
                                    for j in 0..d {
                                        let v = models[epoch - 1].read(j);
                                        models[epoch].write(j, v);
                                        if is_final {
                                            snapshot.write(j, v);
                                        }
                                    }
                                    guards[epoch].store(GUARD_READY, Ordering::SeqCst);
                                }
                                Err(_) => {
                                    while guards[epoch].load(Ordering::SeqCst) != GUARD_READY {
                                        std::hint::spin_loop();
                                    }
                                }
                            }
                        }
                        // EpochSGD on this epoch's model.
                        let alpha = cfg.alpha0 / (1u64 << epoch.min(63)) as f64;
                        let model = &models[epoch];
                        // Batched shard-counter accounting for this epoch's
                        // store; flushes on drop at epoch end.
                        let mut writer = StoreWriter::new(model);
                        if is_final {
                            local_acc.fill(0.0);
                            sparse_acc.clear();
                        }
                        loop {
                            let claim = counters[epoch].fetch_add(1, Ordering::SeqCst);
                            if claim >= cfg.epoch_iterations {
                                break;
                            }
                            let global_claim = epoch as u64 * cfg.epoch_iterations + claim;
                            if global_claim.is_multiple_of(stride) && ctrl.is_stopped() {
                                interrupted.store(true, Ordering::SeqCst);
                                stopped = true;
                                break;
                            }
                            if use_sparse {
                                // O(Δ): per-entry reads of the gradient's
                                // support, no full view materialisation —
                                // the strided metrics sample streams too.
                                if ctrl.metrics_at(global_claim) {
                                    ctrl.emit_metrics(global_claim, model.dist_sq_to(minimizer));
                                }
                                oracle.sample_gradient_sparse(model, &mut rng, &mut sgrad);
                                for &(j, gj) in sgrad.entries() {
                                    if gj != 0.0 {
                                        let delta = -alpha * gj;
                                        writer.fetch_add(j, delta);
                                        if is_final {
                                            *sparse_acc.entry(j).or_insert(0.0) += delta;
                                        }
                                    }
                                }
                            } else {
                                model.read_view(&mut view);
                                if ctrl.metrics_at(global_claim) {
                                    ctrl.emit_metrics(
                                        global_claim,
                                        asgd_math::vec::l2_dist_sq(&view, minimizer),
                                    );
                                }
                                oracle.sample_gradient(&view, &mut rng, &mut grad);
                                apply_dense_chunk(&grad, -alpha, |j, delta| {
                                    writer.fetch_add(j, delta);
                                    if is_final {
                                        local_acc[j] += delta;
                                    }
                                });
                            }
                            done += 1;
                        }
                        if is_final {
                            // Both accumulators publish in ascending index
                            // order, skipping entries that net to zero —
                            // identical `Acc` arithmetic on either path
                            // (`BTreeMap` iterates keys ascending).
                            for (j, &a) in local_acc.iter().enumerate() {
                                if a != 0.0 {
                                    acc.fetch_add(j, a);
                                }
                            }
                            for (&j, &a) in &sparse_acc {
                                if a != 0.0 {
                                    acc.fetch_add(j, a);
                                }
                            }
                        }
                        if stopped {
                            break;
                        }
                    }
                    executed.fetch_add(done, Ordering::SeqCst);
                });
            }
        });
        let elapsed = start.elapsed();

        let cancelled = interrupted.load(Ordering::SeqCst);
        // A run cancelled before the final epoch was initialised has an
        // untouched (all-zero) snapshot/Acc/final-model; report the deepest
        // *live* epoch's model instead, so cancelled reports always describe
        // real partial progress.
        let live_epoch = (0..total_epochs)
            .rev()
            .find(|&e| guards[e].load(Ordering::SeqCst) == GUARD_READY)
            .unwrap_or(0);
        let (r, final_model) = if cancelled && live_epoch + 1 < total_epochs {
            let live = models[live_epoch].snapshot();
            (live.clone(), live)
        } else {
            let snap = snapshot.snapshot();
            let acc_final = acc.snapshot();
            let r: Vec<f64> = snap.iter().zip(&acc_final).map(|(s, a)| s + a).collect();
            (r, models[total_epochs - 1].snapshot())
        };
        let dist_to_opt = asgd_math::vec::l2_dist(&r, self.oracle.minimizer());
        NativeFullSgdReport {
            r,
            final_model,
            dist_to_opt,
            elapsed,
            epochs: total_epochs,
            iterations: executed.load(Ordering::SeqCst),
            used_sparse: use_sparse,
            cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::NoisyQuadratic;
    use std::sync::Arc;

    #[test]
    fn r_reconstructs_final_model() {
        let oracle = Arc::new(NoisyQuadratic::new(3, 0.3).unwrap());
        let report = NativeFullSgd::new(
            Arc::clone(&oracle),
            NativeFullSgdConfig {
                alpha0: 0.2,
                epoch_iterations: 500,
                halving_epochs: 2,
                threads: 4,
                seed: 3,
            },
        )
        .run(&[1.0, -1.0, 0.5]);
        assert_eq!(report.epochs, 3);
        for j in 0..3 {
            assert!(
                (report.r[j] - report.final_model[j]).abs() < 1e-9,
                "entry {j}: r={} model={}",
                report.r[j],
                report.final_model[j]
            );
        }
    }

    #[test]
    fn halving_beats_fixed_alpha_noise_floor() {
        let oracle = Arc::new(NoisyQuadratic::new(1, 1.0).unwrap());
        let single = NativeFullSgd::new(
            Arc::clone(&oracle),
            NativeFullSgdConfig {
                alpha0: 0.5,
                epoch_iterations: 1_000,
                halving_epochs: 0,
                threads: 2,
                seed: 5,
            },
        )
        .run(&[4.0]);
        let halved = NativeFullSgd::new(
            Arc::clone(&oracle),
            NativeFullSgdConfig {
                alpha0: 0.5,
                epoch_iterations: 1_000,
                halving_epochs: 6,
                threads: 2,
                seed: 5,
            },
        )
        .run(&[4.0]);
        assert!(
            halved.dist_to_opt < single.dist_to_opt,
            "halving {} vs fixed {}",
            halved.dist_to_opt,
            single.dist_to_opt
        );
        assert!(halved.dist_to_opt < 0.25, "dist {}", halved.dist_to_opt);
    }

    #[test]
    fn single_epoch_uses_x0_snapshot() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.0).unwrap());
        let report = NativeFullSgd::new(
            oracle,
            NativeFullSgdConfig {
                alpha0: 0.1,
                epoch_iterations: 200,
                halving_epochs: 0,
                threads: 2,
                seed: 1,
            },
        )
        .run(&[1.0, 1.0]);
        for j in 0..2 {
            assert!(
                (report.r[j] - report.final_model[j]).abs() < 1e-9,
                "entry {j} mismatch in single-epoch mode"
            );
        }
    }

    #[test]
    fn converges_with_many_threads() {
        let oracle = Arc::new(NoisyQuadratic::new(4, 0.5).unwrap());
        let report = NativeFullSgd::new(
            oracle,
            NativeFullSgdConfig {
                alpha0: 0.25,
                epoch_iterations: 2_000,
                halving_epochs: 5,
                threads: 8,
                seed: 11,
            },
        )
        .run(&[2.0, -2.0, 2.0, -2.0]);
        assert!(report.dist_to_opt < 0.5, "dist {}", report.dist_to_opt);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn sparse_path_still_reconstructs_r() {
        // The r = snapshot + ΣAcc identity must hold on the O(Δ) path too:
        // local accumulation sees exactly the applied deltas either way.
        let oracle = Arc::new(asgd_oracle::SparseQuadratic::uniform(8, 1.0, 0.2).unwrap());
        let report = NativeFullSgd::new(
            oracle,
            NativeFullSgdConfig {
                alpha0: 0.05,
                epoch_iterations: 800,
                halving_epochs: 2,
                threads: 4,
                seed: 9,
            },
        )
        .run(&[1.0; 8]);
        assert!(report.used_sparse, "Auto selects sparse at Δ=1,d=8");
        for j in 0..8 {
            assert!(
                (report.r[j] - report.final_model[j]).abs() < 1e-9,
                "entry {j}: r={} model={}",
                report.r[j],
                report.final_model[j]
            );
        }
    }

    #[test]
    fn completed_runs_report_their_full_budget() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.1).unwrap());
        let report = NativeFullSgd::new(
            oracle,
            NativeFullSgdConfig {
                alpha0: 0.1,
                epoch_iterations: 300,
                halving_epochs: 2,
                threads: 3,
                seed: 4,
            },
        )
        .run(&[1.0, -1.0]);
        assert_eq!(report.iterations, 900);
        assert!(!report.cancelled);
    }

    #[test]
    fn stop_flag_cancels_and_r_still_reconstructs_applied_updates() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.1).unwrap());
        let flag = AtomicBool::new(false);
        // Single epoch so every applied update is accumulator-tracked; raise
        // the flag from the metrics callback after a few strides.
        let sink = |claim: u64, _d: f64| {
            if claim >= 64 {
                flag.store(true, Ordering::SeqCst);
            }
        };
        let report = NativeFullSgd::new(
            oracle,
            NativeFullSgdConfig {
                alpha0: 0.01,
                epoch_iterations: u64::MAX / 4,
                halving_epochs: 0,
                threads: 2,
                seed: 6,
            },
        )
        .run_controlled(
            &[1.0, -1.0],
            RunControl {
                stop: Some(&flag),
                metrics: Some(crate::control::MetricsSink {
                    stride: 16,
                    f: &sink,
                }),
                ..RunControl::default()
            },
        );
        assert!(report.cancelled);
        assert!(report.iterations < 100_000, "{}", report.iterations);
        // r = snapshot + ΣAcc must still reconstruct the final model.
        for j in 0..2 {
            assert!(
                (report.r[j] - report.final_model[j]).abs() < 1e-9,
                "entry {j}: r={} model={}",
                report.r[j],
                report.final_model[j]
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha0 must be positive")]
    fn rejects_bad_alpha() {
        let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).unwrap());
        let _ = NativeFullSgd::new(
            oracle,
            NativeFullSgdConfig {
                alpha0: -1.0,
                epoch_iterations: 1,
                halving_epochs: 0,
                threads: 1,
                seed: 0,
            },
        );
    }
}
