//! **Theorem 3.1** — sequential SGD failure probability vs the bound.
//!
//! Paper claim: with `α = cεϑ/M²`, the probability that sequential SGD has
//! not entered `S = {‖x−x*‖² ≤ ε}` within `T` steps is at most
//! `M²/(c²εϑT)·plog(e‖x₀−x*‖²/ε)` — decaying like `1/T`.
//!
//! Measured: `P̂(F_T)` over independent trials, against the bound. The bound
//! must dominate the measurement (up to CI), and the measured failure
//! probability must be non-increasing in `T`.

use crate::ExperimentOutput;
use asgd_core::sequential::SequentialSgd;
use asgd_metrics::table::fmt_f;
use asgd_metrics::{estimate_probability, Table};
use asgd_oracle::GradientOracle;
use asgd_theory::bounds;

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("t31");
    let d = 4;
    let sigma = 1.0;
    let oracle = super::quad(d, sigma);
    let radius = 2.0;
    let consts = oracle.constants(radius);
    let eps = 0.25;
    let theta = 1.0;
    let x0 = vec![1.0, 1.0, 0.0, 0.0]; // ‖x₀−x*‖² = 2 (inside the radius)
    let x0_dist_sq = 2.0;
    let alpha = bounds::theorem_3_1_learning_rate(&consts, eps, theta);
    let trials = if quick { 30 } else { 200 };
    // Short horizons where failures are actually observable, plus long ones
    // where the 1/T decay of the bound is visible.
    let horizons: &[u64] = if quick {
        &[60, 200, 800]
    } else {
        &[50, 75, 100, 200, 400, 800, 1600, 3200]
    };

    let mut table = Table::new(
        format!(
            "Theorem 3.1: sequential SGD, α={} (cεϑ/M²), ε={eps}",
            fmt_f(alpha)
        ),
        &[
            "T",
            "P(F_T) measured",
            "95% CI upper",
            "T3.1 bound",
            "bound holds",
        ],
    );
    let mut measured_series = Vec::new();
    for &t in horizons {
        let est = estimate_probability(trials, 0xA31 + t, |seed| {
            let report = SequentialSgd::new(&oracle)
                .learning_rate(alpha)
                .iterations(t)
                .initial_point(x0.clone())
                .success_radius_sq(eps)
                .seed(seed)
                .run();
            report.hit_iteration.is_none() // failure event F_T
        });
        let bound = bounds::theorem_3_1(&consts, eps, theta, t, x0_dist_sq);
        let holds = est.consistent_with_upper_bound(bound);
        table.row(&[
            t.to_string(),
            fmt_f(est.estimate()),
            fmt_f(est.interval.upper),
            fmt_f(bound),
            holds.to_string(),
        ]);
        measured_series.push((t, est.estimate()));
    }
    let monotone = measured_series.windows(2).all(|w| w[1].1 <= w[0].1 + 0.1);
    out.notes.push(format!(
        "measured failure probability non-increasing in T (±0.1 sampling slack): {monotone}"
    ));
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_dominates_measurement() {
        let out = run(true);
        let rendered = out.tables[0].render();
        assert!(
            !rendered.contains("false"),
            "T3.1 bound violated:\n{rendered}"
        );
    }

    #[test]
    fn table_has_expected_shape() {
        let out = run(true);
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].len(), 3, "quick mode: three horizons");
        assert!(out.notes[0].contains("non-increasing"));
    }
}
