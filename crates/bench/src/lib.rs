//! Experiment harness regenerating every paper-claim table, plus shared
//! fixtures for the criterion benches.
//!
//! Each submodule of [`experiments`] reproduces one artifact of the paper
//! (a theorem's bound-vs-measurement table, the Figure-1 grid, a §8
//! discussion claim). Every experiment has two sizes: `quick` (seconds,
//! used by tests and smoke runs) and full (the defaults the committed
//! `EXPERIMENTS.md` numbers come from; run via
//! `cargo run -p asgd-bench --release --bin experiments -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod experiments;

use asgd_metrics::Table;

/// Output of one experiment: tables plus free-form notes (verdicts, fitted
/// slopes, rendered grids).
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Identifier (e.g. `"t65"`), used for CSV file names.
    pub id: String,
    /// The generated tables.
    pub tables: Vec<Table>,
    /// Additional findings to print verbatim.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Creates an empty output for experiment `id`.
    #[must_use]
    pub fn new(id: &str) -> Self {
        Self {
            id: id.to_string(),
            ..Self::default()
        }
    }

    /// Renders everything for stdout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== experiment {} ===\n", self.id));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(n);
            out.push('\n');
        }
        out
    }
}

/// The registry of all experiments, in DESIGN.md order.
#[must_use]
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "fig1",
        "t31",
        "t51",
        "t65",
        "c67",
        "l62",
        "l64",
        "tavg",
        "c71",
        "stepsize",
        "regimes",
        "speedup",
        "sparse",
        "sparse-scaling",
        "serving",
        "serving-net",
        "ingest",
    ]
}

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics if `id` is unknown.
#[must_use]
pub fn run_experiment(id: &str, quick: bool) -> ExperimentOutput {
    match id {
        "fig1" => experiments::fig1::run(quick),
        "t31" => experiments::t31::run(quick),
        "t51" => experiments::t51::run(quick),
        "t65" => experiments::t65::run(quick),
        "c67" => experiments::c67::run(quick),
        "l62" => experiments::contention::run_l62(quick),
        "l64" => experiments::contention::run_l64(quick),
        "tavg" => experiments::contention::run_tavg(quick),
        "c71" => experiments::c71::run(quick),
        "stepsize" => experiments::stepsize::run(quick),
        "regimes" => experiments::regimes::run(quick),
        "speedup" => experiments::speedup::run(quick),
        "sparse" => experiments::sparse::run(quick),
        "sparse-scaling" => experiments::sparse_scaling::run(quick),
        "serving" => experiments::serving::run(quick),
        "serving-net" => experiments::serving_net::run(quick),
        "ingest" => experiments::ingest::run(quick),
        other => panic!(
            "unknown experiment id: {other} (known: {:?})",
            experiment_ids()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_runnable_ids_exist() {
        // Every listed id dispatches (the experiments themselves are smoke-
        // tested in their own modules; here we only check the registry
        // wiring for a trivially cheap one).
        assert!(experiment_ids().contains(&"t51"));
        assert!(experiment_ids().contains(&"sparse-scaling"));
        assert!(experiment_ids().contains(&"serving"));
        assert!(experiment_ids().contains(&"serving-net"));
        assert!(experiment_ids().contains(&"ingest"));
        assert_eq!(experiment_ids().len(), 17);
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        let _ = run_experiment("nope", true);
    }

    #[test]
    fn output_render_includes_id() {
        let out = ExperimentOutput::new("demo");
        assert!(out.render().contains("=== experiment demo ==="));
    }
}
