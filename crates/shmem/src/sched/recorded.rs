//! Recording and replaying schedules.
//!
//! Determinism is a first-class property of the simulator: the same master
//! seed and scheduler must reproduce the same execution bit-for-bit. These
//! wrappers make that testable — record a schedule once, replay it, and the
//! resulting executions must be identical.
//!
//! [`encode_schedule`]/[`decode_schedule`] give decision logs a stable
//! one-line text form (`s3` = schedule thread 3, `c1` = crash thread 1,
//! space-separated), so a recorded adversarial schedule — or an explorer
//! counterexample from `asgd-chaos`, which uses the same [`Decision`]
//! vocabulary — can be committed, attached to a bug report, and replayed
//! verbatim later.

use super::{Decision, SchedView, Scheduler};
use std::cell::RefCell;
use std::rc::Rc;

/// A token [`decode_schedule`] could not parse, with its 0-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// The offending whitespace-separated token.
    pub token: String,
    /// Its 0-based index in the token stream.
    pub position: usize,
}

impl std::fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad schedule token `{}` at position {} (want `s<tid>` or `c<tid>`)",
            self.token, self.position
        )
    }
}

impl std::error::Error for ScheduleParseError {}

/// Renders a decision log as replayable text: `s<tid>` per scheduled step,
/// `c<tid>` per crash, space-separated. The empty log encodes as `""`.
#[must_use]
pub fn encode_schedule(decisions: &[Decision]) -> String {
    let mut out = String::new();
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match d {
            Decision::Schedule(tid) => {
                out.push('s');
                out.push_str(&tid.to_string());
            }
            Decision::Crash(tid) => {
                out.push('c');
                out.push_str(&tid.to_string());
            }
        }
    }
    out
}

/// Parses the text form produced by [`encode_schedule`]. Whitespace between
/// tokens is free-form, so logs survive line wrapping in artifacts.
///
/// # Errors
///
/// [`ScheduleParseError`] naming the first malformed token.
pub fn decode_schedule(text: &str) -> Result<Vec<Decision>, ScheduleParseError> {
    let mut out = Vec::new();
    for (position, token) in text.split_whitespace().enumerate() {
        let err = || ScheduleParseError {
            token: token.to_string(),
            position,
        };
        let mut chars = token.chars();
        let kind = chars.next().ok_or_else(err)?;
        let tid: usize = chars.as_str().parse().map_err(|_| err())?;
        match kind {
            's' => out.push(Decision::Schedule(tid)),
            'c' => out.push(Decision::Crash(tid)),
            _ => return Err(err()),
        }
    }
    Ok(out)
}

/// Shared handle to a recorded decision log.
pub type ScheduleLog = Rc<RefCell<Vec<Decision>>>;

/// Wraps a scheduler, appending every decision to a shared log.
#[derive(Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    log: ScheduleLog,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`; decisions are appended to a fresh log obtainable via
    /// [`RecordingScheduler::log`].
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            log: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// A handle to the decision log (cheap to clone, shared with the
    /// scheduler).
    #[must_use]
    pub fn log(&self) -> ScheduleLog {
        Rc::clone(&self.log)
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn decide(&mut self, view: &SchedView<'_>) -> Decision {
        let d = self.inner.decide(view);
        self.log.borrow_mut().push(d);
        d
    }

    fn name(&self) -> &str {
        "recording"
    }
}

/// Replays a previously recorded schedule verbatim.
///
/// # Panics
///
/// `decide` panics if the log is exhausted — a replay must cover the whole
/// execution, and running out means the replayed run diverged from the
/// recorded one.
#[derive(Debug, Clone)]
pub struct ReplayScheduler {
    decisions: Vec<Decision>,
    pos: usize,
}

impl ReplayScheduler {
    /// Creates a replayer from a decision sequence.
    #[must_use]
    pub fn new(decisions: Vec<Decision>) -> Self {
        Self { decisions, pos: 0 }
    }

    /// Creates a replayer from a recording log handle.
    ///
    /// # Panics
    ///
    /// Panics if the log is still mutably borrowed.
    #[must_use]
    pub fn from_log(log: &ScheduleLog) -> Self {
        Self::new(log.borrow().clone())
    }

    /// Number of decisions not yet replayed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.decisions.len() - self.pos
    }
}

impl Scheduler for ReplayScheduler {
    fn decide(&mut self, _view: &SchedView<'_>) -> Decision {
        let d = *self
            .decisions
            .get(self.pos)
            .expect("replay log exhausted: replayed execution diverged from recording");
        self.pos += 1;
        d
    }

    fn name(&self) -> &str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ContentionTracker;
    use crate::memory::Memory;
    use crate::op::{Action, MemOp, OpTag};
    use crate::sched::{SerialScheduler, ThreadStatus, ThreadView};

    fn one_thread_view() -> Vec<ThreadView> {
        vec![ThreadView {
            id: 0,
            status: ThreadStatus::Runnable,
            pending: Some(Action::Op {
                op: MemOp::ReadF64 { idx: 0 },
                tag: OpTag::Untagged,
            }),
        }]
    }

    #[test]
    fn record_then_replay_matches() {
        let threads = one_thread_view();
        let m = Memory::new(1, 0);
        let tr = ContentionTracker::new(1);
        let view = SchedView {
            step: 0,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 0,
        };
        let mut rec = RecordingScheduler::new(SerialScheduler::new());
        let log = rec.log();
        let d1 = rec.decide(&view);
        let d2 = rec.decide(&view);
        let mut rep = ReplayScheduler::from_log(&log);
        assert_eq!(rep.remaining(), 2);
        assert_eq!(rep.decide(&view), d1);
        assert_eq!(rep.decide(&view), d2);
        assert_eq!(rep.remaining(), 0);
    }

    #[test]
    fn schedule_text_round_trips() {
        let log = vec![
            Decision::Schedule(0),
            Decision::Schedule(12),
            Decision::Crash(3),
            Decision::Schedule(1),
        ];
        let text = encode_schedule(&log);
        assert_eq!(text, "s0 s12 c3 s1");
        assert_eq!(decode_schedule(&text).expect("round trip"), log);
        assert_eq!(decode_schedule("").expect("empty"), vec![]);
        assert_eq!(
            decode_schedule("  s0\n s1\t c2 ").expect("free-form whitespace"),
            vec![
                Decision::Schedule(0),
                Decision::Schedule(1),
                Decision::Crash(2)
            ]
        );
    }

    #[test]
    fn bad_schedule_tokens_are_typed_errors() {
        for (text, bad_token, position) in [
            ("s0 x1", "x1", 1),
            ("s", "s", 0),
            ("s0 c", "c", 1),
            ("é3", "é3", 0),
            ("s-1", "s-1", 0),
        ] {
            let err = decode_schedule(text).expect_err(text);
            assert_eq!(err.token, bad_token, "{text}");
            assert_eq!(err.position, position, "{text}");
            assert!(err.to_string().contains(bad_token));
        }
    }

    #[test]
    #[should_panic(expected = "replay log exhausted")]
    fn replay_exhaustion_panics() {
        let threads = one_thread_view();
        let m = Memory::new(1, 0);
        let tr = ContentionTracker::new(1);
        let view = SchedView {
            step: 0,
            memory: &m,
            threads: &threads,
            tracker: &tr,
            crashes_remaining: 0,
        };
        let mut rep = ReplayScheduler::new(vec![]);
        let _ = rep.decide(&view);
    }
}
