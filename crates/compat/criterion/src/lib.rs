//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use so they compile and
//! run without crates.io access. Two execution modes, selected by the
//! command line cargo passes to the bench binary:
//!
//! * **bench mode** (`--bench` present, i.e. `cargo bench`): every benchmark
//!   is warmed up and timed over a fixed wall-clock budget; the mean
//!   time/iteration is printed. No statistics beyond the mean — this is a
//!   stand-in, not a measurement lab.
//! * **smoke mode** (anything else, e.g. `cargo test` building bench
//!   targets): every benchmark routine runs exactly once, so bench code is
//!   exercised by the test suite at negligible cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation (accepted; used to print an elements/second rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per routine call.
    Elements(u64),
    /// Bytes processed per routine call.
    Bytes(u64),
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion of the things benches pass as benchmark names.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Smoke,
    Bench,
}

/// The top-level benchmark context.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let mode = if std::env::args().any(|a| a == "--bench") {
            Mode::Bench
        } else {
            Mode::Smoke
        };
        Self { mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            mode: self.mode,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stand-in
    /// times a single continuous run).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into_id(), &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.into_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: self.mode,
            budget: self.measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        match self.mode {
            Mode::Smoke => println!("bench {label}: ok (smoke mode, 1 iteration)"),
            Mode::Bench => {
                let per_iter = if bencher.iters == 0 {
                    Duration::ZERO
                } else {
                    bencher.elapsed
                        / u32::try_from(bencher.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
                };
                let rate = self.throughput.map(|t| match t {
                    Throughput::Elements(e) | Throughput::Bytes(e) => {
                        let secs = per_iter.as_secs_f64();
                        if secs > 0.0 {
                            format!(" ({:.3e} elems/s)", e as f64 / secs)
                        } else {
                            String::new()
                        }
                    }
                });
                println!(
                    "bench {label}: {:?}/iter over {} iters{}",
                    per_iter,
                    bencher.iters,
                    rate.unwrap_or_default()
                );
            }
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
                self.iters = 1;
            }
            Mode::Bench => {
                // Warmup.
                for _ in 0..3 {
                    black_box(routine());
                }
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < self.budget {
                    black_box(routine());
                    iters += 1;
                }
                self.iters = iters.max(1);
                self.elapsed = start.elapsed();
            }
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded from
    /// timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                let input = setup();
                black_box(routine(input));
                self.iters = 1;
            }
            Mode::Bench => {
                let input = setup();
                black_box(routine(input));
                let start = Instant::now();
                let mut timed = Duration::ZERO;
                let mut iters = 0u64;
                while start.elapsed() < self.budget {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    timed += t0.elapsed();
                    iters += 1;
                }
                self.iters = iters.max(1);
                self.elapsed = timed;
            }
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(4));
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn smoke_mode_runs_every_routine_once() {
        // Under cargo test there is no --bench argument, so this exercises
        // the smoke path end to end.
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
