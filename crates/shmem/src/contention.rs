//! Iteration ordering and contention accounting.
//!
//! The paper (§6.1) orders concurrent SGD iterations by the time of their
//! first model `fetch&add` (Lemma 6.1) and defines, for each iteration θ:
//!
//! * the *interval contention* `ρ(θ)` — the number of iterations that can
//!   execute concurrently with θ (§2),
//! * `τ_max = max_θ ρ(θ)` and `τ_avg = (1/T)·Σ_θ ρ(θ)`, with the known bound
//!   `τ_avg ≤ 2n` (Gibson–Gramoli),
//! * the *staleness* `τ_t` — iteration `t`'s view `v_t` may be missing
//!   updates from only the last `τ_t` iterations (§6.2).
//!
//! [`ContentionTracker`] reconstructs all of these live from the tagged op
//! stream ([`OpTag`]) fired by the engine; [`ContentionReport`] finalises the
//! statistics and provides executable audits of Lemma 6.2 and Lemma 6.4.

use crate::op::{OpTag, Step, ThreadId};

/// Where a thread currently is inside the Algorithm-1 iteration structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadPhase {
    /// Not inside an iteration.
    Idle,
    /// Fired `C.fetch&add(1)` (claimed a slot) but not yet begun the scan.
    Claimed {
        /// Step at which the claim fired.
        claim_step: Step,
    },
    /// Scanning the model to build its view `v_θ`.
    Scanning {
        /// Step at which the claim fired.
        claim_step: Step,
    },
    /// Applying gradient entries; `iter` is the iteration's order index
    /// (0-based; the paper's iteration `t` is `iter + 1`).
    Writing {
        /// Order index of the iteration being written.
        iter: usize,
    },
}

/// Record of one ordered iteration (ordered by first model write).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterRecord {
    /// Thread that executed the iteration.
    pub thread: ThreadId,
    /// Step of the `ClaimIteration` op (iteration start for contention
    /// purposes).
    pub claim_step: Step,
    /// Completed-iteration watermark observed when the view scan began; used
    /// to derive staleness.
    pub scan_start_watermark: u64,
    /// Step of the first model write (the ordering event of Lemma 6.1).
    pub first_write_step: Step,
    /// Step of the last model write; `None` while (or forever if) incomplete.
    pub last_write_step: Option<Step>,
    /// Staleness `τ_t`: number of earlier-ordered iterations whose updates the
    /// view may be missing (order index minus the watermark at scan start).
    pub staleness: u64,
}

/// Live accounting of iteration structure during an execution.
///
/// Fed by the engine on every fired action; also exposed (read-only) to
/// schedulers through the scheduling view, which is how adaptive adversaries
/// know how many iterations have started since they froze a victim.
#[derive(Debug, Clone)]
pub struct ContentionTracker {
    phases: Vec<ThreadPhase>,
    /// Claim sequence number per thread for the *current* claim, if any.
    claim_seq: Vec<Option<u64>>,
    /// Watermark observed when each thread's current view scan began.
    scan_watermarks: Vec<u64>,
    iters: Vec<IterRecord>,
    complete: Vec<bool>,
    watermark: u64,
    claims: u64,
    completed_total: u64,
    completed_by_thread: Vec<u64>,
}

impl ContentionTracker {
    /// Creates a tracker for `n` threads.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            phases: vec![ThreadPhase::Idle; n],
            claim_seq: vec![None; n],
            scan_watermarks: vec![0; n],
            iters: Vec::new(),
            complete: Vec::new(),
            watermark: 0,
            claims: 0,
            completed_total: 0,
            completed_by_thread: vec![0; n],
        }
    }

    /// Total `ClaimIteration` ops fired so far.
    #[must_use]
    pub fn claims(&self) -> u64 {
        self.claims
    }

    /// Iterations that have performed their first model write (and therefore
    /// have an order index).
    #[must_use]
    pub fn started(&self) -> u64 {
        self.iters.len() as u64
    }

    /// Largest `W` such that iterations with order index `< W` are all
    /// complete.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Total completed iterations.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed_total
    }

    /// Completed iterations executed by thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn completed_by(&self, tid: ThreadId) -> u64 {
        self.completed_by_thread[tid]
    }

    /// Current phase of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn phase(&self, tid: ThreadId) -> ThreadPhase {
        self.phases[tid]
    }

    /// Claim sequence number of the claim the thread is currently working
    /// under (`None` when idle).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn current_claim_seq(&self, tid: ThreadId) -> Option<u64> {
        self.claim_seq[tid]
    }

    /// All iteration records so far, in order.
    #[must_use]
    pub fn records(&self) -> &[IterRecord] {
        &self.iters
    }

    /// Feeds one fired action.
    pub fn observe(&mut self, thread: ThreadId, step: Step, tag: OpTag) {
        match tag {
            OpTag::Untagged | OpTag::SampleCoin => {}
            OpTag::ClaimIteration => {
                // A new claim discards any zero-write residue of the previous
                // iteration.
                self.phases[thread] = ThreadPhase::Claimed { claim_step: step };
                self.claim_seq[thread] = Some(self.claims);
                self.claims += 1;
            }
            OpTag::ViewRead { first, .. } => {
                if first {
                    let claim_step = match self.phases[thread] {
                        ThreadPhase::Claimed { claim_step }
                        | ThreadPhase::Scanning { claim_step } => claim_step,
                        // Program without an explicit claim: treat the scan
                        // start as the claim point.
                        _ => step,
                    };
                    self.phases[thread] = ThreadPhase::Scanning { claim_step };
                    // Stash the watermark at scan start in a side channel per
                    // thread; reconstructed at first write.
                    self.scan_watermarks[thread] = self.watermark;
                }
            }
            OpTag::ModelWrite { first, last, .. } => {
                if first {
                    let (claim_step, scan_wm) = match self.phases[thread] {
                        ThreadPhase::Scanning { claim_step } => {
                            (claim_step, self.scan_watermarks[thread])
                        }
                        ThreadPhase::Claimed { claim_step } => (claim_step, self.watermark),
                        // Blind writer without claim/scan structure.
                        _ => (step, self.watermark),
                    };
                    let idx = self.iters.len();
                    let staleness = (idx as u64).saturating_sub(scan_wm);
                    self.iters.push(IterRecord {
                        thread,
                        claim_step,
                        scan_start_watermark: scan_wm,
                        first_write_step: step,
                        last_write_step: None,
                        staleness,
                    });
                    self.complete.push(false);
                    self.phases[thread] = ThreadPhase::Writing { iter: idx };
                }
                if last {
                    if let ThreadPhase::Writing { iter } = self.phases[thread] {
                        self.iters[iter].last_write_step = Some(step);
                        self.complete[iter] = true;
                        while (self.watermark as usize) < self.complete.len()
                            && self.complete[self.watermark as usize]
                        {
                            self.watermark += 1;
                        }
                        self.completed_total += 1;
                        self.completed_by_thread[thread] += 1;
                    }
                    self.phases[thread] = ThreadPhase::Idle;
                    self.claim_seq[thread] = None;
                }
            }
        }
    }

    /// Marks a thread as retired (halted or crashed); any in-flight iteration
    /// stays incomplete forever.
    pub fn observe_retire(&mut self, thread: ThreadId) {
        self.phases[thread] = ThreadPhase::Idle;
        self.claim_seq[thread] = None;
    }

    /// Finalises the statistics into a [`ContentionReport`].
    #[must_use]
    pub fn report(&self) -> ContentionReport {
        ContentionReport::from_records(&self.iters, self.phases.len())
    }
}

/// Outcome of the Lemma 6.2 audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lemma62Audit {
    /// Window size parameter `K`.
    pub k: u64,
    /// Number of windows examined.
    pub windows: u64,
    /// Maximum number of *bad* iterations completing in any window.
    pub max_bad_completions: u64,
    /// The lemma's bound: `n`.
    pub bound: u64,
    /// Whether `max_bad_completions < n` held in every window.
    pub holds: bool,
}

/// Outcome of the Lemma 6.4 audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lemma64Audit {
    /// `max_t Σ_m 1{τ_{t+m} ≥ m}` over the execution.
    pub max_sum: u64,
    /// The lemma's bound `2√(τ_max·n)`.
    pub bound: f64,
    /// Whether `max_sum ≤ bound`.
    pub holds: bool,
}

/// Finalised contention statistics for one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionReport {
    n_threads: usize,
    rho: Vec<u64>,
    staleness: Vec<u64>,
    records: Vec<IterRecord>,
    incomplete: u64,
}

impl ContentionReport {
    /// Builds the report from raw iteration records.
    #[must_use]
    pub fn from_records(records: &[IterRecord], n_threads: usize) -> Self {
        let rho = interval_contention(records);
        let staleness = records.iter().map(|r| r.staleness).collect();
        let incomplete = records
            .iter()
            .filter(|r| r.last_write_step.is_none())
            .count() as u64;
        Self {
            n_threads,
            rho,
            staleness,
            records: records.to_vec(),
            incomplete,
        }
    }

    /// Number of ordered iterations (complete + incomplete).
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.records.len() as u64
    }

    /// Iterations that never completed (thread crashed or ran out of steps).
    #[must_use]
    pub fn incomplete(&self) -> u64 {
        self.incomplete
    }

    /// Number of simulated threads.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Interval contention `ρ(θ)` per iteration, in order.
    #[must_use]
    pub fn rho_values(&self) -> &[u64] {
        &self.rho
    }

    /// Staleness `τ_t` per iteration, in order.
    #[must_use]
    pub fn staleness_values(&self) -> &[u64] {
        &self.staleness
    }

    /// `τ_max = max_θ ρ(θ)` (0 when there are no iterations).
    #[must_use]
    pub fn tau_max(&self) -> u64 {
        self.rho.iter().copied().max().unwrap_or(0)
    }

    /// `τ_avg = (1/T)·Σ_θ ρ(θ)` (0 when there are no iterations).
    #[must_use]
    pub fn tau_avg(&self) -> f64 {
        if self.rho.is_empty() {
            0.0
        } else {
            self.rho.iter().sum::<u64>() as f64 / self.rho.len() as f64
        }
    }

    /// Maximum staleness `max_t τ_t`.
    #[must_use]
    pub fn staleness_max(&self) -> u64 {
        self.staleness.iter().copied().max().unwrap_or(0)
    }

    /// Mean staleness.
    #[must_use]
    pub fn staleness_avg(&self) -> f64 {
        if self.staleness.is_empty() {
            0.0
        } else {
            self.staleness.iter().sum::<u64>() as f64 / self.staleness.len() as f64
        }
    }

    /// The Gibson–Gramoli bound `τ_avg ≤ 2n` quoted in §2.
    #[must_use]
    pub fn gibson_gramoli_holds(&self) -> bool {
        self.tau_avg() <= 2.0 * self.n_threads as f64
    }

    /// Iteration records, in order.
    #[must_use]
    pub fn records(&self) -> &[IterRecord] {
        &self.records
    }

    /// Audits **Lemma 6.2**: fix `K`; over every window in which `K·n`
    /// consecutive iterations start, the number of *bad* iterations (those
    /// overlapped by more than `K·n` starts) completing within the window
    /// must be less than `n`.
    ///
    /// Returns `None` if the execution has fewer than `K·n` iterations (no
    /// window exists).
    #[must_use]
    pub fn lemma_6_2(&self, k: u64) -> Option<Lemma62Audit> {
        let n = self.n_threads as u64;
        let window = (k * n) as usize;
        if window == 0 || self.records.len() < window {
            return None;
        }
        // Iteration "start" = claim step, per §2's interval-contention notion.
        let mut claim_steps: Vec<Step> = self.records.iter().map(|r| r.claim_step).collect();
        claim_steps.sort_unstable();
        // bad(θ): more than K·n claims strictly inside (claim_θ, end_θ).
        let bad_ends: Vec<Step> = self
            .records
            .iter()
            .filter_map(|r| {
                let end = r.last_write_step?;
                let inside = count_in_open_range(&claim_steps, r.claim_step, end);
                (inside > k * n).then_some(end)
            })
            .collect();
        let mut bad_ends = bad_ends;
        bad_ends.sort_unstable();

        let mut max_bad = 0u64;
        let mut windows = 0u64;
        for w in claim_steps.windows(window) {
            let (lo, hi) = (w[0], w[window - 1]);
            let bad_in = count_in_closed_range(&bad_ends, lo, hi);
            max_bad = max_bad.max(bad_in);
            windows += 1;
        }
        Some(Lemma62Audit {
            k,
            windows,
            max_bad_completions: max_bad,
            bound: n,
            holds: max_bad < n,
        })
    }

    /// Audits **Lemma 6.4**: `max_t Σ_{m≥1} 1{τ_{t+m} ≥ m} ≤ 2√(τ_max·n)`,
    /// evaluated with the measured staleness sequence and measured `τ_max`
    /// (the maximum staleness).
    #[must_use]
    pub fn lemma_6_4(&self) -> Lemma64Audit {
        let t_total = self.staleness.len();
        // Σ_m 1{τ_{t+m} ≥ m} = #{s > t : s − τ_s ≤ t}; each s covers the
        // index range [s − τ_s, s − 1], so the max over t is the max overlap
        // of those ranges — computed with a difference array in O(T).
        let mut diff = vec![0i64; t_total + 1];
        for (s, &tau) in self.staleness.iter().enumerate() {
            if tau == 0 {
                continue;
            }
            let lo = (s as u64).saturating_sub(tau) as usize;
            let hi = s; // exclusive upper bound: covers t ∈ [lo, s-1]
            diff[lo] += 1;
            diff[hi] -= 1;
        }
        let mut max_sum = 0i64;
        let mut acc = 0i64;
        for d in &diff {
            acc += d;
            max_sum = max_sum.max(acc);
        }
        let tau_max = self.staleness_max().max(1);
        let bound = 2.0 * ((tau_max * self.n_threads as u64) as f64).sqrt();
        Lemma64Audit {
            max_sum: max_sum as u64,
            bound,
            holds: (max_sum as f64) <= bound,
        }
    }
}

/// Computes interval contention `ρ(θ)` for each iteration.
///
/// `ρ(θ)` = number of other iterations whose `[claim, end]` interval overlaps
/// θ's. Incomplete iterations are treated as extending to infinity. Runs in
/// `O(T log T)`.
fn interval_contention(records: &[IterRecord]) -> Vec<u64> {
    let t = records.len();
    let mut rho = vec![0u64; t];
    if t == 0 {
        return rho;
    }
    let mut claim_steps: Vec<Step> = records.iter().map(|r| r.claim_step).collect();
    claim_steps.sort_unstable();

    // Sweep events in step order to get the number of active iterations at
    // each claim.
    #[derive(Clone, Copy)]
    enum Ev {
        Start(usize),
        End,
    }
    let mut events: Vec<(Step, Ev)> = Vec::with_capacity(2 * t);
    for (i, r) in records.iter().enumerate() {
        events.push((r.claim_step, Ev::Start(i)));
        if let Some(e) = r.last_write_step {
            events.push((e, Ev::End));
        }
    }
    // Each step fires exactly one action globally, so steps are unique and
    // there are no ordering ties to resolve.
    events.sort_unstable_by_key(|(s, e)| (*s, matches!(e, Ev::Start(_)) as u8));
    let mut active: i64 = 0;
    let mut active_at_claim = vec![0u64; t];
    for (_, ev) in events {
        match ev {
            Ev::Start(i) => {
                active_at_claim[i] = active as u64;
                active += 1;
            }
            Ev::End => active -= 1,
        }
    }
    for (i, r) in records.iter().enumerate() {
        let end = r.last_write_step.unwrap_or(Step::MAX);
        let started_during = count_in_half_open_range(&claim_steps, r.claim_step, end);
        rho[i] = active_at_claim[i] + started_during;
    }
    rho
}

/// Number of sorted values strictly inside `(lo, hi)`.
fn count_in_open_range(sorted: &[Step], lo: Step, hi: Step) -> u64 {
    if hi <= lo {
        return 0;
    }
    let a = sorted.partition_point(|&s| s <= lo);
    let b = sorted.partition_point(|&s| s < hi);
    (b - a) as u64
}

/// Number of sorted values in `(lo, hi]`.
fn count_in_half_open_range(sorted: &[Step], lo: Step, hi: Step) -> u64 {
    let a = sorted.partition_point(|&s| s <= lo);
    let b = sorted.partition_point(|&s| s <= hi);
    (b.saturating_sub(a)) as u64
}

/// Number of sorted values in `[lo, hi]`.
fn count_in_closed_range(sorted: &[Step], lo: Step, hi: Step) -> u64 {
    let a = sorted.partition_point(|&s| s < lo);
    let b = sorted.partition_point(|&s| s <= hi);
    (b.saturating_sub(a)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        thread: ThreadId,
        claim: Step,
        first_w: Step,
        last_w: Option<Step>,
        staleness: u64,
    ) -> IterRecord {
        IterRecord {
            thread,
            claim_step: claim,
            scan_start_watermark: 0,
            first_write_step: first_w,
            last_write_step: last_w,
            staleness,
        }
    }

    #[test]
    fn tracker_single_thread_sequence() {
        let mut t = ContentionTracker::new(1);
        t.observe(0, 0, OpTag::ClaimIteration);
        t.observe(
            0,
            1,
            OpTag::ViewRead {
                entry: 0,
                first: true,
                last: true,
            },
        );
        t.observe(0, 2, OpTag::SampleCoin);
        t.observe(
            0,
            3,
            OpTag::ModelWrite {
                entry: 0,
                first: true,
                last: true,
            },
        );
        assert_eq!(t.claims(), 1);
        assert_eq!(t.started(), 1);
        assert_eq!(t.completed(), 1);
        assert_eq!(t.watermark(), 1);
        assert_eq!(t.completed_by(0), 1);
        let r = &t.records()[0];
        assert_eq!(r.claim_step, 0);
        assert_eq!(r.first_write_step, 3);
        assert_eq!(r.last_write_step, Some(3));
        assert_eq!(r.staleness, 0);
    }

    #[test]
    fn tracker_staleness_counts_missed_iterations() {
        // Thread 1 scans before thread 0 completes two iterations; thread 1's
        // iteration is ordered third and misses both ⇒ staleness 2.
        let mut t = ContentionTracker::new(2);
        // Thread 1 claims and starts scanning at watermark 0.
        t.observe(1, 0, OpTag::ClaimIteration);
        t.observe(
            1,
            1,
            OpTag::ViewRead {
                entry: 0,
                first: true,
                last: true,
            },
        );
        // Thread 0 runs two complete iterations.
        for base in [2u64, 6u64] {
            t.observe(0, base, OpTag::ClaimIteration);
            t.observe(
                0,
                base + 1,
                OpTag::ViewRead {
                    entry: 0,
                    first: true,
                    last: true,
                },
            );
            t.observe(
                0,
                base + 2,
                OpTag::ModelWrite {
                    entry: 0,
                    first: true,
                    last: true,
                },
            );
        }
        assert_eq!(t.watermark(), 2);
        // Thread 1 finally writes: order index 2, scan watermark was 0.
        t.observe(
            1,
            10,
            OpTag::ModelWrite {
                entry: 0,
                first: true,
                last: true,
            },
        );
        assert_eq!(t.records()[2].staleness, 2);
        assert_eq!(t.watermark(), 3);
    }

    #[test]
    fn tracker_watermark_stalls_on_incomplete_prefix() {
        let mut t = ContentionTracker::new(2);
        // Thread 0 does first write but never the last (d = 2 model).
        t.observe(0, 0, OpTag::ClaimIteration);
        t.observe(
            0,
            1,
            OpTag::ViewRead {
                entry: 0,
                first: true,
                last: false,
            },
        );
        t.observe(
            0,
            2,
            OpTag::ViewRead {
                entry: 1,
                first: false,
                last: true,
            },
        );
        t.observe(
            0,
            3,
            OpTag::ModelWrite {
                entry: 0,
                first: true,
                last: false,
            },
        );
        // Thread 1 completes a whole iteration meanwhile (ordered second).
        t.observe(1, 4, OpTag::ClaimIteration);
        t.observe(
            1,
            5,
            OpTag::ViewRead {
                entry: 0,
                first: true,
                last: false,
            },
        );
        t.observe(
            1,
            6,
            OpTag::ViewRead {
                entry: 1,
                first: false,
                last: true,
            },
        );
        t.observe(
            1,
            7,
            OpTag::ModelWrite {
                entry: 0,
                first: true,
                last: false,
            },
        );
        t.observe(
            1,
            8,
            OpTag::ModelWrite {
                entry: 1,
                first: false,
                last: true,
            },
        );
        assert_eq!(t.completed(), 1);
        assert_eq!(
            t.watermark(),
            0,
            "prefix incomplete: iteration 0 unfinished"
        );
        // Thread 0 finishes; watermark jumps over both.
        t.observe(
            0,
            9,
            OpTag::ModelWrite {
                entry: 1,
                first: false,
                last: true,
            },
        );
        assert_eq!(t.watermark(), 2);
    }

    #[test]
    fn tracker_retire_clears_phase() {
        let mut t = ContentionTracker::new(1);
        t.observe(0, 0, OpTag::ClaimIteration);
        assert!(matches!(t.phase(0), ThreadPhase::Claimed { .. }));
        assert_eq!(t.current_claim_seq(0), Some(0));
        t.observe_retire(0);
        assert_eq!(t.phase(0), ThreadPhase::Idle);
        assert_eq!(t.current_claim_seq(0), None);
    }

    #[test]
    fn rho_sequential_iterations_do_not_overlap() {
        let records = vec![
            rec(0, 0, 1, Some(2), 0),
            rec(0, 3, 4, Some(5), 0),
            rec(0, 6, 7, Some(8), 0),
        ];
        let report = ContentionReport::from_records(&records, 1);
        assert_eq!(report.rho_values(), &[0, 0, 0]);
        assert_eq!(report.tau_max(), 0);
        assert_eq!(report.tau_avg(), 0.0);
        assert!(report.gibson_gramoli_holds());
    }

    #[test]
    fn rho_counts_overlaps_in_both_directions() {
        // it0 spans [0, 10]; it1 [2, 4]; it2 [5, 7]; it3 [12, 13].
        let records = vec![
            rec(0, 0, 1, Some(10), 0),
            rec(1, 2, 3, Some(4), 1),
            rec(1, 5, 6, Some(7), 1),
            rec(1, 12, 12, Some(13), 0),
        ];
        let report = ContentionReport::from_records(&records, 2);
        assert_eq!(report.rho_values(), &[2, 1, 1, 0]);
        assert_eq!(report.tau_max(), 2);
        assert!((report.tau_avg() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rho_incomplete_iteration_overlaps_everything_later() {
        let records = vec![
            rec(0, 0, 1, None, 0), // never completes
            rec(1, 2, 3, Some(4), 0),
            rec(1, 5, 6, Some(7), 0),
        ];
        let report = ContentionReport::from_records(&records, 2);
        assert_eq!(report.incomplete(), 1);
        assert_eq!(report.rho_values()[0], 2);
        assert_eq!(report.rho_values()[1], 1);
        assert_eq!(report.rho_values()[2], 1);
    }

    #[test]
    fn lemma_6_4_audit_simple_sequence() {
        // staleness all zero ⇒ max_sum 0, holds trivially.
        let records = vec![rec(0, 0, 1, Some(2), 0), rec(0, 3, 4, Some(5), 0)];
        let report = ContentionReport::from_records(&records, 1);
        let audit = report.lemma_6_4();
        assert_eq!(audit.max_sum, 0);
        assert!(audit.holds);
    }

    #[test]
    fn lemma_6_4_audit_counts_coverage() {
        // τ = [0, 1, 1, 0]: s=1 covers t∈[0,0]; s=2 covers t∈[1,1] ⇒ max 1.
        let records = vec![
            rec(0, 0, 1, Some(2), 0),
            rec(0, 3, 4, Some(5), 1),
            rec(0, 6, 7, Some(8), 1),
            rec(0, 9, 10, Some(11), 0),
        ];
        let report = ContentionReport::from_records(&records, 2);
        let audit = report.lemma_6_4();
        assert_eq!(audit.max_sum, 1);
        // bound = 2√(1·2) ≈ 2.83
        assert!(audit.holds);
    }

    #[test]
    fn lemma_6_2_none_when_too_few_iterations() {
        let records = vec![rec(0, 0, 1, Some(2), 0)];
        let report = ContentionReport::from_records(&records, 2);
        assert!(report.lemma_6_2(1).is_none());
    }

    #[test]
    fn lemma_6_2_clean_sequential_execution_holds() {
        let records: Vec<IterRecord> = (0..10)
            .map(|i| rec(0, 3 * i, 3 * i + 1, Some(3 * i + 2), 0))
            .collect();
        let report = ContentionReport::from_records(&records, 2);
        let audit = report.lemma_6_2(2).expect("enough iterations");
        assert_eq!(audit.max_bad_completions, 0);
        assert!(audit.holds);
        assert!(audit.windows > 0);
    }

    #[test]
    fn range_counters() {
        let v = vec![1, 3, 5, 7, 9];
        assert_eq!(count_in_open_range(&v, 1, 9), 3); // 3,5,7
        assert_eq!(count_in_open_range(&v, 0, 2), 1); // 1
        assert_eq!(count_in_open_range(&v, 9, 1), 0);
        assert_eq!(count_in_half_open_range(&v, 1, 9), 4); // 3,5,7,9
        assert_eq!(count_in_closed_range(&v, 1, 9), 5);
        assert_eq!(count_in_closed_range(&v, 2, 2), 0);
    }

    #[test]
    fn report_counts_and_stats() {
        let records = vec![rec(0, 0, 1, Some(4), 2), rec(1, 2, 3, Some(6), 1)];
        let report = ContentionReport::from_records(&records, 2);
        assert_eq!(report.iterations(), 2);
        assert_eq!(report.n_threads(), 2);
        assert_eq!(report.staleness_max(), 2);
        assert!((report.staleness_avg() - 1.5).abs() < 1e-12);
        assert_eq!(report.staleness_values(), &[2, 1]);
        assert_eq!(report.records().len(), 2);
    }
}
