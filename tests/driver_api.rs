//! The unified driver's cross-backend contract: one `RunSpec` runs
//! unchanged on every compatible backend, reports serialise exactly, and
//! deterministic backends agree where the theory says they must.

use asyncsgd::prelude::*;

fn base_spec() -> RunSpec {
    RunSpec::new(
        OracleSpec::new("noisy-quadratic", 3).sigma(0.2),
        BackendKind::Sequential,
    )
    .threads(3)
    .iterations(4_000)
    .learning_rate(0.05)
    .x0(vec![1.5, -1.5, 1.0])
    .success_radius_sq(0.05)
    .scheduler(SchedulerSpec::Random { seed: 5 })
    .seed(21)
}

#[test]
fn one_spec_runs_on_five_constant_step_backends() {
    let spec = base_spec();
    let x0_dist_sq = 1.5 * 1.5 + 1.5 * 1.5 + 1.0;
    let backends = [
        BackendKind::Sequential,
        BackendKind::SimulatedLockFree,
        BackendKind::Hogwild,
        BackendKind::Locked,
        BackendKind::GuardedEpoch,
    ];
    for backend in backends {
        let report =
            run_spec(&spec.clone().backend(backend)).unwrap_or_else(|e| panic!("{backend}: {e}"));
        assert_eq!(report.backend, backend.name());
        assert_eq!(report.oracle, "noisy-quadratic");
        assert_eq!(report.iterations, 4_000, "{backend}");
        assert!(
            report.final_dist_sq < x0_dist_sq / 10.0,
            "{backend}: no progress, dist² {}",
            report.final_dist_sq
        );
        assert!(report.final_model.len() == 3, "{backend}");
        assert!(report.wall_time_secs >= 0.0);
        // Every backend's report serialises and round-trips exactly.
        let json = report.to_json();
        assert_eq!(
            RunReport::from_json(&json).unwrap_or_else(|e| panic!("{backend}: {e}")),
            report,
            "{backend}: JSON round-trip must be exact"
        );
    }
}

#[test]
fn the_same_spec_also_runs_the_fullsgd_backends_with_halving() {
    let spec = base_spec().halving(0.1, 3);
    for backend in [BackendKind::SimulatedFullSgd, BackendKind::NativeFullSgd] {
        let report =
            run_spec(&spec.clone().backend(backend)).unwrap_or_else(|e| panic!("{backend}: {e}"));
        assert_eq!(report.iterations, 4_000, "{backend}: budget preserved");
        assert!(
            report.final_dist_sq < 0.5,
            "{backend}: dist² {}",
            report.final_dist_sq
        );
    }
}

#[test]
fn sequential_and_simulated_serial_schedule_agree_exactly() {
    // Under the serial scheduler, simulated thread 0 executes every
    // iteration with coin stream 0 — which is precisely what the sequential
    // backend runs. Same spec ⇒ bit-identical trajectory, same hitting time.
    let spec = base_spec().scheduler(SchedulerSpec::Serial);
    let sequential = run_spec(&spec).expect("sequential runs");
    let simulated =
        run_spec(&spec.clone().backend(BackendKind::SimulatedLockFree)).expect("simulated runs");
    assert_eq!(sequential.final_model.len(), simulated.final_model.len());
    for (j, (a, b)) in sequential
        .final_model
        .iter()
        .zip(&simulated.final_model)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "entry {j}: sequential {a} vs simulated {b}"
        );
    }
    assert_eq!(
        sequential.hit_iteration, simulated.hit_iteration,
        "ordered-accumulator hitting times must agree on the serial schedule"
    );
    assert_eq!(
        sequential.final_dist_sq.to_bits(),
        simulated.final_dist_sq.to_bits()
    );
    // And single-threaded Hogwild shares the same coin stream too — with a
    // live observer attached, which must not perturb the run.
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let events = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&events);
    let ctx = SessionCtx::observed(Arc::new(move |_: &RunEvent| {
        counter.fetch_add(1, Ordering::SeqCst);
    }));
    let native = run_spec_session(&spec.clone().backend(BackendKind::Hogwild).threads(1), &ctx)
        .expect("hogwild runs");
    for (a, b) in sequential.final_model.iter().zip(&native.final_model) {
        assert_eq!(a.to_bits(), b.to_bits(), "native single-thread parity");
    }
    assert!(
        events.load(Ordering::SeqCst) >= 2,
        "observer saw at least Started and Finished"
    );
}

#[test]
fn deterministic_backends_reproduce_and_diverge_by_seed() {
    let spec = base_spec().backend(BackendKind::SimulatedLockFree);
    let a = run_spec(&spec).unwrap();
    let b = run_spec(&spec).unwrap();
    assert_eq!(a.fingerprint, b.fingerprint, "same seed, same fingerprint");
    assert_eq!(a.final_model, b.final_model);
    let c = run_spec(&spec.clone().seed(22)).unwrap();
    assert_ne!(a.fingerprint, c.fingerprint, "different seed diverges");
}

#[test]
fn reports_survive_a_json_file_round_trip() {
    // The `experiments run --json` pipeline in miniature: write, read back,
    // compare — including the u64 fingerprint, which must not be mangled
    // through any float path.
    let report = run_spec(&base_spec().backend(BackendKind::SimulatedLockFree)).unwrap();
    let dir = std::env::temp_dir().join("asgd_driver_api_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("BENCH_simulated-lockfree.json");
    std::fs::write(&path, report.to_json_pretty()).expect("write");
    let text = std::fs::read_to_string(&path).expect("read");
    let back = RunReport::from_json(&text).expect("parse");
    assert_eq!(back, report);
    assert!(back.fingerprint.is_some());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn guarded_epoch_reports_guard_statistics() {
    let report = run_spec(
        &base_spec()
            .backend(BackendKind::GuardedEpoch)
            .halving(0.1, 2),
    )
    .expect("guarded runs");
    assert!(
        report.stale_rejected.is_some(),
        "guard statistics must be reported"
    );
}

#[test]
fn driver_errors_are_descriptive() {
    let spec = base_spec().halving(0.1, 2).backend(BackendKind::Hogwild);
    let err = run_spec(&spec).map(|_| ()).unwrap_err();
    assert!(matches!(err, DriverError::InvalidSpec(_)));
    assert!(err.to_string().contains("constant step"), "{err}");

    let mut spec = base_spec();
    spec.oracle.kind = "nonexistent".to_string();
    let err = run_spec(&spec).map(|_| ()).unwrap_err();
    assert!(err.to_string().contains("unknown oracle kind"), "{err}");
}
