//! Corollary 7.1 — the epoch budget of Algorithm 2 (`FullSGD`).
//!
//! Algorithm 2 runs `log(α·2Mn/√ε)` halving epochs followed by a final
//! accumulating epoch, guaranteeing `E‖r − x*‖ ≤ ε` after
//! `O(T·log(α·2Mn/√ε))` iterations. The proof sketch also carries the
//! final-epoch error decomposition `‖x_T − x*‖ ≤ √ε/2 + α·n·M ≤ √ε`, which
//! constrains the final learning rate.

use asgd_oracle::Constants;

/// Number of *halving* epochs Algorithm 2 runs before the final accumulating
/// epoch: `⌈log₂(α·2·M·n/√ε)⌉`, clamped to at least 1.
///
/// Encodes the epoch budget of **Corollary 7.1**.
///
/// For extreme-magnitude inputs whose ratio overflows `f64` the count
/// saturates (at `usize::MAX` via the float→int cast) instead of wrapping;
/// `total_iterations` then saturates the product too, so the budget
/// arithmetic is monotone end to end.
///
/// # Panics
///
/// Panics if `alpha0 ≤ 0`, `eps ≤ 0`, or `n == 0`.
#[must_use]
pub fn epoch_count(alpha0: f64, consts: &Constants, n: usize, eps: f64) -> usize {
    assert!(
        alpha0.is_finite() && alpha0 > 0.0,
        "alpha0 must be positive"
    );
    assert!(eps.is_finite() && eps > 0.0, "eps must be positive");
    assert!(n > 0, "at least one thread");
    let ratio = alpha0 * 2.0 * consts.m() * n as f64 / eps.sqrt();
    // Float→int `as` casts saturate (never wrap, never UB): an infinite
    // ratio yields usize::MAX, an underflowed one clamps at 1 epoch.
    ratio.log2().ceil().max(1.0) as usize
}

/// Total iterations of Algorithm 2: `T·(epoch_count + 1)` (halving epochs
/// plus the final accumulating epoch), the `O(T·log(α2Mn/√ε))` of
/// **Corollary 7.1**.
///
/// The product saturates at `u64::MAX` instead of silently wrapping in
/// release builds — a budget too large to represent reads as "effectively
/// unbounded", never as a small wrapped number that would silently truncate
/// a run.
#[must_use]
pub fn total_iterations(t_per_epoch: u64, halving_epochs: usize) -> u64 {
    let epochs = u64::try_from(halving_epochs)
        .unwrap_or(u64::MAX)
        .saturating_add(1);
    t_per_epoch.saturating_mul(epochs)
}

/// The final-epoch pending-gradient slack from the **Corollary 7.1** proof
/// sketch: at most `n − 1` gradients generated before the success time may
/// still be unapplied, displacing the result by at most `α·n·M`.
#[must_use]
pub fn pending_gradient_slack(alpha_final: f64, n: usize, consts: &Constants) -> f64 {
    alpha_final * n as f64 * consts.m()
}

/// Checks the **Corollary 7.1** proof-sketch requirement that the final
/// epoch's learning rate keeps the pending-gradient slack below `√ε/2`, so
/// that `√ε/2 + slack ≤ √ε`.
#[must_use]
pub fn final_alpha_small_enough(alpha_final: f64, n: usize, consts: &Constants, eps: f64) -> bool {
    pending_gradient_slack(alpha_final, n, consts) <= eps.sqrt() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn consts() -> Constants {
        Constants::new(1.0, 1.0, 4.0, 10.0) // M = 2
    }

    #[test]
    fn epoch_count_formula() {
        // ratio = 0.5·2·2·4/√0.01 = 8/0.1 = 80 ⇒ ⌈log₂ 80⌉ = 7.
        assert_eq!(epoch_count(0.5, &consts(), 4, 0.01), 7);
    }

    #[test]
    fn epoch_count_at_least_one() {
        // Tiny ratio: still at least one halving epoch.
        assert_eq!(epoch_count(1e-6, &consts(), 1, 100.0), 1);
    }

    #[test]
    fn total_iterations_includes_final_epoch() {
        assert_eq!(total_iterations(100, 7), 800);
    }

    #[test]
    fn slack_and_final_alpha_check() {
        let k = consts();
        // slack = α·n·M = 0.01·4·2 = 0.08; √ε/2 = 0.05 ⇒ too big.
        assert!(!final_alpha_small_enough(0.01, 4, &k, 0.01));
        // α = 0.005 ⇒ slack 0.04 ≤ 0.05 ⇒ ok.
        assert!(final_alpha_small_enough(0.005, 4, &k, 0.01));
        assert!((pending_gradient_slack(0.01, 4, &k) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn halving_from_epoch_count_satisfies_final_alpha() {
        // After E halvings, α_E = α₀/2^E ≤ √ε/(2·2Mn)·... the construction is
        // designed so the final α meets the slack condition.
        let k = consts();
        let (alpha0, n, eps) = (0.5, 4, 0.01);
        let e = epoch_count(alpha0, &k, n, eps);
        let alpha_final = alpha0 / (1u64 << e) as f64;
        assert!(
            final_alpha_small_enough(alpha_final, n, &k, eps),
            "α_final = {alpha_final} fails the slack check after {e} epochs"
        );
    }

    #[test]
    #[should_panic(expected = "alpha0 must be positive")]
    fn rejects_bad_alpha() {
        let _ = epoch_count(0.0, &consts(), 1, 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let _ = epoch_count(0.1, &consts(), 0, 0.1);
    }

    proptest! {
        /// The epoch count grows when ε shrinks and when n grows.
        #[test]
        fn epoch_count_monotone(
            n1 in 1_usize..64, n2 in 1_usize..64,
            e1 in 1e-6_f64..1.0, e2 in 1e-6_f64..1.0,
        ) {
            let k = consts();
            let (nlo, nhi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
            let (elo, ehi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
            prop_assert!(epoch_count(0.5, &k, nhi, elo) >= epoch_count(0.5, &k, nlo, elo));
            prop_assert!(epoch_count(0.5, &k, nlo, elo) >= epoch_count(0.5, &k, nlo, ehi));
        }

        /// The generic guarantee of the construction: α₀/2^E with
        /// E = epoch_count always passes the final-α slack check.
        #[test]
        fn construction_always_consistent(
            alpha0 in 0.01_f64..1.0, n in 1_usize..32, eps in 1e-4_f64..1.0,
        ) {
            let k = consts();
            let e = epoch_count(alpha0, &k, n, eps).min(60);
            let alpha_final = alpha0 / (1u64 << e) as f64;
            prop_assert!(final_alpha_small_enough(alpha_final, n, &k, eps),
                "α_final {} n {} eps {} E {}", alpha_final, n, eps, e);
        }

        /// Overflow hardening: across wide valid inputs (including magnitudes
        /// whose products overflow `u64`/`f64`), the budget arithmetic never
        /// panics and never wraps — `total_iterations` is always ≥ the
        /// per-epoch budget (saturating at `u64::MAX`), and the slack is
        /// non-negative.
        #[test]
        fn budget_math_never_panics_or_wraps(
            alpha0 in 1e-12_f64..1e12,
            c in 1e-6_f64..1e6,
            l in 1e-6_f64..1e6,
            m_sq in 1e-9_f64..1e18,
            n in 1_usize..1_000_000,
            eps in 1e-18_f64..1e12,
            t_per_epoch in 0_u64..u64::MAX,
            extra_epochs in 0_usize..usize::MAX,
        ) {
            let k = Constants::new(c, l, m_sq, 10.0);
            let e = epoch_count(alpha0, &k, n, eps);
            prop_assert!(e >= 1, "at least one halving epoch");
            for halving in [e, extra_epochs] {
                let total = total_iterations(t_per_epoch, halving);
                prop_assert!(
                    total >= t_per_epoch,
                    "total {} < per-epoch {} (wrapped?)", total, t_per_epoch
                );
                let epochs = u64::try_from(halving).unwrap_or(u64::MAX).saturating_add(1);
                let exact = t_per_epoch.checked_mul(epochs);
                prop_assert_eq!(total, exact.unwrap_or(u64::MAX), "saturates, never wraps");
            }
            let slack = pending_gradient_slack(alpha0, n, &k);
            prop_assert!(slack >= 0.0, "slack {}", slack);
        }
    }

    #[test]
    fn total_iterations_saturates_instead_of_wrapping() {
        assert_eq!(total_iterations(u64::MAX, 1), u64::MAX);
        assert_eq!(total_iterations(2, usize::MAX), u64::MAX);
        assert_eq!(total_iterations(0, usize::MAX), 0);
    }
}
