//! The sparse fast path's correctness contract:
//!
//! 1. Path equivalence — a 1-thread run of `sparse-quadratic` through the
//!    O(Δ) sparse path is *bit-identical* to the dense path (same seed, same
//!    final model).
//! 2. The PR-1 cross-backend invariant (sequential ≡ simulated-serial ≡
//!    1-thread hogwild) holds on **both** paths.
//! 3. Property: for every registry oracle, applying a `SparseGrad` entry by
//!    entry equals applying its densified form, and the sparse sampler
//!    agrees with the dense sampler given one RNG stream.

use asyncsgd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sparse_spec(sparse: SparsePathSpec) -> RunSpec {
    RunSpec::new(
        OracleSpec::new("sparse-quadratic", 32).sigma(0.3),
        BackendKind::Hogwild,
    )
    .threads(1)
    .iterations(3_000)
    .learning_rate(0.01)
    .x0(vec![1.0; 32])
    .scheduler(SchedulerSpec::Serial)
    .seed(1234)
    .sparse(sparse)
}

#[test]
fn one_thread_sparse_run_is_bit_identical_to_dense() {
    let dense = run_spec(&sparse_spec(SparsePathSpec::Dense)).expect("dense runs");
    let sparse = run_spec(&sparse_spec(SparsePathSpec::Sparse)).expect("sparse runs");
    assert_eq!(dense.sparse_path, Some(false));
    assert_eq!(sparse.sparse_path, Some(true));
    assert_eq!(dense.final_model.len(), sparse.final_model.len());
    for (j, (a, b)) in dense
        .final_model
        .iter()
        .zip(&sparse.final_model)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "entry {j}: dense {a} vs sparse {b}"
        );
    }
    assert_eq!(
        dense.final_dist_sq.to_bits(),
        sparse.final_dist_sq.to_bits()
    );
}

#[test]
fn cross_backend_invariant_holds_on_both_paths() {
    // sequential ≡ simulated-serial ≡ 1-thread hogwild, bit for bit, with
    // the dense path AND with the sparse path forced everywhere (the
    // sequential backend has no path distinction; its RNG schedule matches
    // both by construction).
    for path in [SparsePathSpec::Dense, SparsePathSpec::Sparse] {
        let spec = sparse_spec(path);
        let sequential = run_spec(&spec.clone().backend(BackendKind::Sequential)).unwrap();
        let simulated = run_spec(&spec.clone().backend(BackendKind::SimulatedLockFree)).unwrap();
        let hogwild = run_spec(&spec.clone().backend(BackendKind::Hogwild)).unwrap();
        for (name, other) in [("simulated-serial", &simulated), ("hogwild-1", &hogwild)] {
            for (j, (a, b)) in sequential
                .final_model
                .iter()
                .zip(&other.final_model)
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{path:?}/{name}: entry {j}: sequential {a} vs {b}"
                );
            }
        }
        if path == SparsePathSpec::Sparse {
            assert_eq!(
                simulated.sparse_path,
                Some(true),
                "simulator took sparse ops"
            );
            assert_eq!(hogwild.sparse_path, Some(true));
        }
    }
}

#[test]
fn locked_backend_sparse_path_matches_its_dense_path_single_threaded() {
    let spec = sparse_spec(SparsePathSpec::Dense).backend(BackendKind::Locked);
    let dense = run_spec(&spec).unwrap();
    let sparse =
        run_spec(&sparse_spec(SparsePathSpec::Sparse).backend(BackendKind::Locked)).unwrap();
    for (j, (a, b)) in dense
        .final_model
        .iter()
        .zip(&sparse.final_model)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "entry {j}");
    }
}

/// Every registry oracle, built small enough for exhaustive sampling.
fn registry_oracles() -> Vec<(String, std::sync::Arc<dyn GradientOracle>)> {
    asyncsgd::oracle::registry::known_kinds()
        .iter()
        .map(|kind| {
            let oracle = OracleSpec::new(*kind, 6)
                .dataset(48)
                .batch(4)
                .build()
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            ((*kind).to_string(), oracle)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Applying a `SparseGrad` (entry-wise, duplicates accumulating) to a
    /// point equals applying its densified form — and the sparse sampler's
    /// gradient matches the dense sampler's, for every registry oracle.
    #[test]
    fn sparse_grad_application_equals_densified_application(
        seed in 0_u64..10_000,
        alpha in 0.001_f64..0.1,
        scale in -2.0_f64..2.0,
    ) {
        for (kind, oracle) in registry_oracles() {
            let d = oracle.dimension();
            let x: Vec<f64> = (0..d).map(|j| scale * (1.0 + j as f64 / d as f64)).collect();

            // Dense reference gradient.
            let mut dense = vec![0.0; d];
            oracle.sample_gradient(&x, &mut StdRng::seed_from_u64(seed), &mut dense);

            // Sparse gradient from the same RNG stream.
            let mut sparse = SparseGrad::new();
            oracle.sample_gradient_sparse(&x, &mut StdRng::seed_from_u64(seed), &mut sparse);
            prop_assert!(
                oracle.max_support().is_none_or(|s| sparse.len() <= s),
                "{kind}: support {} exceeds declared bound {:?}",
                sparse.len(),
                oracle.max_support()
            );

            // (a) densified sparse ≈ dense sample (bitwise when the oracle
            // has a native single-sample sparse path, tight FP tolerance
            // for averaged minibatches).
            let mut densified = vec![0.0; d];
            sparse.densify_into(&mut densified);
            for (j, (a, b)) in dense.iter().zip(&densified).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "{kind}: entry {j}: dense {a} vs densified sparse {b}"
                );
            }

            // (b) applying the sparse entries directly == applying the
            // densified vector, bit for bit (same additions in push order).
            let mut via_entries = x.clone();
            for &(j, g) in sparse.entries() {
                via_entries[j] += -alpha * g;
            }
            let mut via_dense = x.clone();
            for (j, &g) in densified.iter().enumerate() {
                if g != 0.0 {
                    via_dense[j] += -alpha * g;
                }
            }
            // Duplicate support entries make the two application orders
            // differ by FP associativity only; oracles with Δ ≤ 1 per
            // sample (no duplicates) must match exactly.
            for (j, (a, b)) in via_entries.iter().zip(&via_dense).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "{kind}: entry {j}: {a} vs {b}"
                );
            }
        }
    }

    /// The single-nonzero oracle's sparse path is bitwise-equal to dense.
    #[test]
    fn sparse_quadratic_paths_are_bitwise_equal(seed in 0_u64..10_000) {
        let oracle = SparseQuadratic::uniform(12, 1.0, 0.7).expect("valid");
        let x: Vec<f64> = (0..12).map(|j| (j as f64) - 6.0).collect();
        let mut dense = vec![0.0; 12];
        oracle.sample_gradient(&x, &mut StdRng::seed_from_u64(seed), &mut dense);
        let mut sparse = SparseGrad::new();
        oracle.sample_gradient_sparse(&x, &mut StdRng::seed_from_u64(seed), &mut sparse);
        let mut densified = vec![0.0; 12];
        sparse.densify_into(&mut densified);
        for (a, b) in dense.iter().zip(&densified) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
