//! [`NetServer`] — the TCP front-end: thread-per-connection serving over a
//! shared [`ModelRegistry`], with admission control, per-connection IO
//! timeouts, a bounded in-flight execution window, and SLO load shedding.
//!
//! Threading model: one nonblocking accept loop (polling a stop flag, so
//! shutdown needs no self-connect trick) plus one thread per admitted
//! connection. Each connection executes its requests serially — the
//! protocol is strictly request/response per connection — so the global
//! in-flight window is bounded by the connection budget, and tightened
//! further by [`NetConfig::max_inflight`].
//!
//! Overload behaviour is always *explicit*:
//!
//! * connection budget exhausted → one `AdmissionDenied` error frame,
//!   then the connection closes;
//! * in-flight window full → a `Busy` error frame (backpressure: the
//!   client retries);
//! * rolling p99 past the SLO → a `Shed` frame from the
//!   [`LoadShedder`], skipping the request's compute
//!   entirely (that skipped work is what lets admitted traffic recover);
//! * malformed or oversized frames → a typed error frame, never a panic.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use asgd_driver::{RunEvent, RunObserver};
use asgd_oracle::{IngressError, Observation};
use asgd_serve::{ModelEntry, ModelId, ModelRegistry, ReadMode, ServeError};

use crate::fault::{FaultPlan, FaultyStream};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, RequestFrame, Response, StatsSelector,
    MAX_FRAME_LEN, MAX_SCRAPE_LEN,
};
use crate::shed::{LoadShedder, SloPolicy, Verdict};

/// How often blocked reads wake to poll the stop flag, and the floor for
/// user-supplied timeouts.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How long a submit-observe may wait on a full `Block`-policy ingress
/// queue before the server answers `Overloaded` instead — a slow trainer
/// must never wedge a connection thread indefinitely.
const OBSERVE_ENQUEUE_TIMEOUT: Duration = Duration::from_millis(250);

/// Server configuration: bind address, robustness budgets, SLO policy.
#[derive(Clone)]
pub struct NetConfig {
    /// Bind address (`127.0.0.1:0` by default — loopback, ephemeral port).
    pub addr: String,
    /// Connection budget: accepts past this many live connections get an
    /// `AdmissionDenied` frame and an immediate close.
    pub max_connections: usize,
    /// Global bound on concurrently *executing* requests; arrivals past it
    /// get a `Busy` frame (backpressure, not denial — the connection
    /// stays open).
    pub max_inflight: usize,
    /// Close a connection that stays idle (no complete request frame) this
    /// long.
    pub idle_timeout: Duration,
    /// Per-connection write timeout: a peer that stops draining its socket
    /// is disconnected rather than wedging a server thread.
    pub write_timeout: Duration,
    /// The load-shedding policy (no SLO by default — shedding off).
    pub slo: SloPolicy,
    /// Fault injection on every admitted connection (passthrough by
    /// default). Each connection's faults are re-seeded from the accept
    /// counter, so a campaign seed reproduces the same churn.
    pub fault: FaultPlan,
    /// Structured-event observer for net-tier transitions: receives
    /// [`RunEvent::ShedTierChanged`] whenever the load shedder moves tier
    /// and [`RunEvent::QueueSaturated`] whenever a submit-observe is
    /// refused by a full ingress queue. `None` (the default) disables
    /// emission; wire a `TraceObserver` here to land these in the run's
    /// JSONL trace.
    pub observer: Option<Arc<dyn RunObserver>>,
}

impl std::fmt::Debug for NetConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetConfig")
            .field("addr", &self.addr)
            .field("max_connections", &self.max_connections)
            .field("max_inflight", &self.max_inflight)
            .field("idle_timeout", &self.idle_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("slo", &self.slo)
            .field("fault", &self.fault)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_inflight: 64,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            slo: SloPolicy::default(),
            fault: FaultPlan::passthrough(),
            observer: None,
        }
    }
}

impl NetConfig {
    /// Sets the bind address.
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the connection budget (clamped to ≥ 1).
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }

    /// Sets the in-flight execution window (clamped to ≥ 1).
    #[must_use]
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Sets the idle timeout.
    #[must_use]
    pub fn idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Sets the write timeout.
    #[must_use]
    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = t;
        self
    }

    /// Sets the SLO policy.
    #[must_use]
    pub fn slo(mut self, slo: SloPolicy) -> Self {
        self.slo = slo;
        self
    }

    /// Sets the fault-injection plan for admitted connections.
    #[must_use]
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the structured-event observer for tier and queue transitions.
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn RunObserver>) -> Self {
        self.observer = Some(observer);
        self
    }
}

/// Monotonic counters shared by the accept loop and every connection.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    denied: AtomicU64,
    busy: AtomicU64,
    bad_frames: AtomicU64,
    active: AtomicUsize,
    inflight: AtomicUsize,
    /// The shedder tier as of the last executed request, so any connection
    /// thread can detect a transition edge and emit exactly one
    /// [`RunEvent::ShedTierChanged`] per change.
    last_tier: AtomicU8,
    /// Per-model scrape state: the shard-update counters and instant of the
    /// previous `stats-scrape`, differenced into per-shard update *rates*.
    /// Shared across connections so rates survive client reconnects.
    scrape: Mutex<HashMap<String, (Vec<u64>, Instant)>>,
}

/// A point-in-time statistics snapshot of a running server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and admitted.
    pub accepted: u64,
    /// Connections refused by admission control.
    pub denied: u64,
    /// Requests refused with `Busy` (in-flight window full).
    pub busy: u64,
    /// Malformed/oversized frames answered with an error.
    pub bad_frames: u64,
    /// Requests executed to completion.
    pub executed: u64,
    /// Requests refused by the load shedder.
    pub shed: u64,
    /// Currently live connections.
    pub active_connections: usize,
    /// The shedder's rolling p99 estimate, ns (`None` before warm-up).
    pub rolling_p99_ns: Option<u64>,
}

/// A running TCP serving front-end. Dropping the server stops it.
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    shedder: Arc<LoadShedder>,
    registry: Arc<ModelRegistry>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds the configured address and starts accepting.
    ///
    /// # Errors
    ///
    /// Whatever `TcpListener::bind` returns (address in use, permission).
    pub fn serve(registry: Arc<ModelRegistry>, config: NetConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let shedder = Arc::new(LoadShedder::new(config.slo));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let shedder = Arc::clone(&shedder);
            let registry = Arc::clone(&registry);
            let config = config.clone();
            std::thread::Builder::new()
                .name("asgd-net-accept".to_string())
                .spawn(move || {
                    accept_loop(&listener, &config, &stop, &counters, &shedder, &registry);
                })?
        };
        Ok(Self {
            local_addr,
            stop,
            counters,
            shedder,
            registry,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The address the server actually bound (resolves `:0` ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry this server answers queries from.
    #[must_use]
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The load shedder (for inspection; the server owns its updates).
    #[must_use]
    pub fn shedder(&self) -> &Arc<LoadShedder> {
        &self.shedder
    }

    /// A point-in-time statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            denied: self.counters.denied.load(Ordering::Relaxed),
            busy: self.counters.busy.load(Ordering::Relaxed),
            bad_frames: self.counters.bad_frames.load(Ordering::Relaxed),
            executed: self.shedder.executed_total(),
            shed: self.shedder.shed_total(),
            active_connections: self.counters.active.load(Ordering::Relaxed),
            rolling_p99_ns: self.shedder.rolling_p99_ns(),
        }
    }

    /// Stops accepting, disconnects every connection at its next poll tick,
    /// and joins the server threads. Idempotent. The registry (and its
    /// training runs) is left untouched — stopping the front-end never
    /// cancels training.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = self
            .accept_thread
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts until the stop flag rises; joins every connection on the way
/// out.
fn accept_loop(
    listener: &TcpListener,
    config: &NetConfig,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
    shedder: &Arc<LoadShedder>,
    registry: &Arc<ModelRegistry>,
) {
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                workers.retain(|w| !w.is_finished());
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                if counters.active.load(Ordering::SeqCst) >= config.max_connections {
                    counters.denied.fetch_add(1, Ordering::Relaxed);
                    deny(stream);
                    continue;
                }
                let salt = counters.accepted.fetch_add(1, Ordering::Relaxed);
                counters.active.fetch_add(1, Ordering::SeqCst);
                let stream = FaultyStream::new(stream, config.fault.child(salt));
                let conn = Connection {
                    stop: Arc::clone(stop),
                    counters: Arc::clone(counters),
                    shedder: Arc::clone(shedder),
                    registry: Arc::clone(registry),
                    config: config.clone(),
                };
                let spawned = std::thread::Builder::new()
                    .name("asgd-net-conn".to_string())
                    .spawn(move || conn.run(stream));
                match spawned {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        // Out of threads: treat like an exhausted budget.
                        counters.active.fetch_sub(1, Ordering::SeqCst);
                        counters.denied.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Best-effort `AdmissionDenied` frame on a connection we are refusing.
fn deny(mut stream: TcpStream) {
    let response = Response::Error {
        code: ErrorCode::AdmissionDenied,
        message: "connection budget exhausted, try again later".to_string(),
    };
    if let Ok(body) = response.encode() {
        let _ = write_frame(&mut stream, &body);
    }
}

/// Per-model per-connection read state: the version-cached snapshot and a
/// live-read scratch buffer, so the steady-state query path allocates
/// nothing once warm.
#[derive(Default)]
struct ModelCache {
    snap: Vec<f64>,
    snap_tag: Option<(u64, u64)>,
    live: Vec<f64>,
}

/// One admitted connection: serially decodes, admits, executes, replies.
struct Connection {
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    shedder: Arc<LoadShedder>,
    registry: Arc<ModelRegistry>,
    config: NetConfig,
}

impl Connection {
    fn run(self, mut stream: FaultyStream) {
        // Decrement `active` however this thread exits.
        struct ActiveGuard(Arc<Counters>);
        impl Drop for ActiveGuard {
            fn drop(&mut self) {
                self.0.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _guard = ActiveGuard(Arc::clone(&self.counters));
        // Reads wake every POLL_INTERVAL to check the stop flag; the idle
        // timeout is enforced across consecutive wake-ups.
        let _ = stream.get_ref().set_read_timeout(Some(POLL_INTERVAL));
        let mut cache: HashMap<u32, ModelCache> = HashMap::new();
        let mut body = Vec::new();
        let mut idle_since = Instant::now();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            match read_frame(&mut stream, &mut body, MAX_FRAME_LEN) {
                Ok(()) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if idle_since.elapsed() >= self.config.idle_timeout {
                        return; // idle disconnect
                    }
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // Oversized length prefix: answer, then close — the
                    // stream's framing can no longer be trusted.
                    self.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                    let _ = self.respond(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::BadRequest,
                            message: format!("oversized frame: {e}"),
                        },
                    );
                    return;
                }
                Err(_) => return, // peer closed or hard IO error
            }
            idle_since = Instant::now();
            let frame = match RequestFrame::decode(&body) {
                Ok(frame) => frame,
                Err(err) => {
                    self.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                    let fatal = matches!(err, FrameError::BadVersion(_));
                    let code = if fatal {
                        ErrorCode::VersionMismatch
                    } else {
                        ErrorCode::BadRequest
                    };
                    let ok = self.respond(
                        &mut stream,
                        &Response::Error {
                            code,
                            message: err.to_string(),
                        },
                    );
                    // Framing survived (the frame was complete, just
                    // malformed inside), so keep serving — except a
                    // version mismatch, which will never get better.
                    if fatal || !ok {
                        return;
                    }
                    continue;
                }
            };
            let response = self.admit_and_execute(&frame, &mut cache);
            if !self.respond(&mut stream, &response) {
                return;
            }
        }
    }

    /// Runs a decoded request through shedding, the in-flight window, and
    /// execution; always produces a response frame.
    fn admit_and_execute(
        &self,
        frame: &RequestFrame,
        cache: &mut HashMap<u32, ModelCache>,
    ) -> Response {
        match self.shedder.verdict(frame.priority) {
            Verdict::Shed { p99_ns, slo_ns } => Response::Shed {
                priority: frame.priority,
                p99_ns,
                slo_ns,
            },
            Verdict::Admit => {
                if self.counters.inflight.fetch_add(1, Ordering::SeqCst) >= self.config.max_inflight
                {
                    self.counters.inflight.fetch_sub(1, Ordering::SeqCst);
                    self.counters.busy.fetch_add(1, Ordering::Relaxed);
                    return Response::Error {
                        code: ErrorCode::Busy,
                        message: "in-flight request window full, retry".to_string(),
                    };
                }
                let started = Instant::now();
                let response = execute(self, frame, cache);
                self.counters.inflight.fetch_sub(1, Ordering::SeqCst);
                let elapsed = started.elapsed();
                self.shedder.record(elapsed);
                self.observe_execution(&response, elapsed);
                response
            }
        }
    }

    /// Records one executed request into the process-wide telemetry
    /// registry and emits a [`RunEvent::ShedTierChanged`] span on a tier
    /// transition edge. Both paths are a handful of relaxed atomic adds —
    /// cheap enough to run unconditionally.
    fn observe_execution(&self, response: &Response, elapsed: Duration) {
        let telemetry = asgd_telemetry::global();
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        telemetry.histogram("asgd_net_serve_latency_ns").record(ns);
        if let Response::Score {
            staleness: Some(s), ..
        }
        | Response::Values {
            staleness: Some(s), ..
        } = response
        {
            telemetry.histogram("asgd_net_serve_staleness").record(*s);
        }
        // `retier` runs inside `record`, so the freshest tier is visible
        // here; the swap makes exactly one thread own each edge.
        let tier = self.shedder.tier();
        if self.counters.last_tier.swap(tier, Ordering::Relaxed) != tier {
            if let Some(observer) = &self.config.observer {
                let slo_ns = self
                    .shedder
                    .policy()
                    .slo
                    .map_or(0, |slo| slo.as_nanos().min(u128::from(u64::MAX)) as u64);
                observer.on_event(&RunEvent::ShedTierChanged {
                    tier,
                    p99_ns: self.shedder.rolling_p99_ns().unwrap_or(0),
                    slo_ns,
                });
            }
        }
    }

    /// Writes one response frame; false when the connection is dead.
    fn respond(&self, stream: &mut FaultyStream, response: &Response) -> bool {
        let body = match response.encode() {
            Ok(body) => body,
            Err(e) => {
                // An unencodable response is a server bug surfaced to the
                // client as Internal rather than a silent close.
                match (Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("response encoding failed: {e}"),
                })
                .encode()
                {
                    Ok(body) => body,
                    Err(_) => return false,
                }
            }
        };
        write_frame(stream, &body)
            .and_then(|()| stream.flush())
            .is_ok()
    }
}

/// Executes one admitted request against the connection's registry.
/// Takes the whole [`Connection`] because stats-scrape reads the server
/// counters and shedder, and submit-observe refusals emit through the
/// configured observer.
fn execute(
    conn: &Connection,
    frame: &RequestFrame,
    cache: &mut HashMap<u32, ModelCache>,
) -> Response {
    let registry = &*conn.registry;
    match &frame.request {
        Request::DotScore { model, probe } => with_model(registry, *model, cache, |entry, c| {
            let reader = entry.service().reader();
            let d = reader.dimension();
            if let Some(&(idx, _)) = probe.iter().find(|(idx, _)| *idx as usize >= d) {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("probe index {idx} out of range (dimension {d})"),
                };
            }
            let use_snapshot = entry.mode() == ReadMode::Snapshot && c.refresh(&reader);
            let mut value = 0.0;
            for &(idx, weight) in probe {
                let xj = if use_snapshot {
                    c.snap[idx as usize]
                } else {
                    reader.read_entry(idx as usize)
                };
                value += weight * xj;
            }
            Response::Score {
                value,
                staleness: use_snapshot.then(|| c.staleness(&reader)).flatten(),
            }
        }),
        Request::Predict { model } => with_model(registry, *model, cache, |entry, c| {
            let reader = entry.service().reader();
            let use_snapshot = entry.mode() == ReadMode::Snapshot && c.refresh(&reader);
            let value = if use_snapshot {
                entry.service().oracle().objective(&c.snap)
            } else {
                c.live.resize(reader.dimension(), 0.0);
                reader.read_live(&mut c.live);
                entry.service().oracle().objective(&c.live)
            };
            Response::Score {
                value,
                staleness: use_snapshot.then(|| c.staleness(&reader)).flatten(),
            }
        }),
        Request::FetchRange { model, start, len } => {
            with_model(registry, *model, cache, |entry, c| {
                let reader = entry.service().reader();
                let d = reader.dimension();
                let (start, len) = (*start as usize, *len as usize);
                let Some(end) = start.checked_add(len).filter(|&end| end <= d) else {
                    return Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "range [{start}, {start}+{len}) out of bounds (dimension {d})"
                        ),
                    };
                };
                let use_snapshot = entry.mode() == ReadMode::Snapshot && c.refresh(&reader);
                let values = if use_snapshot {
                    c.snap[start..end].to_vec()
                } else {
                    (start..end).map(|j| reader.read_entry(j)).collect()
                };
                Response::Values {
                    start: start as u32,
                    values,
                    staleness: use_snapshot.then(|| c.staleness(&reader)).flatten(),
                }
            })
        }
        Request::ModelStats { selector } => {
            let entry = match selector {
                StatsSelector::ById(id) => registry.lookup(ModelId(*id)),
                StatsSelector::ByName(name) => registry.attach(name),
            };
            match entry {
                Ok(entry) => Response::Stats(entry.stats()),
                Err(e) => serve_error_response(&e),
            }
        }
        Request::SubmitObserve {
            model,
            features,
            label,
        } => with_model(registry, *model, cache, |entry, _c| {
            let Some(queue) = entry.ingress() else {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("model {model} is not a streaming model (no ingress queue)"),
                };
            };
            let d = entry.service().dimension();
            if let Some(&(idx, _)) = features.iter().find(|(idx, _)| *idx as usize >= d) {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("feature index {idx} out of range (dimension {d})"),
                };
            }
            let obs = Observation::new(features.clone(), *label);
            // `Ingested` is the at-most-once anchor: it is sent only after
            // the push succeeded, so a client that never saw it knows the
            // observation *may* be queued (mid-frame disconnect) but a
            // typed refusal below means it definitely is not.
            match queue.push_timeout(obs, OBSERVE_ENQUEUE_TIMEOUT) {
                Ok(()) => Response::Ingested {
                    depth: queue.len() as u64,
                },
                Err(IngressError::Full { capacity }) => {
                    queue_saturated(conn, queue.len() as u64, capacity as u64);
                    Response::Error {
                        code: ErrorCode::Overloaded,
                        message: format!("ingress queue full ({capacity} capacity), not enqueued"),
                    }
                }
                Err(IngressError::Timeout) => {
                    queue_saturated(conn, queue.len() as u64, queue.capacity() as u64);
                    Response::Error {
                        code: ErrorCode::Overloaded,
                        message:
                            "ingress queue stayed full past the enqueue deadline, not enqueued"
                                .to_string(),
                    }
                }
                Err(IngressError::Closed) => Response::Error {
                    code: ErrorCode::NoSuchModel,
                    message: format!("model {model} ingress is closed (model dropping)"),
                },
            }
        }),
        Request::StatsScrape => scrape(conn),
    }
}

/// Emits a [`RunEvent::QueueSaturated`] span (when an observer is wired)
/// and bumps the saturation counter — a typed ingress refusal is exactly
/// the overload signal an operator wants on the trace timeline.
fn queue_saturated(conn: &Connection, depth: u64, capacity: u64) {
    asgd_telemetry::global()
        .counter("asgd_ingest_saturated_total")
        .inc();
    if let Some(observer) = &conn.config.observer {
        observer.on_event(&RunEvent::QueueSaturated { depth, capacity });
    }
}

/// Answers a `stats-scrape`: mirrors every tier's live state into the
/// process-wide [`asgd_telemetry::MetricsRegistry`], takes one validated
/// snapshot, and returns it rendered in the Prometheus text exposition
/// format.
///
/// Monotone sources (server counters, shedder totals, per-shard applied-
/// update counters, ingress queue counters) land in registry *counters*
/// via `record_total`, so series stay monotone across scrapes no matter
/// which connection thread answers. Point-in-time values (tier, p99,
/// depths, staleness) land in gauges. Per-shard update *rates* are
/// differenced against the previous scrape's counters, shared across
/// connections.
fn scrape(conn: &Connection) -> Response {
    let telemetry = asgd_telemetry::global();
    // Server-wide counters and gauges.
    let c = &conn.counters;
    telemetry
        .counter("asgd_net_accepted_total")
        .record_total(c.accepted.load(Ordering::Relaxed));
    telemetry
        .counter("asgd_net_denied_total")
        .record_total(c.denied.load(Ordering::Relaxed));
    telemetry
        .counter("asgd_net_busy_total")
        .record_total(c.busy.load(Ordering::Relaxed));
    telemetry
        .counter("asgd_net_bad_frames_total")
        .record_total(c.bad_frames.load(Ordering::Relaxed));
    telemetry
        .counter("asgd_net_executed_total")
        .record_total(conn.shedder.executed_total());
    telemetry
        .counter("asgd_net_shed_total")
        .record_total(conn.shedder.shed_total());
    telemetry
        .counter("asgd_net_shed_transitions_total")
        .record_total(conn.shedder.transitions());
    telemetry
        .gauge("asgd_net_active_connections")
        .set(c.active.load(Ordering::Relaxed) as f64);
    telemetry
        .gauge("asgd_net_inflight")
        .set(c.inflight.load(Ordering::Relaxed) as f64);
    telemetry
        .gauge("asgd_net_shed_tier")
        .set(f64::from(conn.shedder.tier()));
    telemetry
        .gauge("asgd_net_rolling_p99_ns")
        .set(conn.shedder.rolling_p99_ns().unwrap_or(0) as f64);
    // Per-model training and ingest state.
    let now = Instant::now();
    let mut prev = conn
        .counters
        .scrape
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for entry in conn.registry.list() {
        let stats = entry.stats();
        let model = &stats.name;
        telemetry
            .counter(&format!("asgd_model_iterations_total{{model=\"{model}\"}}"))
            .record_total(stats.iterations);
        telemetry
            .gauge(&format!("asgd_model_snapshots{{model=\"{model}\"}}"))
            .set(stats.snapshots as f64);
        if let Some(staleness) = stats.staleness {
            telemetry
                .gauge(&format!(
                    "asgd_model_snapshot_staleness{{model=\"{model}\"}}"
                ))
                .set(staleness as f64);
        }
        if !stats.shard_updates.is_empty() {
            // Claim gap: iterations claimed by workers minus updates already
            // applied to the shards — the store-level view of the paper's
            // in-flight delay τ.
            let applied: u64 = stats.shard_updates.iter().sum();
            telemetry
                .gauge(&format!("asgd_shard_claim_gap{{model=\"{model}\"}}"))
                .set(stats.iterations.saturating_sub(applied) as f64);
            let rates = prev.get(model.as_str()).map(|(prev_updates, at)| {
                let dt = now.duration_since(*at).as_secs_f64().max(1e-9);
                (prev_updates.clone(), dt)
            });
            for (shard, &updates) in stats.shard_updates.iter().enumerate() {
                telemetry
                    .counter(&format!(
                        "asgd_shard_updates_total{{model=\"{model}\",shard=\"{shard}\"}}"
                    ))
                    .record_total(updates);
                let rate = rates.as_ref().map_or(0.0, |(prev_updates, dt)| {
                    prev_updates
                        .get(shard)
                        .map_or(0.0, |&p| updates.saturating_sub(p) as f64 / dt)
                });
                telemetry
                    .gauge(&format!(
                        "asgd_shard_update_rate{{model=\"{model}\",shard=\"{shard}\"}}"
                    ))
                    .set(rate);
            }
            prev.insert(model.clone(), (stats.shard_updates.clone(), now));
        }
        if let Some(queue) = entry.ingress() {
            let q = queue.counters();
            telemetry
                .counter(&format!("asgd_ingest_pushed_total{{model=\"{model}\"}}"))
                .record_total(q.pushed());
            telemetry
                .counter(&format!("asgd_ingest_popped_total{{model=\"{model}\"}}"))
                .record_total(q.popped());
            telemetry
                .counter(&format!("asgd_ingest_dropped_total{{model=\"{model}\"}}"))
                .record_total(q.dropped());
            telemetry
                .counter(&format!("asgd_ingest_rejected_total{{model=\"{model}\"}}"))
                .record_total(q.rejected());
            telemetry
                .counter(&format!("asgd_ingest_starved_total{{model=\"{model}\"}}"))
                .record_total(q.starved());
            telemetry
                .gauge(&format!("asgd_ingest_queue_depth{{model=\"{model}\"}}"))
                .set(queue.len() as f64);
            telemetry
                .gauge(&format!("asgd_ingest_lag_mean{{model=\"{model}\"}}"))
                .set(q.snapshot().lag_mean());
        }
    }
    drop(prev);
    let text = asgd_telemetry::render(&telemetry.snapshot());
    if text.len() > MAX_SCRAPE_LEN {
        return Response::Error {
            code: ErrorCode::Internal,
            message: format!(
                "scrape text {} bytes exceeds the {MAX_SCRAPE_LEN}-byte frame budget",
                text.len()
            ),
        };
    }
    Response::ScrapeText { text }
}

/// Looks up `model`, pruning the connection cache when the model is gone
/// (a drop/create cycle must not leak stale per-model buffers).
fn with_model(
    registry: &ModelRegistry,
    model: u32,
    cache: &mut HashMap<u32, ModelCache>,
    f: impl FnOnce(&ModelEntry, &mut ModelCache) -> Response,
) -> Response {
    match registry.lookup(ModelId(model)) {
        Ok(entry) => f(&entry, cache.entry(model).or_default()),
        Err(e) => {
            cache.remove(&model);
            serve_error_response(&e)
        }
    }
}

/// Maps a registry error onto a wire error frame.
fn serve_error_response(e: &ServeError) -> Response {
    let code = match e {
        ServeError::NoSuchModel(_) | ServeError::NoSuchModelId(_) => ErrorCode::NoSuchModel,
        ServeError::InvalidSpec(_) | ServeError::DuplicateModel(_) => ErrorCode::BadRequest,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

impl ModelCache {
    /// Refreshes the cached snapshot if a newer version was published;
    /// false when nothing has been published yet (caller falls back to
    /// live reads).
    fn refresh(&mut self, reader: &asgd_driver::ModelReader) -> bool {
        let current = reader.snapshot_version();
        if current == 0 {
            return false;
        }
        if self.snap_tag.is_none_or(|(version, _)| version != current) {
            self.snap_tag = reader.snapshot_into(&mut self.snap);
        }
        self.snap_tag.is_some()
    }

    /// Staleness of the cached snapshot at this instant.
    fn staleness(&self, reader: &asgd_driver::ModelReader) -> Option<u64> {
        let (_, published_at) = self.snap_tag?;
        Some(reader.iterations().saturating_sub(published_at))
    }
}
