//! Minibatch gradients: average `b` per-sample gradients per oracle call.
//!
//! Practical data-parallel SGD (the deployment the paper's §8 discussion
//! speaks to) rarely applies single-sample gradients: each iteration
//! averages a small batch, making the computation per iteration `O(b·d)`
//! while the shared-memory update stays `O(d)`. That ratio is what lets
//! lock-free execution convert thread parallelism into wall-clock speedup.
//! [`MinibatchRegression`] wraps [`LinearRegression`] with exactly that
//! access pattern; it is the workload of the `speedup` experiment and the
//! `hogwild_scaling` bench.

use crate::constants::Constants;
use crate::linreg::{LinearRegression, RankDeficientError};
use crate::oracle::GradientOracle;
use rand::{Rng, RngCore};

/// Least squares with size-`b` minibatch stochastic gradients.
///
/// `g̃(x) = (1/b)·Σ_{i∈B} (a_iᵀx − b_i)·a_i` over a uniformly drawn batch
/// `B` (with replacement). Unbiased for `∇f`; same `c` and `L` as the
/// underlying regression; the single-sample `M²` remains a valid (now
/// conservative, since averaging only shrinks second moments) bound.
#[derive(Debug, Clone, PartialEq)]
pub struct MinibatchRegression {
    inner: LinearRegression,
    batch: usize,
    name: String,
}

impl MinibatchRegression {
    /// Wraps a regression workload with batch size `b ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn new(inner: LinearRegression, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        Self {
            name: format!("minibatch-linreg(b={batch})"),
            inner,
            batch,
        }
    }

    /// Generates a synthetic dataset and wraps it in one call.
    ///
    /// # Errors
    ///
    /// Returns [`RankDeficientError`] if the generated design matrix is rank
    /// deficient.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn synthetic(
        m: usize,
        d: usize,
        noise: f64,
        batch: usize,
        seed: u64,
    ) -> Result<Self, RankDeficientError> {
        Ok(Self::new(
            LinearRegression::synthetic(m, d, noise, seed)?,
            batch,
        ))
    }

    /// The batch size `b`.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The wrapped single-sample workload.
    #[must_use]
    pub fn inner(&self) -> &LinearRegression {
        &self.inner
    }
}

impl GradientOracle for MinibatchRegression {
    fn dimension(&self) -> usize {
        self.inner.dimension()
    }

    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        let d = self.dimension();
        assert_eq!(x.len(), d, "x dimension mismatch");
        assert_eq!(out.len(), d, "out dimension mismatch");
        out.fill(0.0);
        let data = self.inner.data();
        for _ in 0..self.batch {
            let i = rng.gen_range(0..data.len());
            let a = &data.features[i];
            let r = asgd_math::vec::dot(a, x) - data.targets[i];
            for (o, &ai) in out.iter_mut().zip(a) {
                *o += r * ai;
            }
        }
        let inv_b = 1.0 / self.batch as f64;
        for o in out.iter_mut() {
            *o *= inv_b;
        }
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        self.inner.full_gradient(x, out);
    }

    fn objective(&self, x: &[f64]) -> f64 {
        self.inner.objective(x)
    }

    fn minimizer(&self) -> &[f64] {
        self.inner.minimizer()
    }

    fn constants(&self, radius: f64) -> Constants {
        // Averaging cannot increase E‖g̃‖² (Jensen), so the single-sample
        // bound remains valid; c and L carry over unchanged.
        self.inner.constants(radius)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::unbiasedness_gap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(batch: usize) -> MinibatchRegression {
        MinibatchRegression::synthetic(100, 4, 0.1, batch, 5).expect("well-conditioned")
    }

    #[test]
    fn batch_one_matches_single_sample_statistics() {
        let w = workload(1);
        assert_eq!(w.batch(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let gap = unbiasedness_gap(&w, &[0.5, -0.5, 0.2, 0.0], &mut rng, 40_000);
        assert!(gap < 0.2, "gap {gap}");
    }

    #[test]
    fn minibatch_gradient_is_unbiased() {
        let w = workload(8);
        let mut rng = StdRng::seed_from_u64(2);
        let gap = unbiasedness_gap(&w, &[0.3, 0.1, -0.7, 0.4], &mut rng, 20_000);
        assert!(gap < 0.2, "gap {gap}");
    }

    #[test]
    fn larger_batches_reduce_variance() {
        let w1 = workload(1);
        let w16 = workload(16);
        let x = [0.5, -0.5, 0.2, 0.1];
        let measure = |w: &MinibatchRegression, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = vec![0.0; 4];
            let mut stats = asgd_math::OnlineStats::new();
            let mut exact = vec![0.0; 4];
            w.full_gradient(&x, &mut exact);
            for _ in 0..5_000 {
                w.sample_gradient(&x, &mut rng, &mut g);
                stats.push(asgd_math::vec::l2_dist_sq(&g, &exact));
            }
            stats.mean()
        };
        let v1 = measure(&w1, 3);
        let v16 = measure(&w16, 3);
        assert!(
            v16 < v1 / 4.0,
            "batch-16 variance {v16} should be ≪ single-sample {v1}"
        );
    }

    #[test]
    fn delegated_quantities_match_inner() {
        let w = workload(4);
        assert_eq!(w.minimizer(), w.inner().minimizer());
        assert_eq!(w.objective(&[0.0; 4]), w.inner().objective(&[0.0; 4]));
        let k = w.constants(1.0);
        let ki = w.inner().constants(1.0);
        assert_eq!(k.c, ki.c);
        assert_eq!(k.l, ki.l);
        assert!(w.name().contains("b=4"));
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn rejects_zero_batch() {
        let _ = workload(0);
    }
}
