//! **§8(a)** — decreasing the step size is *necessary* under adversarial
//! delays.
//!
//! Paper claim (discussion of Theorem 5.1): with a fixed learning rate the
//! adversary can repeatedly merge stale gradients and hold progress at a
//! level proportional to `α`; decreasing `α` across epochs (Algorithm 2) is
//! what defeats the attack.
//!
//! Measured: under the cycling stale-gradient adversary, the *expected*
//! final distance (mean over independent seeded trials — single-trajectory
//! endpoints are dominated by where in the adversary's cycle the budget
//! runs out) of a fixed-α run versus the halving-α Algorithm-2 run at equal
//! iteration budget. The fixed run stalls at its `α`-proportional floor;
//! halving pushes far below it.
//!
//! Spec-driven: both arms are the *same* [`RunSpec`] except for backend and
//! step schedule — `simulated-lockfree` with `Constant` vs
//! `simulated-fullsgd` with `Halving`, equal total budget. All
//! `2 × trials` runs execute concurrently through [`Driver::run_many`];
//! per-trial seeds live in the specs, so the pooled means are bit-identical
//! to the serial ones.

use crate::ExperimentOutput;
use asgd_driver::{BackendKind, Driver, RunSpec, SchedulerSpec};
use asgd_math::rng::SeedSequence;
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::OracleSpec;
use asgd_theory::lower_bound;

/// Results of the comparison.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Mean final distance with fixed α.
    pub fixed_mean: f64,
    /// Mean final distance with halving α (Algorithm 2), equal budget.
    pub halving_mean: f64,
    /// The adversary's delay.
    pub tau: u64,
    /// Trials averaged.
    pub trials: u64,
}

/// Runs the comparison.
#[must_use]
pub fn compare(quick: bool) -> Comparison {
    let alpha = 0.2;
    let tau = lower_bound::required_delay(alpha); // enough delay to bite
    let epochs = if quick { 5 } else { 7 };
    let t_per_epoch: u64 = if quick { 150 } else { 500 };
    let total: u64 = t_per_epoch * (epochs as u64 + 1);
    let trials: u64 = if quick { 6 } else { 20 };
    let seq = SeedSequence::new(0x5E0);

    let base = RunSpec::new(
        OracleSpec::new("noisy-quadratic", 1).sigma(0.05),
        BackendKind::SimulatedLockFree,
    )
    .threads(2)
    .iterations(total)
    .x0(vec![1.0])
    .scheduler(SchedulerSpec::StaleGradient {
        runner: 0,
        victim: 1,
        delay: tau,
    });

    // One spec per (trial, arm), fixed arm first: the pool executes them
    // concurrently; per-trial seeds make the means order-independent.
    let mut specs = Vec::with_capacity(2 * trials as usize);
    for i in 0..trials {
        let seed = seq.child_seed(i);
        specs.push(base.clone().learning_rate(alpha).seed(seed));
        specs.push(
            base.clone()
                .backend(BackendKind::SimulatedFullSgd)
                .halving(alpha, epochs)
                .seed(seed),
        );
    }
    let reports = Driver::new().run_many(&specs);
    let mut fixed_acc = 0.0;
    let mut halving_acc = 0.0;
    for pair in reports.chunks(2) {
        let fixed = pair[0].as_ref().expect("fixed-α spec runs");
        let halving = pair[1].as_ref().expect("halving spec runs");
        fixed_acc += fixed.final_dist_sq.sqrt();
        halving_acc += halving.final_dist_sq.sqrt();
    }
    Comparison {
        fixed_mean: fixed_acc / trials as f64,
        halving_mean: halving_acc / trials as f64,
        tau,
        trials,
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("stepsize");
    let cmp = compare(quick);
    let mut table = Table::new(
        format!(
            "§8(a): fixed vs halving step size under the cycling stale-gradient adversary (τ={}, mean of {} trials)",
            cmp.tau, cmp.trials
        ),
        &["strategy", "mean final ‖x−x*‖"],
    );
    table.row(&["fixed α = 0.2".to_string(), fmt_f(cmp.fixed_mean)]);
    table.row(&[
        "halving α (Algorithm 2)".to_string(),
        fmt_f(cmp.halving_mean),
    ]);
    out.tables.push(table);
    out.notes.push(format!(
        "halving α ends {:.1}x closer to the optimum in expectation — decreasing the step size is necessary under adversarial delays",
        cmp.fixed_mean / cmp.halving_mean.max(1e-300)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_clearly_beats_fixed_alpha_in_expectation() {
        let cmp = compare(true);
        assert!(
            cmp.halving_mean < cmp.fixed_mean / 2.0,
            "halving mean {} should be well below fixed mean {}",
            cmp.halving_mean,
            cmp.fixed_mean
        );
    }
}
