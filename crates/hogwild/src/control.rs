//! Cross-thread run control shared by all native executors.
//!
//! Native runs are *jobs* from the driver's point of view: they must be
//! cancellable while in flight and observable at a bounded cost. Both
//! facilities ride the executors' existing success-check stride
//! ([`crate::ExecTuning::success_check_stride`]): every worker checks the
//! stop flag and (when installed) samples metrics whenever its claim index
//! is a stride multiple, so cancellation latency and observation overhead
//! are bounded by the stride regardless of the model dimension.

use crate::snapshot::ServeHook;
use std::sync::atomic::{AtomicBool, Ordering};

/// Strided metrics sink function: called from worker threads with
/// `(claim index, ‖view − x*‖²)`, where the view is the freshly read shared
/// model at the moment the claim was taken (i.e. with `claim` updates
/// logically issued before it, modulo in-flight writes).
pub type MetricsFn<'a> = &'a (dyn Fn(u64, f64) + Sync);

/// A metrics callback with its own firing stride: the sink fires on every
/// claim index that is a multiple of `stride`, independent of the
/// success-check stride, so callers get samples exactly where they asked for
/// them (and single-threaded runs sample at identical indices across
/// executors).
#[derive(Clone, Copy)]
pub struct MetricsSink<'a> {
    /// Claim-index stride between samples (clamped to ≥ 1).
    pub stride: u64,
    /// The sink.
    pub f: MetricsFn<'a>,
}

impl MetricsSink<'_> {
    /// True if `claim` is a sample point.
    #[must_use]
    pub fn fires_at(&self, claim: u64) -> bool {
        claim.is_multiple_of(self.stride.max(1))
    }
}

impl std::fmt::Debug for MetricsSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSink")
            .field("stride", &self.stride)
            .finish_non_exhaustive()
    }
}

/// Strided step-timing sink function: called from worker threads with
/// `(claim index, elapsed_ns, steps)` — the wall time and the number of
/// updates this worker applied since its previous firing. `elapsed_ns /
/// steps` is the worker's amortised per-step latency over the interval.
pub type TimingFn<'a> = &'a (dyn Fn(u64, u64, u64) + Sync);

/// A step-timing callback riding the executors' success-check stride: each
/// worker reads one `Instant` per stride window (never per claim), so the
/// hot path stays O(Δ) and the cost is bounded by the stride exactly like
/// cancellation. Used by the driver to feed the
/// `asgd_hogwild_step_ns` telemetry histogram.
#[derive(Clone, Copy)]
pub struct TimingSink<'a> {
    /// The sink.
    pub f: TimingFn<'a>,
}

impl std::fmt::Debug for TimingSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingSink").finish_non_exhaustive()
    }
}

/// Per-run control handles threaded into a native executor's claim loops.
///
/// The default is inert: no stop flag, no metrics — executors behave exactly
/// as their plain `run` entry points always have. Both hooks are pure
/// observation/termination: they never consume RNG state, so attaching them
/// cannot perturb a run's trajectory.
#[derive(Clone, Copy, Default, Debug)]
pub struct RunControl<'a> {
    /// Cooperative stop flag. Checked at the success-check stride in every
    /// claim loop; once it reads `true`, workers stop claiming and the run
    /// returns early with its report marked cancelled.
    pub stop: Option<&'a AtomicBool>,
    /// Strided metrics callback.
    pub metrics: Option<MetricsSink<'a>>,
    /// Strided step-timing callback (fires at the success-check stride).
    pub timing: Option<TimingSink<'a>>,
    /// Serving attachment: the executor exposes a
    /// [`ModelReader`](crate::snapshot::ModelReader) through the hook before
    /// its workers start and publishes coherent snapshots every
    /// [`ServeHook::publish_stride`] claims (plus a final one after the
    /// join). Currently implemented by the lock-free [`crate::Hogwild`]
    /// executor; the other native executors accept and ignore it.
    pub serve: Option<&'a ServeHook>,
}

impl RunControl<'_> {
    /// True once the stop flag has been raised.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stop.is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// True if the metrics sink is installed and fires at `claim`.
    #[must_use]
    pub fn metrics_at(&self, claim: u64) -> bool {
        self.metrics.is_some_and(|m| m.fires_at(claim))
    }

    /// Invokes the metrics sink (no-op when none is installed).
    pub fn emit_metrics(&self, claim: u64, dist_sq: f64) {
        if let Some(m) = self.metrics {
            (m.f)(claim, dist_sq);
        }
    }

    /// Invokes the timing sink (no-op when none is installed).
    pub fn emit_timing(&self, claim: u64, elapsed_ns: u64, steps: u64) {
        if let Some(t) = self.timing {
            (t.f)(claim, elapsed_ns, steps);
        }
    }

    /// True if either hook is installed (workers then need view scratch for
    /// strided sampling even on the sparse path). The timing sink is not
    /// included: it never reads the model, so it needs no scratch.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.stop.is_some() || self.metrics.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_control_is_inert() {
        let ctrl = RunControl::default();
        assert!(!ctrl.is_stopped());
        assert!(!ctrl.is_active());
        assert!(!ctrl.metrics_at(0));
        ctrl.emit_metrics(0, 1.0); // no sink: no-op
        assert!(format!("{ctrl:?}").contains("stop: None"));
    }

    #[test]
    fn stop_flag_is_observed() {
        let flag = AtomicBool::new(false);
        let ctrl = RunControl {
            stop: Some(&flag),
            ..RunControl::default()
        };
        assert!(!ctrl.is_stopped());
        assert!(ctrl.is_active());
        flag.store(true, Ordering::Relaxed);
        assert!(ctrl.is_stopped());
    }

    #[test]
    fn metrics_sink_fires_at_its_own_stride() {
        let noop: &(dyn Fn(u64, f64) + Sync) = &|_, _| {};
        let sink = MetricsSink {
            stride: 50,
            f: noop,
        };
        assert!(sink.fires_at(0));
        assert!(sink.fires_at(100));
        assert!(!sink.fires_at(16));
        let zero = MetricsSink { stride: 0, f: noop };
        assert!(zero.fires_at(7), "zero stride clamps to every claim");
        assert!(format!("{sink:?}").contains("stride: 50"));
    }

    #[test]
    fn timing_sink_receives_interval_observations() {
        use std::sync::atomic::AtomicU64;
        let total_ns = AtomicU64::new(0);
        let total_steps = AtomicU64::new(0);
        let record: &(dyn Fn(u64, u64, u64) + Sync) = &|_claim, ns, steps| {
            total_ns.fetch_add(ns, Ordering::Relaxed);
            total_steps.fetch_add(steps, Ordering::Relaxed);
        };
        let ctrl = RunControl {
            timing: Some(TimingSink { f: record }),
            ..RunControl::default()
        };
        // Timing alone must not force view scratch on the sparse path.
        assert!(!ctrl.is_active());
        ctrl.emit_timing(128, 64_000, 128);
        ctrl.emit_timing(256, 60_000, 128);
        assert_eq!(total_ns.load(Ordering::Relaxed), 124_000);
        assert_eq!(total_steps.load(Ordering::Relaxed), 256);
        // And the default is inert.
        RunControl::default().emit_timing(0, 1, 1);
        assert!(format!("{:?}", ctrl.timing).contains("TimingSink"));
    }
}
