//! The paper's theory as computable functions.
//!
//! Every displayed bound of *"The Convergence of SGD in Asynchronous Shared
//! Memory"* (Alistarh, De Sa, Konstantinov; PODC 2018) is implemented here so
//! experiments can print *paper-predicted* columns next to *measured* ones:
//!
//! * [`bounds`] — the failure-probability bounds: Theorem 3.1 (sequential),
//!   Theorem 6.3 (De Sa et al. \[10\], linear in `τ`, for contrast),
//!   Theorem 6.5 (the main result) and Corollary 6.7 (with the Eq. 12
//!   learning rate), plus the contention coefficient `C = 2√(τ_max·n)`
//!   (Lemma 6.4) and the Theorem 6.5 precondition check;
//! * [`martingale`] — the rate supermartingale `W_t` of Lemma 6.6 with its
//!   Lipschitz constant `H`, evaluable along real trajectories;
//! * [`lower_bound`] — the §5 construction in closed form: `x_τ`, `x_{τ+1}`,
//!   the injected variance, the `Ω(τ)` slowdown factor and the minimum
//!   adversarial delay `τ*(α)` of Theorem 5.1;
//! * [`corollary_7_1`] — the epoch count of Algorithm 2;
//! * [`regimes`] — the §8 complementarity analysis between the lower-bound
//!   precondition and the upper-bound precondition.
//!
//! # Example: the paper's learning rate for a real workload
//!
//! ```
//! use asgd_oracle::{GradientOracle, NoisyQuadratic};
//! use asgd_theory::bounds;
//!
//! let oracle = NoisyQuadratic::new(8, 0.5).expect("valid");
//! let consts = oracle.constants(2.0);
//! let alpha = bounds::corollary_6_7_learning_rate(&consts, 0.01, 8, 16, 4, 1.0);
//! assert!(alpha > 0.0 && alpha < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod corollary_7_1;
pub mod lower_bound;
pub mod martingale;
pub mod regimes;
