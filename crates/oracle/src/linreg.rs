//! Least-squares linear regression over a synthetic dataset.
//!
//! `f(x) = (1/2m)·Σ_i (a_iᵀx − b_i)²`; the stochastic gradient samples one
//! data point uniformly: `g̃(x) = (a_iᵀx − b_i)·a_i`, the classic SGD-for-ERM
//! setting the paper's introduction describes.

use crate::constants::Constants;
use crate::linalg::{min_eigenvalue_spd, solve, DenseMatrix};
use crate::oracle::GradientOracle;
use crate::synth::RegressionData;
use rand::{Rng, RngCore};

/// Least-squares workload with exact minimiser (via the normal equations)
/// and computed constants.
///
/// * `c = λ_min(AᵀA/m)` — exact strong convexity of the quadratic objective
///   (computed by inverse power iteration at construction).
/// * `L = max_i ‖a_i‖²` — under common random numbers
///   `g̃(x) − g̃(y) = (a_iᵀ(x−y))·a_i`, so `‖g̃(x)−g̃(y)‖ ≤ ‖a_i‖²·‖x−y‖`.
/// * `M²(R) = (1/m)·Σ_i ‖a_i‖²·2(‖a_i‖²R² + r_i²)` where `r_i` is the
///   residual at the minimiser — from
///   `(a_iᵀx − b_i)² ≤ 2(a_iᵀ(x−x*))² + 2·r_i²`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    data: RegressionData,
    minimizer: Vec<f64>,
    c: f64,
    l: f64,
    /// Per-point `‖a_i‖²`.
    feat_norms_sq: Vec<f64>,
    /// Per-point residual² at the minimiser.
    residuals_sq: Vec<f64>,
}

/// Error from [`LinearRegression::new`] when the normal equations are
/// singular (rank-deficient design matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDeficientError;

impl std::fmt::Display for RankDeficientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "design matrix is rank deficient; add samples or reduce d"
        )
    }
}

impl std::error::Error for RankDeficientError {}

impl LinearRegression {
    /// Builds the workload from a dataset, solving the normal equations for
    /// the exact minimiser and computing the §3 constants.
    ///
    /// # Errors
    ///
    /// Returns [`RankDeficientError`] if `AᵀA` is singular.
    pub fn new(data: RegressionData) -> Result<Self, RankDeficientError> {
        let m = data.len();
        let d = data.dimension();
        let flat: Vec<f64> = data.features.iter().flatten().copied().collect();
        let a = DenseMatrix::from_rows(m, d, flat);
        let hessian = a.gram_normalized(); // AᵀA/m
                                           // Normal equations: (AᵀA/m)·x = Aᵀb/m.
        let mut rhs = vec![0.0; d];
        for (row, &b) in data.features.iter().zip(&data.targets) {
            for (r, &ai) in rhs.iter_mut().zip(row) {
                *r += ai * b;
            }
        }
        for r in &mut rhs {
            *r /= m as f64;
        }
        let minimizer = solve(&hessian, &rhs).map_err(|_| RankDeficientError)?;
        let c = min_eigenvalue_spd(&hessian, 300).map_err(|_| RankDeficientError)?;
        if !(c.is_finite() && c > 0.0) {
            return Err(RankDeficientError);
        }
        let feat_norms_sq: Vec<f64> = data
            .features
            .iter()
            .map(|a| asgd_math::vec::l2_norm_sq(a))
            .collect();
        let l = feat_norms_sq.iter().copied().fold(0.0_f64, f64::max);
        let residuals_sq: Vec<f64> = data
            .features
            .iter()
            .zip(&data.targets)
            .map(|(a, &b)| {
                let r = asgd_math::vec::dot(a, &minimizer) - b;
                r * r
            })
            .collect();
        Ok(Self {
            data,
            minimizer,
            c,
            l,
            feat_norms_sq,
            residuals_sq,
        })
    }

    /// Generates a synthetic dataset and builds the workload in one call.
    ///
    /// # Errors
    ///
    /// Returns [`RankDeficientError`] if the generated design matrix is rank
    /// deficient (essentially impossible for Gaussian features with `m ≥ d`).
    pub fn synthetic(
        m: usize,
        d: usize,
        noise: f64,
        seed: u64,
    ) -> Result<Self, RankDeficientError> {
        Self::new(crate::synth::regression(m, d, noise, seed))
    }

    /// The underlying dataset.
    #[must_use]
    pub fn data(&self) -> &RegressionData {
        &self.data
    }
}

impl GradientOracle for LinearRegression {
    fn dimension(&self) -> usize {
        self.data.dimension()
    }

    fn sample_gradient(&self, x: &[f64], rng: &mut dyn RngCore, out: &mut [f64]) {
        assert_eq!(x.len(), self.dimension(), "x dimension mismatch");
        assert_eq!(out.len(), self.dimension(), "out dimension mismatch");
        let i = rng.gen_range(0..self.data.len());
        let a = &self.data.features[i];
        let r = asgd_math::vec::dot(a, x) - self.data.targets[i];
        for (o, &ai) in out.iter_mut().zip(a) {
            *o = r * ai;
        }
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dimension(), "x dimension mismatch");
        out.fill(0.0);
        for (a, &b) in self.data.features.iter().zip(&self.data.targets) {
            let r = asgd_math::vec::dot(a, x) - b;
            for (o, &ai) in out.iter_mut().zip(a) {
                *o += r * ai;
            }
        }
        let inv_m = 1.0 / self.data.len() as f64;
        for o in out.iter_mut() {
            *o *= inv_m;
        }
    }

    fn objective(&self, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (a, &b) in self.data.features.iter().zip(&self.data.targets) {
            let r = asgd_math::vec::dot(a, x) - b;
            acc += r * r;
        }
        acc / (2.0 * self.data.len() as f64)
    }

    fn minimizer(&self) -> &[f64] {
        &self.minimizer
    }

    fn constants(&self, radius: f64) -> Constants {
        assert!(radius > 0.0, "radius must be positive");
        let m = self.data.len() as f64;
        let m_sq = self
            .feat_norms_sq
            .iter()
            .zip(&self.residuals_sq)
            .map(|(&an, &rs)| an * 2.0 * (an * radius * radius + rs))
            .sum::<f64>()
            / m;
        Constants::new(self.c, self.l, m_sq.max(f64::MIN_POSITIVE), radius)
    }

    fn name(&self) -> &str {
        "linear-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::unbiasedness_gap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> LinearRegression {
        LinearRegression::synthetic(200, 5, 0.1, 42).expect("well-conditioned")
    }

    #[test]
    fn minimizer_is_stationary() {
        let w = workload();
        let mut g = vec![0.0; 5];
        w.full_gradient(w.minimizer(), &mut g);
        assert!(
            asgd_math::vec::l2_norm(&g) < 1e-8,
            "gradient at x*: {:?}",
            g
        );
    }

    #[test]
    fn minimizer_near_ground_truth_with_low_noise() {
        let w = LinearRegression::synthetic(2000, 4, 0.01, 7).unwrap();
        let dist = asgd_math::vec::l2_dist(w.minimizer(), &w.data().ground_truth);
        assert!(dist < 0.05, "dist {dist}");
    }

    #[test]
    fn objective_minimised_at_minimizer() {
        let w = workload();
        let f_star = w.objective(w.minimizer());
        let mut perturbed = w.minimizer().to_vec();
        perturbed[0] += 0.5;
        assert!(w.objective(&perturbed) > f_star);
        perturbed[0] -= 1.0;
        assert!(w.objective(&perturbed) > f_star);
    }

    #[test]
    fn stochastic_gradient_is_unbiased() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(3);
        let x = vec![0.3, -0.2, 0.8, 0.0, -1.0];
        let gap = unbiasedness_gap(&w, &x, &mut rng, 60_000);
        assert!(gap < 0.2, "gap {gap}");
    }

    #[test]
    fn constants_are_consistent() {
        let w = workload();
        let k = w.constants(2.0);
        assert!(k.c > 0.0);
        assert!(k.c <= k.l, "strong convexity cannot exceed smoothness");
        assert!(k.m_sq > 0.0);
        // M² grows with the radius.
        assert!(w.constants(4.0).m_sq > k.m_sq);
    }

    #[test]
    fn second_moment_bound_dominates_measurement() {
        let w = workload();
        let radius = 1.5;
        let k = w.constants(radius);
        // Sample x on the sphere of the trust region and check E‖g̃‖² ≤ M².
        let mut rng = StdRng::seed_from_u64(9);
        let mut x = w.minimizer().to_vec();
        x[0] += radius; // on the boundary
        let mut g = vec![0.0; 5];
        let mut acc = 0.0;
        let trials = 20_000;
        for _ in 0..trials {
            w.sample_gradient(&x, &mut rng, &mut g);
            acc += asgd_math::vec::l2_norm_sq(&g);
        }
        let measured = acc / trials as f64;
        assert!(
            measured <= k.m_sq,
            "measured E‖g̃‖² = {measured} exceeds bound M² = {}",
            k.m_sq
        );
    }

    #[test]
    fn rank_deficient_design_is_rejected() {
        // 3 identical rows in d=2: AᵀA singular.
        let data = RegressionData {
            features: vec![vec![1.0, 2.0]; 3],
            targets: vec![1.0, 1.0, 1.0],
            ground_truth: vec![0.0, 0.0],
        };
        let err = LinearRegression::new(data).unwrap_err();
        assert!(err.to_string().contains("rank deficient"));
    }

    #[test]
    fn strong_convexity_verified_against_gradient_inequality() {
        // (x−y)ᵀ(∇f(x)−∇f(y)) ≥ c‖x−y‖² for the computed c.
        let w = workload();
        let k = w.constants(1.0);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..50 {
            let x: Vec<f64> = (0..5).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let y: Vec<f64> = (0..5).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut gx = vec![0.0; 5];
            let mut gy = vec![0.0; 5];
            w.full_gradient(&x, &mut gx);
            w.full_gradient(&y, &mut gy);
            let diff = asgd_math::vec::sub(&x, &y);
            let gdiff = asgd_math::vec::sub(&gx, &gy);
            let lhs = asgd_math::vec::dot(&diff, &gdiff);
            let rhs = k.c * asgd_math::vec::l2_norm_sq(&diff);
            assert!(
                lhs >= rhs - 1e-9 * rhs.abs().max(1.0),
                "strong convexity violated: {lhs} < {rhs}"
            );
        }
    }
}
