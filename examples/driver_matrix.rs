//! One `RunSpec`, every backend: the head-to-head the unified driver is for.
//!
//! ```text
//! cargo run --release --example driver_matrix
//! ```
//!
//! Builds a single spec (noisy quadratic, 4 threads, constant α) and runs it
//! unchanged on five constant-step backends plus — after switching the
//! schedule to Algorithm 2's halving — on the two FullSGD backends. Prints a
//! comparison table and dumps each report as one line of JSON, the same
//! format `experiments run --json` writes to `BENCH_*.json` files.

use asyncsgd::prelude::*;

fn main() {
    let spec = RunSpec::new(
        OracleSpec::new("noisy-quadratic", 4).sigma(0.3),
        BackendKind::Sequential,
    )
    .threads(4)
    .iterations(20_000)
    .learning_rate(0.05)
    .x0(vec![2.0, -2.0, 1.0, -1.0])
    .success_radius_sq(0.05)
    .scheduler(SchedulerSpec::Random { seed: 3 })
    .seed(7);

    println!(
        "{:<20} {:>12} {:>12} {:>10} {:>12}",
        "backend", "dist²", "hit", "wall ms", "it/s"
    );
    let mut reports = Vec::new();
    for &backend in BackendKind::all() {
        // FullSGD backends run the halving schedule; the rest run the
        // constant schedule. Same oracle, budget, seed and start everywhere.
        let spec = match backend {
            BackendKind::SimulatedFullSgd | BackendKind::NativeFullSgd => {
                spec.clone().backend(backend).halving(0.05, 4)
            }
            _ => spec.clone().backend(backend),
        };
        let report = run_spec(&spec).expect("spec runs on every backend");
        println!(
            "{:<20} {:>12.3e} {:>12} {:>10.2} {:>12.0}",
            report.backend,
            report.final_dist_sq,
            report
                .hit_iteration
                .map_or("-".to_string(), |t| t.to_string()),
            report.wall_time_secs * 1e3,
            report.iterations_per_sec(),
        );
        reports.push(report);
    }

    println!("\n--- JSON (BENCH_*.json format) ---");
    for report in &reports {
        let json = report.to_json();
        // Round-trip check: the JSON codec is exact.
        assert_eq!(RunReport::from_json(&json).expect("valid"), *report);
        println!("{json}");
    }
}
