//! Offline stand-in for `serde`.
//!
//! Provides just enough surface for the workspace's feature-gated
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize,
//! serde::Deserialize))]` attributes to compile without crates.io access:
//! two empty marker traits and the re-exported stub derives from the
//! sibling `serde_derive` compat crate. Consumers with a real registry get
//! the real serde through the same feature names; this stub exists so CI
//! can build `--features serde` and catch attribute rot.

#![forbid(unsafe_code)]

// The stub derives emit `impl ::serde::Serialize for …`; make that path
// resolve inside this crate too (the self-alias real serde also uses).
extern crate self as serde;

/// Marker stand-in for `serde::Serialize` (no methods — the built-in JSON
/// codecs in `asgd_driver::json` do the actual serialisation offline).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime-free: the workspace
/// only names it in derives, never in bounds).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[derive(crate::Serialize, crate::Deserialize)]
    struct Plain {
        _x: u64,
    }

    #[derive(crate::Serialize, crate::Deserialize)]
    enum Choice {
        _A,
        #[allow(dead_code)]
        _B(f64),
    }

    fn takes_serialize<T: crate::Serialize>(_: &T) {}
    fn takes_deserialize<T: crate::Deserialize>(_: &T) {}

    #[test]
    fn derives_emit_trait_impls() {
        takes_serialize(&Plain { _x: 1 });
        takes_deserialize(&Plain { _x: 2 });
        takes_serialize(&Choice::_B(0.5));
        takes_deserialize(&Choice::_A);
    }
}
