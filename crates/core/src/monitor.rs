//! Live reconstruction of the paper's accumulator process `x_t` (§6.1).
//!
//! The convergence results are stated for the auxiliary sequence
//! `x_t = x₀ + Σ_{k≤t} (−α·g̃_k)` — the sum of the updates the first `t`
//! ordered iterations *wish* to apply — not for the raw contents of shared
//! memory (which may be missing in-flight writes at any instant). The
//! failure event `F_T` is "`x_t ∉ S` for all `t ≤ T`".
//!
//! [`HittingMonitor`] consumes the engine's event stream, groups model-write
//! deltas by iteration (in the Lemma-6.1 order), folds completed iterations
//! into the accumulator **in order**, and records the first `t` whose `x_t`
//! lands in the success region.

use asgd_shmem::op::{MemOp, OpTag};
use asgd_shmem::trace::{EventKind, EventRecord};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Sparse update list of one in-flight iteration: `(order index, deltas)`.
type InFlight = (u64, Vec<(usize, f64)>);

/// Strided trajectory sampler: called with `(t, ‖x_t − x*‖²)` for ordered
/// iteration counts `t` that are multiples of the stride.
type SampleFn = Box<dyn FnMut(u64, f64)>;

/// Streaming monitor for success-region hitting times.
///
/// Wrap it in an [`Rc<RefCell<_>>`] via [`HittingMonitor::shared`] and hand a
/// forwarding closure to
/// [`EngineBuilder::observer`](asgd_shmem::engine::EngineBuilder::observer).
pub struct HittingMonitor {
    /// Running accumulator `x_t`.
    x: Vec<f64>,
    x_star: Vec<f64>,
    eps: f64,
    /// Deltas being collected per thread for its in-flight iteration.
    in_flight: Vec<Option<InFlight>>,
    /// Completed iterations awaiting their turn in the order fold.
    stash: BTreeMap<u64, Vec<(usize, f64)>>,
    /// Next iteration order index (0-based) to fold.
    next_index: u64,
    /// First-write counter assigning order indices (mirrors the tracker).
    started: u64,
    hit: Option<u64>,
    min_dist_sq: f64,
    evaluated: u64,
    sampler: Option<(u64, SampleFn)>,
}

impl std::fmt::Debug for HittingMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HittingMonitor")
            .field("eps", &self.eps)
            .field("next_index", &self.next_index)
            .field("started", &self.started)
            .field("hit", &self.hit)
            .field("min_dist_sq", &self.min_dist_sq)
            .field("evaluated", &self.evaluated)
            .field("sampler", &self.sampler.as_ref().map(|(stride, _)| stride))
            .finish_non_exhaustive()
    }
}

impl HittingMonitor {
    /// Creates a monitor for `n` threads, accumulating from `x0`, measuring
    /// squared distance to `x_star` against threshold `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` and `x_star` have different lengths or `eps` is not
    /// positive.
    #[must_use]
    pub fn new(n: usize, x0: Vec<f64>, x_star: Vec<f64>, eps: f64) -> Self {
        assert_eq!(x0.len(), x_star.len(), "x0/x* dimension mismatch");
        assert!(eps > 0.0, "eps must be positive");
        let min = asgd_math::vec::l2_dist_sq(&x0, &x_star);
        Self {
            x: x0,
            x_star,
            eps,
            in_flight: vec![None; n],
            stash: BTreeMap::new(),
            next_index: 0,
            started: 0,
            hit: None,
            min_dist_sq: min,
            evaluated: 0,
            sampler: None,
        }
    }

    /// Installs a strided trajectory sampler: `f(t, ‖x_t − x*‖²)` fires after
    /// folding ordered iteration `t` whenever `t` is a multiple of `stride`
    /// (clamped to ≥ 1). Pure observation — the fold itself is unchanged.
    #[must_use]
    pub fn on_sample(mut self, stride: u64, f: impl FnMut(u64, f64) + 'static) -> Self {
        self.sampler = Some((stride.max(1), Box::new(f)));
        self
    }

    /// Wraps the monitor for sharing with the engine observer closure.
    #[must_use]
    pub fn shared(self) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(self))
    }

    /// Feeds one engine event.
    pub fn observe(&mut self, ev: &EventRecord) {
        if matches!(ev.kind, EventKind::Crashed) {
            // A crashed thread never finishes its in-flight iteration; its
            // remaining writes will never land, so the iteration's effective
            // contribution to the accumulator is exactly the deltas applied
            // so far. Finalise it with those, or the ordered fold would
            // stall forever at its index.
            if ev.thread < self.in_flight.len() {
                if let Some((idx, deltas)) = self.in_flight[ev.thread].take() {
                    self.stash.insert(idx, deltas);
                    self.fold_ready();
                }
            }
            return;
        }
        let EventKind::Op {
            op: MemOp::FaaF64 { delta, .. },
            tag: OpTag::ModelWrite { entry, first, last },
            ..
        } = ev.kind
        else {
            return;
        };
        if ev.thread >= self.in_flight.len() {
            return;
        }
        if first {
            let idx = self.started;
            self.started += 1;
            self.in_flight[ev.thread] = Some((idx, Vec::new()));
        }
        if let Some((idx, deltas)) = &mut self.in_flight[ev.thread] {
            deltas.push((entry, delta));
            if last {
                let idx = *idx;
                let deltas = std::mem::take(deltas);
                self.in_flight[ev.thread] = None;
                self.stash.insert(idx, deltas);
                self.fold_ready();
            }
        }
    }

    fn fold_ready(&mut self) {
        while let Some(deltas) = self.stash.remove(&self.next_index) {
            for (entry, delta) in deltas {
                if entry < self.x.len() {
                    self.x[entry] += delta;
                }
            }
            self.next_index += 1;
            self.evaluated += 1;
            let dist_sq = asgd_math::vec::l2_dist_sq(&self.x, &self.x_star);
            self.min_dist_sq = self.min_dist_sq.min(dist_sq);
            if self.hit.is_none() && dist_sq <= self.eps {
                self.hit = Some(self.next_index); // 1-based iteration count
            }
            if let Some((stride, f)) = &mut self.sampler {
                if self.next_index.is_multiple_of(*stride) {
                    f(self.next_index, dist_sq);
                }
            }
        }
    }

    /// First (1-based) ordered iteration `t` with `x_t ∈ S`, if any.
    #[must_use]
    pub fn hit_iteration(&self) -> Option<u64> {
        self.hit
    }

    /// Minimum `‖x_t − x*‖²` over evaluated prefix states (including `x₀`).
    #[must_use]
    pub fn min_dist_sq(&self) -> f64 {
        self.min_dist_sq
    }

    /// Number of accumulator states evaluated (= completed ordered prefix).
    #[must_use]
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Current accumulator value.
    #[must_use]
    pub fn accumulator(&self) -> &[f64] {
        &self.x
    }

    /// Squared distance of the current accumulator to the optimum.
    #[must_use]
    pub fn current_dist_sq(&self) -> f64 {
        asgd_math::vec::l2_dist_sq(&self.x, &self.x_star)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_shmem::op::OpResult;

    fn write_event(
        thread: usize,
        entry: usize,
        delta: f64,
        first: bool,
        last: bool,
    ) -> EventRecord {
        EventRecord {
            step: 0,
            thread,
            kind: EventKind::Op {
                op: MemOp::FaaF64 { idx: entry, delta },
                tag: OpTag::ModelWrite { entry, first, last },
                result: OpResult::F64(0.0),
            },
        }
    }

    #[test]
    fn folds_single_iteration() {
        let mut m = HittingMonitor::new(1, vec![1.0, 1.0], vec![0.0, 0.0], 0.5);
        m.observe(&write_event(0, 0, -1.0, true, false));
        assert_eq!(m.evaluated(), 0, "not folded until last write");
        m.observe(&write_event(0, 1, -1.0, false, true));
        assert_eq!(m.evaluated(), 1);
        assert_eq!(m.accumulator(), &[0.0, 0.0]);
        assert_eq!(m.hit_iteration(), Some(1));
        assert_eq!(m.min_dist_sq(), 0.0);
    }

    #[test]
    fn folds_out_of_order_completions_in_index_order() {
        // Thread 0 first-writes before thread 1 (indices 0 and 1), but
        // thread 1 completes first; the fold must wait for index 0.
        let mut m = HittingMonitor::new(2, vec![0.0], vec![10.0], 1.0);
        m.observe(&write_event(0, 0, 2.0, true, false)); // index 0, incomplete
        m.observe(&write_event(1, 0, 3.0, true, true)); // index 1, complete
        assert_eq!(m.evaluated(), 0);
        m.observe(&write_event(0, 0, 1.0, false, true)); // index 0 completes
        assert_eq!(m.evaluated(), 2);
        // x_1 = 0 + (2+1) = 3; x_2 = 3 + 3 = 6.
        assert_eq!(m.accumulator(), &[6.0]);
        assert_eq!(m.current_dist_sq(), 16.0);
        assert_eq!(m.hit_iteration(), None);
    }

    #[test]
    fn hit_records_first_entry_only() {
        let mut m = HittingMonitor::new(1, vec![2.0], vec![0.0], 1.0);
        m.observe(&write_event(0, 0, -1.5, true, true)); // x=0.5 ∈ S, t=1
        m.observe(&write_event(0, 0, -5.0, true, true)); // x=-4.5 ∉ S, t=2
        assert_eq!(m.hit_iteration(), Some(1), "first hit is sticky");
        assert_eq!(m.evaluated(), 2);
    }

    #[test]
    fn crash_finalises_in_flight_iteration_with_partial_deltas() {
        // Thread 0 first-writes (index 0) then crashes; thread 1's complete
        // iteration (index 1) must still fold — using thread 0's partial
        // contribution.
        let mut m = HittingMonitor::new(2, vec![0.0, 0.0], vec![0.0, 0.0], 1e9);
        m.observe(&write_event(0, 0, 5.0, true, false)); // index 0, partial
        m.observe(&write_event(1, 0, 3.0, true, true)); // index 1, complete
        assert_eq!(m.evaluated(), 0, "blocked on index 0");
        m.observe(&EventRecord {
            step: 9,
            thread: 0,
            kind: EventKind::Crashed,
        });
        assert_eq!(m.evaluated(), 2, "crash unblocks the fold");
        assert_eq!(m.accumulator(), &[8.0, 0.0]);
    }

    #[test]
    fn crash_of_idle_thread_is_a_no_op() {
        let mut m = HittingMonitor::new(1, vec![0.0], vec![0.0], 1.0);
        m.observe(&EventRecord {
            step: 0,
            thread: 0,
            kind: EventKind::Crashed,
        });
        assert_eq!(m.evaluated(), 0);
    }

    #[test]
    fn ignores_non_write_events() {
        let mut m = HittingMonitor::new(1, vec![0.0], vec![0.0], 1.0);
        m.observe(&EventRecord {
            step: 0,
            thread: 0,
            kind: EventKind::Halted,
        });
        m.observe(&EventRecord {
            step: 1,
            thread: 0,
            kind: EventKind::Local {
                tag: OpTag::SampleCoin,
            },
        });
        assert_eq!(m.evaluated(), 0);
    }

    #[test]
    fn sampler_fires_at_stride_multiples_without_changing_the_fold() {
        let samples = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&samples);
        let mut m = HittingMonitor::new(1, vec![4.0], vec![0.0], 1e-12)
            .on_sample(2, move |t, d| sink.borrow_mut().push((t, d)));
        for _ in 0..5 {
            m.observe(&write_event(0, 0, -1.0, true, true));
        }
        assert_eq!(m.evaluated(), 5);
        // x_t = 4 − t ⇒ dist² at t=2 is 4, at t=4 is 0.
        assert_eq!(&*samples.borrow(), &[(2, 4.0), (4, 0.0)]);
        assert!(format!("{m:?}").contains("sampler"), "debug impl present");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_mismatched_dimensions() {
        let _ = HittingMonitor::new(1, vec![0.0], vec![0.0, 1.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_bad_eps() {
        let _ = HittingMonitor::new(1, vec![0.0], vec![0.0], 0.0);
    }
}
