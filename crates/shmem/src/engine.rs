//! The execution engine.
//!
//! Drives `n` [`Process`]es against a [`Memory`] under a [`Scheduler`],
//! firing exactly one declared action per global step. Processes pre-declare
//! their next action (drawing local coins in the process), the scheduler
//! observes everything and picks, the engine applies — the strong-adversary
//! execution model of §2 of the paper.

use crate::contention::{ContentionReport, ContentionTracker};
use crate::memory::Memory;
use crate::op::{Action, OpResult, Step, ThreadId};
use crate::process::{Process, ProcessCtx};
use crate::sched::{Decision, SchedView, Scheduler, ThreadStatus, ThreadView};
use crate::trace::{EventKind, EventRecord, Trace, TraceLevel};
use asgd_math::rng::SeedSequence;
use rand::rngs::StdRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A streaming observer of fired events (see
/// [`EngineBuilder::observer`]).
pub type EventObserver = Box<dyn FnMut(&EventRecord)>;

/// Why the engine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process halted (or was crashed).
    AllDone,
    /// The configured step budget ran out.
    StepBudgetExhausted,
    /// The external stop flag ([`EngineBuilder::stop_flag`]) was raised; the
    /// run ended early by request, **not** by completing its program. Callers
    /// distinguishing success from early exit must not lump this in with
    /// [`StopReason::AllDone`].
    Cancelled,
}

/// Final state and statistics of one simulated execution.
#[derive(Debug)]
pub struct ExecutionReport {
    /// Number of steps fired.
    pub steps: Step,
    /// Why the run ended.
    pub stop: StopReason,
    /// Processes that halted normally.
    pub halted: usize,
    /// Processes crashed by the adversary.
    pub crashed: usize,
    /// Final shared memory.
    pub memory: Memory,
    /// Finalised contention statistics.
    pub contention: ContentionReport,
    /// Full event trace, if [`TraceLevel::Events`] was requested.
    pub trace: Option<Trace>,
    /// Deterministic digest of the execution (steps, final memory, and the
    /// event trace when recorded). Equal seeds and schedulers ⇒ equal hashes.
    pub fingerprint: u64,
}

/// Builder for an [`Engine`].
///
/// # Example
///
/// ```
/// use asgd_shmem::engine::Engine;
/// use asgd_shmem::memory::Memory;
/// use asgd_shmem::process::FaaHammer;
/// use asgd_shmem::sched::StepRoundRobin;
///
/// let report = Engine::builder()
///     .memory(Memory::new(1, 0))
///     .process(FaaHammer::new(0, 1.0, 10))
///     .process(FaaHammer::new(0, 1.0, 10))
///     .scheduler(StepRoundRobin::new())
///     .seed(42)
///     .build()
///     .run();
/// assert_eq!(report.memory.float(0), 20.0);
/// ```
#[derive(Default)]
pub struct EngineBuilder {
    memory: Option<Memory>,
    processes: Vec<Box<dyn Process>>,
    scheduler: Option<Box<dyn Scheduler>>,
    seed: u64,
    max_steps: Option<Step>,
    trace: TraceLevel,
    max_crashes: Option<usize>,
    observer: Option<EventObserver>,
    stop_flag: Option<Arc<AtomicBool>>,
}

impl EngineBuilder {
    /// Sets the initial shared memory (required).
    #[must_use]
    pub fn memory(mut self, memory: Memory) -> Self {
        self.memory = Some(memory);
        self
    }

    /// Adds one process (at least one required). Thread ids are assigned in
    /// insertion order.
    #[must_use]
    pub fn process(mut self, p: impl Process + 'static) -> Self {
        self.processes.push(Box::new(p));
        self
    }

    /// Adds `n` processes produced by `f(thread_id)`.
    #[must_use]
    pub fn processes_with(
        mut self,
        n: usize,
        mut f: impl FnMut(ThreadId) -> Box<dyn Process>,
    ) -> Self {
        for _ in 0..n {
            let id = self.processes.len();
            self.processes.push(f(id));
        }
        self
    }

    /// Sets the scheduler (required).
    #[must_use]
    pub fn scheduler(mut self, s: impl Scheduler + 'static) -> Self {
        self.scheduler = Some(Box::new(s));
        self
    }

    /// Sets the master seed from which per-process coin streams are derived.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of fired steps (default: unlimited).
    #[must_use]
    pub fn max_steps(mut self, max: Step) -> Self {
        self.max_steps = Some(max);
        self
    }

    /// Selects the trace level (default [`TraceLevel::Off`]).
    #[must_use]
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Overrides the crash budget (default `n − 1`, the model's maximum).
    #[must_use]
    pub fn max_crashes(mut self, c: usize) -> Self {
        self.max_crashes = Some(c);
        self
    }

    /// Installs a streaming observer called with every fired event, in firing
    /// order, regardless of trace level. Used by live monitors (e.g. the
    /// hitting-time monitor of `asgd-core`) that would otherwise need a full
    /// in-memory trace. Calling this more than once *chains* the observers:
    /// each fired event reaches every installed observer, in installation
    /// order.
    #[must_use]
    pub fn observer(mut self, f: impl FnMut(&EventRecord) + 'static) -> Self {
        self.observer = Some(match self.observer {
            None => Box::new(f),
            Some(mut first) => {
                let mut second = f;
                Box::new(move |ev: &EventRecord| {
                    first(ev);
                    second(ev);
                })
            }
        });
        self
    }

    /// Installs a cooperative stop flag, checked before every step: once it
    /// reads `true`, the run ends with [`StopReason::Cancelled`]. The flag is
    /// shared (typically raised from another thread by a run handle); the
    /// engine itself never writes it.
    #[must_use]
    pub fn stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop_flag = Some(flag);
        self
    }

    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if memory or scheduler is missing, or no process was added.
    #[must_use]
    pub fn build(self) -> Engine {
        let memory = self.memory.expect("EngineBuilder: memory is required");
        let scheduler = self
            .scheduler
            .expect("EngineBuilder: scheduler is required");
        assert!(
            !self.processes.is_empty(),
            "EngineBuilder: at least one process is required"
        );
        let n = self.processes.len();
        let seeds = SeedSequence::new(self.seed);
        let slots: Vec<Slot> = self
            .processes
            .into_iter()
            .enumerate()
            .map(|(i, proc)| Slot {
                proc,
                rng: seeds.child_rng(i as u64),
                status: ThreadStatus::Runnable,
                pending: None,
                last: None,
            })
            .collect();
        Engine {
            memory,
            slots,
            scheduler,
            tracker: ContentionTracker::new(n),
            trace: match self.trace {
                TraceLevel::Off => None,
                TraceLevel::Events => Some(Trace::new()),
            },
            step: 0,
            max_steps: self.max_steps.unwrap_or(Step::MAX),
            crashes_remaining: self
                .max_crashes
                .unwrap_or(n.saturating_sub(1))
                .min(n.saturating_sub(1)),
            crashed: 0,
            observer: self.observer,
            stop_flag: self.stop_flag,
        }
    }
}

struct Slot {
    proc: Box<dyn Process>,
    rng: StdRng,
    status: ThreadStatus,
    pending: Option<Action>,
    last: Option<OpResult>,
}

/// The simulation engine. Construct with [`Engine::builder`], consume with
/// [`Engine::run`].
pub struct Engine {
    memory: Memory,
    slots: Vec<Slot>,
    scheduler: Box<dyn Scheduler>,
    tracker: ContentionTracker,
    trace: Option<Trace>,
    step: Step,
    max_steps: Step,
    crashes_remaining: usize,
    crashed: usize,
    observer: Option<EventObserver>,
    stop_flag: Option<Arc<AtomicBool>>,
}

impl Engine {
    /// Records an event into the trace and/or streams it to the observer.
    fn emit(&mut self, ev: EventRecord) {
        if let Some(obs) = &mut self.observer {
            obs(&ev);
        }
        if let Some(trace) = &mut self.trace {
            trace.push(ev);
        }
    }

    fn should_emit(&self) -> bool {
        self.trace.is_some() || self.observer.is_some()
    }
}

impl Engine {
    /// Starts building an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Runs the execution to completion (all processes halted/crashed) or
    /// until the step budget is exhausted, and returns the report.
    #[must_use]
    pub fn run(mut self) -> ExecutionReport {
        // Initial declaration round: every process announces its first action.
        for i in 0..self.slots.len() {
            self.fill_pending(i);
        }

        let stop = loop {
            if self.step >= self.max_steps {
                break StopReason::StepBudgetExhausted;
            }
            if let Some(flag) = &self.stop_flag {
                if flag.load(Ordering::Relaxed) {
                    break StopReason::Cancelled;
                }
            }
            if !self
                .slots
                .iter()
                .any(|s| s.status == ThreadStatus::Runnable)
            {
                break StopReason::AllDone;
            }

            let views: Vec<ThreadView> = self
                .slots
                .iter()
                .enumerate()
                .map(|(id, s)| ThreadView {
                    id,
                    status: s.status,
                    pending: s.pending.clone(),
                })
                .collect();
            let decision = {
                let view = SchedView {
                    step: self.step,
                    memory: &self.memory,
                    threads: &views,
                    tracker: &self.tracker,
                    crashes_remaining: self.crashes_remaining,
                };
                self.scheduler.decide(&view)
            };

            match decision {
                Decision::Crash(tid) => {
                    assert!(
                        self.crashes_remaining > 0,
                        "scheduler bug: crash budget exhausted"
                    );
                    assert!(
                        self.slots[tid].status == ThreadStatus::Runnable,
                        "scheduler bug: crashing non-runnable thread {tid}"
                    );
                    self.crashes_remaining -= 1;
                    self.crashed += 1;
                    self.slots[tid].status = ThreadStatus::Crashed;
                    self.slots[tid].pending = None;
                    self.tracker.observe_retire(tid);
                    let step = self.step;
                    if self.should_emit() {
                        self.emit(EventRecord {
                            step,
                            thread: tid,
                            kind: EventKind::Crashed,
                        });
                    }
                    self.step += 1;
                }
                Decision::Schedule(tid) => {
                    assert!(
                        self.slots[tid].status == ThreadStatus::Runnable,
                        "scheduler bug: scheduling non-runnable thread {tid}"
                    );
                    let action = self.slots[tid]
                        .pending
                        .take()
                        .expect("runnable thread must have a pending action");
                    let step = self.step;
                    match action {
                        Action::Op { op, tag } => {
                            let result = self.memory.apply(&op);
                            self.tracker.observe(tid, step, tag);
                            if self.should_emit() {
                                self.emit(EventRecord {
                                    step,
                                    thread: tid,
                                    kind: EventKind::Op { op, tag, result },
                                });
                            }
                            self.slots[tid].last = Some(result);
                        }
                        Action::Local { tag } => {
                            self.tracker.observe(tid, step, tag);
                            if self.should_emit() {
                                self.emit(EventRecord {
                                    step,
                                    thread: tid,
                                    kind: EventKind::Local { tag },
                                });
                            }
                            self.slots[tid].last = None;
                        }
                        Action::Halt => unreachable!("Halt is never stored as pending"),
                    }
                    self.step += 1;
                    self.fill_pending(tid);
                }
            }
        };

        let halted = self
            .slots
            .iter()
            .filter(|s| s.status == ThreadStatus::Halted)
            .count();
        let contention = self.tracker.report();
        let fingerprint = fingerprint(self.step, &self.memory, self.trace.as_ref());
        ExecutionReport {
            steps: self.step,
            stop,
            halted,
            crashed: self.crashed,
            memory: self.memory,
            contention,
            trace: self.trace,
            fingerprint,
        }
    }

    /// Polls process `i` for its next declaration; handles halting.
    fn fill_pending(&mut self, i: ThreadId) {
        let slot = &mut self.slots[i];
        if slot.status != ThreadStatus::Runnable {
            return;
        }
        let last = slot.last.take();
        let mut ctx = ProcessCtx {
            last,
            rng: &mut slot.rng,
            step: self.step,
        };
        match slot.proc.poll(&mut ctx) {
            Action::Halt => {
                slot.status = ThreadStatus::Halted;
                slot.pending = None;
                self.tracker.observe_retire(i);
                if self.should_emit() {
                    self.emit(EventRecord {
                        step: self.step,
                        thread: i,
                        kind: EventKind::Halted,
                    });
                }
            }
            action => slot.pending = Some(action),
        }
    }
}

fn fingerprint(steps: Step, memory: &Memory, trace: Option<&Trace>) -> u64 {
    let mut h = DefaultHasher::new();
    steps.hash(&mut h);
    for f in memory.floats() {
        f.to_bits().hash(&mut h);
    }
    for c in memory.counters() {
        c.hash(&mut h);
    }
    if let Some(t) = trace {
        t.hash().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{CounterClaimer, FaaHammer};
    use crate::sched::{CrashAdversary, RandomScheduler, SerialScheduler, StepRoundRobin};

    #[test]
    fn two_hammers_sum_their_adds() {
        let report = Engine::builder()
            .memory(Memory::new(2, 0))
            .process(FaaHammer::new(0, 1.0, 5))
            .process(FaaHammer::new(1, 2.0, 5))
            .scheduler(StepRoundRobin::new())
            .seed(1)
            .build()
            .run();
        assert_eq!(report.stop, StopReason::AllDone);
        assert_eq!(report.memory.float(0), 5.0);
        assert_eq!(report.memory.float(1), 10.0);
        assert_eq!(report.steps, 10);
        assert_eq!(report.halted, 2);
        assert_eq!(report.crashed, 0);
    }

    #[test]
    fn counter_claims_are_partitioned_exactly() {
        // Three claimers share 10 slots: total claims = 10 regardless of
        // schedule, and the counter ends at 10 + 3 (each loser's final faa).
        let report = Engine::builder()
            .memory(Memory::new(0, 1))
            .process(CounterClaimer::new(0, 10))
            .process(CounterClaimer::new(0, 10))
            .process(CounterClaimer::new(0, 10))
            .scheduler(RandomScheduler::new(7))
            .seed(2)
            .build()
            .run();
        assert_eq!(report.stop, StopReason::AllDone);
        assert_eq!(report.memory.counter(0), 13);
        assert_eq!(
            report.contention.iterations(),
            0,
            "claimers never write the model"
        );
    }

    #[test]
    fn step_budget_stops_execution() {
        let report = Engine::builder()
            .memory(Memory::new(1, 0))
            .process(FaaHammer::new(0, 1.0, 1_000_000))
            .scheduler(SerialScheduler::new())
            .max_steps(100)
            .seed(3)
            .build()
            .run();
        assert_eq!(report.stop, StopReason::StepBudgetExhausted);
        assert_eq!(report.steps, 100);
        assert_eq!(report.memory.float(0), 100.0);
    }

    #[test]
    fn identical_seeds_produce_identical_fingerprints() {
        let run = |seed: u64| {
            Engine::builder()
                .memory(Memory::new(1, 1))
                .process(CounterClaimer::new(0, 20))
                .process(CounterClaimer::new(0, 20))
                .scheduler(RandomScheduler::new(99))
                .trace(TraceLevel::Events)
                .seed(seed)
                .build()
                .run()
        };
        assert_eq!(run(5).fingerprint, run(5).fingerprint);
        // Different scheduler seed ⇒ (almost surely) different interleaving.
        let other = Engine::builder()
            .memory(Memory::new(1, 1))
            .process(CounterClaimer::new(0, 20))
            .process(CounterClaimer::new(0, 20))
            .scheduler(RandomScheduler::new(100))
            .trace(TraceLevel::Events)
            .seed(5)
            .build()
            .run();
        assert_ne!(run(5).fingerprint, other.fingerprint);
    }

    #[test]
    fn crash_adversary_kills_thread_but_run_completes() {
        let report = Engine::builder()
            .memory(Memory::new(1, 0))
            .process(FaaHammer::new(0, 1.0, 50))
            .process(FaaHammer::new(0, 1.0, 50))
            .scheduler(CrashAdversary::new(StepRoundRobin::new(), vec![(10, 1)]))
            .seed(4)
            .build()
            .run();
        assert_eq!(report.crashed, 1);
        assert_eq!(report.halted, 1);
        assert_eq!(report.stop, StopReason::AllDone);
        // Thread 0 contributed all 50; thread 1 only its pre-crash adds.
        assert!(report.memory.float(0) >= 50.0);
        assert!(report.memory.float(0) < 100.0);
    }

    #[test]
    fn trace_records_every_step() {
        let report = Engine::builder()
            .memory(Memory::new(1, 0))
            .process(FaaHammer::new(0, 1.0, 3))
            .scheduler(SerialScheduler::new())
            .trace(TraceLevel::Events)
            .seed(0)
            .build()
            .run();
        let trace = report.trace.expect("trace requested");
        // 3 ops + 1 halt event.
        assert_eq!(trace.len(), 4);
        assert!(matches!(
            trace.events().last().unwrap().kind,
            EventKind::Halted
        ));
    }

    #[test]
    fn raised_stop_flag_cancels_before_the_first_step() {
        let flag = Arc::new(AtomicBool::new(true));
        let report = Engine::builder()
            .memory(Memory::new(1, 0))
            .process(FaaHammer::new(0, 1.0, 1_000))
            .scheduler(SerialScheduler::new())
            .stop_flag(Arc::clone(&flag))
            .seed(0)
            .build()
            .run();
        assert_eq!(report.stop, StopReason::Cancelled);
        assert_eq!(report.steps, 0);
        assert_eq!(report.memory.float(0), 0.0, "no op fired after cancel");
    }

    #[test]
    fn unraised_stop_flag_changes_nothing() {
        let run = |flag: Option<Arc<AtomicBool>>| {
            let mut b = Engine::builder()
                .memory(Memory::new(1, 0))
                .process(FaaHammer::new(0, 1.0, 25))
                .scheduler(SerialScheduler::new())
                .seed(9);
            if let Some(f) = flag {
                b = b.stop_flag(f);
            }
            b.build().run()
        };
        let plain = run(None);
        let flagged = run(Some(Arc::new(AtomicBool::new(false))));
        assert_eq!(plain.stop, StopReason::AllDone);
        assert_eq!(flagged.stop, StopReason::AllDone);
        assert_eq!(plain.fingerprint, flagged.fingerprint);
    }

    #[test]
    fn chained_observers_each_see_every_event() {
        use std::cell::Cell;
        use std::rc::Rc;
        let first = Rc::new(Cell::new(0_usize));
        let second = Rc::new(Cell::new(0_usize));
        let (f1, f2) = (Rc::clone(&first), Rc::clone(&second));
        let report = Engine::builder()
            .memory(Memory::new(1, 0))
            .process(FaaHammer::new(0, 1.0, 3))
            .scheduler(SerialScheduler::new())
            .observer(move |_| f1.set(f1.get() + 1))
            .observer(move |_| f2.set(f2.get() + 1))
            .seed(0)
            .build()
            .run();
        assert_eq!(report.stop, StopReason::AllDone);
        // 3 ops + 1 halt event, delivered to both observers.
        assert_eq!(first.get(), 4);
        assert_eq!(second.get(), first.get());
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn builder_requires_processes() {
        let _ = Engine::builder()
            .memory(Memory::new(1, 0))
            .scheduler(SerialScheduler::new())
            .build();
    }

    #[test]
    #[should_panic(expected = "memory is required")]
    fn builder_requires_memory() {
        let _ = Engine::builder()
            .process(FaaHammer::new(0, 1.0, 1))
            .scheduler(SerialScheduler::new())
            .build();
    }
}
