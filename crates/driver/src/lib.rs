//! Unified execution driver for asynchronous SGD — **the front door of the
//! workspace**.
//!
//! The paper (Alistarh, De Sa, Konstantinov; PODC 2018) is a comparison of
//! *one* SGD iteration across execution models: the sequential baseline, the
//! simulated asynchronous machine under adversarial schedulers, and native
//! lock-free runtimes. This crate makes that comparison a one-struct
//! operation:
//!
//! * [`RunSpec`] — one plain-data value describing a run: workload (by name,
//!   through the oracle registry), backend, threads, iteration budget,
//!   step-size schedule, success region, seed, scheduler/adversary;
//! * [`Backend`] — the execution-model abstraction, with seven
//!   implementations ([`BackendKind`]): `sequential`, `simulated-lockfree`,
//!   `simulated-fullsgd`, `hogwild`, `locked`, `guarded-epoch`,
//!   `native-fullsgd`;
//! * [`RunReport`] — the unified outcome every backend produces: hitting
//!   time, distances, wall time, contention statistics, optional strided
//!   [`TrajectorySample`]s, and (for deterministic backends) the execution
//!   fingerprint. Serialisable to and from JSON via the built-in codec
//!   ([`json`]), and additionally deriving `serde::{Serialize, Deserialize}`
//!   when the `serde` feature is enabled;
//! * [`session`] — runs as *jobs*: [`Driver::submit`] returns a
//!   [`RunHandle`] with `cancel()` / `wait()` / `try_report()`,
//!   [`Driver::run_many`] executes sweeps on a bounded worker pool, and a
//!   [`RunObserver`] streams typed [`RunEvent`]s (progress, trajectory
//!   samples) live from any backend. Runs can additionally carry a serving
//!   attachment ([`SessionCtx::serve`] with a [`ServeHook`]): the `hogwild`
//!   backend then exposes a live [`ModelReader`] and publishes coherent
//!   [`ModelSnapshot`]s at a stride, streamed as
//!   [`RunEvent::SnapshotPublished`] — the engine under the `asgd-serve`
//!   crate's `ModelService`;
//! * [`validation`] — the paper's formulas as an executable check: a
//!   [`ValidationPlan`] derives step sizes, horizons and epoch budgets from
//!   the theory crate, runs multi-seed sweeps across the backends, and
//!   produces a [`ValidationReport`] of bound-vs-measurement verdicts.
//!
//! # Example: one spec, several execution models
//!
//! ```
//! use asgd_driver::{run_spec, BackendKind, RunSpec, SchedulerSpec};
//! use asgd_oracle::OracleSpec;
//!
//! let spec = RunSpec::new(OracleSpec::new("noisy-quadratic", 2).sigma(0.1), BackendKind::Sequential)
//!     .threads(2)
//!     .iterations(500)
//!     .learning_rate(0.05)
//!     .x0(vec![1.0, -1.0])
//!     .success_radius_sq(0.05)
//!     .scheduler(SchedulerSpec::Serial)
//!     .seed(7);
//!
//! let sequential = run_spec(&spec).expect("valid spec");
//! let simulated = run_spec(&spec.clone().backend(BackendKind::SimulatedLockFree)).unwrap();
//! // Under the serial scheduler the simulator replays the sequential
//! // trajectory bit for bit:
//! assert_eq!(sequential.final_model, simulated.final_model);
//!
//! // And every report round-trips through JSON:
//! let json = simulated.to_json();
//! assert_eq!(asgd_driver::RunReport::from_json(&json).unwrap(), simulated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod error;
pub mod json;
pub mod report;
pub mod session;
pub mod spec;
pub mod trace;
pub mod validation;

pub use backend::{backend, run_simulated_lockfree_detailed, run_spec, run_spec_session, Backend};
pub use error::DriverError;
pub use report::{ContentionSummary, DecodeError, RunReport, TrajectorySample};
pub use session::{Driver, Progress, RunEvent, RunHandle, RunObserver, SessionCtx};
pub use trace::TraceObserver;
// Serving attachment types, re-exported so session consumers need only this
// crate: build a `ServeHook`, pass it via `SessionCtx::with_serve`, read the
// training model live through the attached `ModelReader`.
pub use asgd_hogwild::{ModelReader, ModelSnapshot, ServeHook, SnapshotCell};
pub use spec::{
    BackendKind, ModelLayoutSpec, PinSpec, RunSpec, SchedulerSpec, ShardsSpec, SparsePathSpec,
    StepSize, UpdateOrderSpec,
};
pub use validation::{
    validate, ValidationCell, ValidationCriterion, ValidationPlan, ValidationReport,
};

/// Compile-time proof the feature-gated serde derives actually emit impls
/// (CI builds `--features serde`, so a rotted attribute fails loudly). Only
/// the lifetime-free `Serialize` bound is asserted — it is spelled the same
/// against the offline stub and the real serde.
#[cfg(all(test, feature = "serde"))]
mod serde_feature_tests {
    fn assert_serialize<T: serde::Serialize>() {}

    #[test]
    fn spec_and_report_types_derive_serialize() {
        assert_serialize::<crate::RunSpec>();
        assert_serialize::<crate::RunReport>();
        assert_serialize::<crate::TrajectorySample>();
        assert_serialize::<crate::ContentionSummary>();
        assert_serialize::<crate::BackendKind>();
        assert_serialize::<crate::StepSize>();
        assert_serialize::<crate::SchedulerSpec>();
        assert_serialize::<asgd_oracle::OracleSpec>();
    }
}
