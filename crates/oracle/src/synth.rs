//! Synthetic dataset generation.
//!
//! The paper's motivating setting (§1) is empirical risk minimisation over a
//! dataset `X_1, …, X_m` with per-point losses. These generators produce the
//! regression and classification datasets the workloads train on, with
//! Gaussian features and configurable label noise, fully determined by a
//! seed.

use asgd_math::gaussian::standard_normal;
use asgd_math::rng::SeedSequence;
use rand::Rng;

/// A regression dataset: features `a_i ∈ R^d` with targets `b_i ∈ R`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionData {
    /// Row-major features, `m` rows of length `d`.
    pub features: Vec<Vec<f64>>,
    /// Targets, length `m`.
    pub targets: Vec<f64>,
    /// The ground-truth parameter vector used to generate targets.
    pub ground_truth: Vec<f64>,
}

impl RegressionData {
    /// Number of samples `m`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True if the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Feature dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.ground_truth.len()
    }
}

/// A binary-classification dataset: features with labels in `{−1, +1}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationData {
    /// Row-major features, `m` rows of length `d`.
    pub features: Vec<Vec<f64>>,
    /// Labels in `{−1.0, +1.0}`, length `m`.
    pub labels: Vec<f64>,
    /// The separating direction used to generate labels.
    pub ground_truth: Vec<f64>,
}

impl ClassificationData {
    /// Number of samples `m`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.ground_truth.len()
    }
}

/// Generates a linear-regression dataset `b_i = a_iᵀ·x_true + η_i` with
/// `a_i ~ N(0, I)` and `η_i ~ N(0, noise²)`.
///
/// # Panics
///
/// Panics if `m == 0` or `d == 0`, or if `noise` is negative or non-finite.
#[must_use]
pub fn regression(m: usize, d: usize, noise: f64, seed: u64) -> RegressionData {
    assert!(m > 0 && d > 0, "dataset must be non-empty");
    assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
    let seq = SeedSequence::new(seed);
    let mut rng = seq.child_rng(0);
    let ground_truth: Vec<f64> = (0..d)
        .map(|_| 2.0 * rng.gen::<f64>() - 1.0) // uniform in [-1, 1]
        .collect();
    let mut features = Vec::with_capacity(m);
    let mut targets = Vec::with_capacity(m);
    let mut data_rng = seq.child_rng(1);
    for _ in 0..m {
        let a: Vec<f64> = (0..d).map(|_| standard_normal(&mut data_rng)).collect();
        let b = asgd_math::vec::dot(&a, &ground_truth) + noise * standard_normal(&mut data_rng);
        features.push(a);
        targets.push(b);
    }
    RegressionData {
        features,
        targets,
        ground_truth,
    }
}

/// Generates a linearly-separable-with-noise classification dataset:
/// `y_i = sign(a_iᵀ·w + η_i)` with `a_i ~ N(0, I)`, `η_i ~ N(0, noise²)`.
///
/// # Panics
///
/// Panics if `m == 0` or `d == 0`, or if `noise` is negative or non-finite.
#[must_use]
pub fn classification(m: usize, d: usize, noise: f64, seed: u64) -> ClassificationData {
    assert!(m > 0 && d > 0, "dataset must be non-empty");
    assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
    let seq = SeedSequence::new(seed ^ 0xC1A5_51F1);
    let mut rng = seq.child_rng(0);
    let mut ground_truth: Vec<f64> = (0..d).map(|_| standard_normal(&mut rng)).collect();
    let norm = asgd_math::vec::l2_norm(&ground_truth).max(1e-12);
    asgd_math::vec::scale(&mut ground_truth, 1.0 / norm);
    let mut features = Vec::with_capacity(m);
    let mut labels = Vec::with_capacity(m);
    let mut data_rng = seq.child_rng(1);
    for _ in 0..m {
        let a: Vec<f64> = (0..d).map(|_| standard_normal(&mut data_rng)).collect();
        let margin =
            asgd_math::vec::dot(&a, &ground_truth) + noise * standard_normal(&mut data_rng);
        labels.push(if margin >= 0.0 { 1.0 } else { -1.0 });
        features.push(a);
    }
    ClassificationData {
        features,
        labels,
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_shapes_and_determinism() {
        let a = regression(50, 4, 0.1, 9);
        assert_eq!(a.len(), 50);
        assert!(!a.is_empty());
        assert_eq!(a.dimension(), 4);
        assert_eq!(a.features.len(), 50);
        assert!(a.features.iter().all(|f| f.len() == 4));
        let b = regression(50, 4, 0.1, 9);
        assert_eq!(a, b, "same seed reproduces dataset");
        let c = regression(50, 4, 0.1, 10);
        assert_ne!(a, c, "different seed differs");
    }

    #[test]
    fn noiseless_regression_targets_are_exact() {
        let data = regression(20, 3, 0.0, 4);
        for (a, &b) in data.features.iter().zip(&data.targets) {
            let pred = asgd_math::vec::dot(a, &data.ground_truth);
            assert!((pred - b).abs() < 1e-12);
        }
    }

    #[test]
    fn classification_labels_are_signs() {
        let data = classification(100, 5, 0.2, 3);
        assert_eq!(data.len(), 100);
        assert_eq!(data.dimension(), 5);
        assert!(data.labels.iter().all(|&y| y == 1.0 || y == -1.0));
        // Both classes should be represented for Gaussian features.
        assert!(data.labels.contains(&1.0));
        assert!(data.labels.contains(&-1.0));
    }

    #[test]
    fn noiseless_classification_is_consistent_with_ground_truth() {
        let data = classification(100, 4, 0.0, 8);
        for (a, &y) in data.features.iter().zip(&data.labels) {
            let margin = asgd_math::vec::dot(a, &data.ground_truth);
            assert!(y * margin >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_panics() {
        let _ = regression(0, 3, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "noise must be >= 0")]
    fn negative_noise_panics() {
        let _ = classification(10, 2, -0.5, 1);
    }
}
