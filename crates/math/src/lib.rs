//! Numeric building blocks shared across the `asyncsgd` workspace.
//!
//! This crate is deliberately small and dependency-light. It provides:
//!
//! * [`vec`](mod@vec) — dense `f64` vector kernels (the model `x ∈ R^d` of the paper is a
//!   dense vector; every algorithm crate manipulates it through these kernels),
//! * [`gaussian`] — Box–Muller standard-normal sampling (the §5 lower-bound
//!   construction needs Gaussian gradient noise; `rand_distr` is outside the
//!   sanctioned dependency set so we implement the transform directly),
//! * [`stats`] — online mean/variance, Wilson confidence intervals for the
//!   failure-probability estimates `P̂(F_T)`, and log–log slope fitting used to
//!   verify the `√(τ_max n)` scaling law,
//! * [`plog`](mod@plog) — the paper's piecewise logarithm (Lemma 6.6),
//! * [`rng`] — deterministic seed fan-out so that every simulated thread gets an
//!   independent, reproducible stream of coins.
//!
//! # Example
//!
//! ```
//! use asgd_math::vec::{axpy, l2_norm};
//!
//! let mut x = vec![1.0, 2.0];
//! let g = vec![0.5, 0.5];
//! axpy(&mut x, -0.1, &g); // x ← x − 0.1·g, one SGD step
//! assert!(l2_norm(&x) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gaussian;
pub mod plog;
pub mod rng;
pub mod stats;
pub mod vec;

pub use gaussian::Normal;
pub use plog::plog;
pub use stats::{LogLogFit, OnlineStats, WilsonInterval};
