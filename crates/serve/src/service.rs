//! [`ModelService`] — a training run owned as a job, served while it runs.

use crate::error::ServeError;
use asgd_driver::{
    BackendKind, Driver, DriverError, ModelReader, RunHandle, RunObserver, RunReport, RunSpec,
    ServeHook, SessionCtx,
};
use asgd_hogwild::snapshot::lock_recovered;
use asgd_oracle::GradientOracle;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long [`ModelService::start`] waits for the executor to expose its
/// reader before giving up. Attachment happens before the first worker
/// thread spawns, so in practice this is bounded by thread start-up, not by
/// training.
const ATTACH_TIMEOUT: Duration = Duration::from_secs(10);

/// An online model service: owns one training run (submitted through
/// [`Driver::submit_with`]) and hands out [`ModelReader`]s into its live
/// shared model — the serving counterpart of the paper's claim that the
/// iterate stays useful under concurrent mutation.
///
/// The service outlives the run: after training finishes (or is cancelled),
/// live reads see the quiescent final model exactly and the last published
/// snapshot reflects the reported final state. Reads are pure observation —
/// an attached service never perturbs the training trajectory (tested
/// bit-for-bit against an unserved run in `tests/serving.rs`).
pub struct ModelService {
    hook: Arc<ServeHook>,
    reader: ModelReader,
    oracle: Arc<dyn GradientOracle>,
    handle: Mutex<Option<RunHandle>>,
    outcome: Mutex<Option<Result<RunReport, DriverError>>>,
    /// Serialises [`ModelService::wait`] callers: the first blocks on the
    /// run, later concurrent ones park here (instead of spinning) and then
    /// read the cached outcome.
    wait_gate: Mutex<()>,
}

impl std::fmt::Debug for ModelService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelService")
            .field("dimension", &self.reader.dimension())
            .field("publish_stride", &self.hook.publish_stride())
            .field("finished", &self.is_finished())
            .finish_non_exhaustive()
    }
}

impl ModelService {
    /// Starts `train` as a background job and waits for its reader.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnsupportedBackend`] unless the spec selects
    /// the `hogwild` backend, [`ServeError::Driver`] when the spec is
    /// invalid or the run fails before attaching, and
    /// [`ServeError::AttachTimeout`] if no reader appears.
    pub fn start(train: &RunSpec, publish_stride: u64) -> Result<Self, ServeError> {
        Self::start_observed(train, publish_stride, None)
    }

    /// Like [`ModelService::start`], with a session observer attached: it
    /// receives the usual run events plus
    /// [`RunEvent::SnapshotPublished`](asgd_driver::RunEvent) for every
    /// publication.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelService::start`].
    pub fn start_observed(
        train: &RunSpec,
        publish_stride: u64,
        observer: Option<Arc<dyn RunObserver>>,
    ) -> Result<Self, ServeError> {
        Self::start_on(&Driver::new(), train, publish_stride, observer)
    }

    /// Like [`ModelService::start_observed`], submitting the training run
    /// through the caller's [`Driver`] instead of a private one — the
    /// multi-tenant entry point: a
    /// [`ModelRegistry`](crate::registry::ModelRegistry) starts every
    /// hosted model through one shared driver, so concurrent training runs
    /// share its session plumbing rather than each spinning up their own.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelService::start`].
    pub fn start_on(
        driver: &Driver,
        train: &RunSpec,
        publish_stride: u64,
        observer: Option<Arc<dyn RunObserver>>,
    ) -> Result<Self, ServeError> {
        Self::start_with_oracle(driver, train, publish_stride, observer, None)
    }

    /// Like [`ModelService::start_on`], training against `train_oracle`
    /// instead of building one from `train.oracle` — the continual-learning
    /// entry point: a [`StreamingOracle`](asgd_oracle::StreamingOracle) fed
    /// by a live ingress queue replaces the spec-built workload, while
    /// predict queries still evaluate against a held-out instance built
    /// from the spec (the streaming prior), so query evaluation never
    /// contends on — or consumes from — the trainer's oracle.
    ///
    /// The override's dimension must match `train.oracle.dim`; the driver
    /// rejects the session otherwise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelService::start`].
    pub fn start_with_oracle(
        driver: &Driver,
        train: &RunSpec,
        publish_stride: u64,
        observer: Option<Arc<dyn RunObserver>>,
        train_oracle: Option<Arc<dyn GradientOracle>>,
    ) -> Result<Self, ServeError> {
        if train.backend != BackendKind::Hogwild {
            return Err(ServeError::UnsupportedBackend(train.backend));
        }
        // A held-out oracle instance for predict queries: same spec, same
        // synthetic dataset, its own allocation — query evaluation must
        // never contend on the trainer's oracle state.
        let oracle = train.oracle.build().map_err(DriverError::from)?;
        let hook = Arc::new(ServeHook::new(publish_stride));
        let ctx = SessionCtx {
            observer,
            cancel: None,
            serve: Some(Arc::clone(&hook)),
            oracle: train_oracle,
        };
        let handle = driver.submit_with(train.clone(), ctx);
        let deadline = Instant::now() + ATTACH_TIMEOUT;
        let reader = loop {
            if let Some(reader) = hook.wait_reader(Duration::from_millis(20)) {
                break reader;
            }
            if let Some(result) = handle.try_report() {
                // The run ended before we saw a reader: surface its error,
                // or — if it attached while finishing — use the reader.
                match (hook.reader(), result) {
                    (Some(reader), _) => break reader,
                    (None, Err(e)) => return Err(ServeError::Driver(e)),
                    (None, Ok(_)) => return Err(ServeError::AttachTimeout),
                }
            }
            if Instant::now() >= deadline {
                return Err(ServeError::AttachTimeout);
            }
        };
        Ok(Self {
            hook,
            reader,
            oracle,
            handle: Mutex::new(Some(handle)),
            outcome: Mutex::new(None),
            wait_gate: Mutex::new(()),
        })
    }

    /// A cloneable reader into the live model (valid past the run's end).
    #[must_use]
    pub fn reader(&self) -> ModelReader {
        self.reader.clone()
    }

    /// The serving hook (publication stride, listener installation).
    #[must_use]
    pub fn hook(&self) -> &Arc<ServeHook> {
        &self.hook
    }

    /// The held-out oracle instance predict queries evaluate against.
    #[must_use]
    pub fn oracle(&self) -> &Arc<dyn GradientOracle> {
        &self.oracle
    }

    /// Model dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.reader.dimension()
    }

    /// Current snapshot staleness: training iterations claimed since the
    /// latest publication (`None` before the first publication).
    #[must_use]
    pub fn staleness(&self) -> Option<u64> {
        let (_, published_at) = self.reader.snapshot_tag()?;
        Some(self.reader.iterations().saturating_sub(published_at))
    }

    /// True once the training run has finished (normally or cancelled).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        if lock_recovered(&self.outcome).is_some() {
            return true;
        }
        lock_recovered(&self.handle)
            .as_ref()
            .is_none_or(RunHandle::is_finished)
    }

    /// Requests cancellation of the training run (idempotent; a no-op once
    /// the run finished). Serving keeps working: the executor publishes the
    /// final state before returning.
    pub fn cancel(&self) {
        if let Some(handle) = &*lock_recovered(&self.handle) {
            handle.cancel();
        }
    }

    /// Blocks until the training run finishes and returns its report
    /// (cached — repeat calls return the same outcome).
    ///
    /// # Errors
    ///
    /// Whatever the run itself returns; cancellation is not an error.
    pub fn wait(&self) -> Result<RunReport, DriverError> {
        // The gate makes concurrent waiters block (parked, not spinning)
        // until the first caller's handle.wait() has cached the outcome.
        let _gate = lock_recovered(&self.wait_gate);
        if let Some(outcome) = &*lock_recovered(&self.outcome) {
            return outcome.clone();
        }
        let handle = lock_recovered(&self.handle)
            .take()
            .expect("the gate serialises waiters: no handle implies a cached outcome");
        let outcome = handle.wait();
        *lock_recovered(&self.outcome) = Some(outcome.clone());
        outcome
    }

    /// Cancels the training run and waits for its (partial) report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelService::wait`].
    pub fn stop(&self) -> Result<RunReport, DriverError> {
        self.cancel();
        self.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::OracleSpec;

    fn train_spec() -> RunSpec {
        RunSpec::new(
            OracleSpec::new("noisy-quadratic", 4).sigma(0.1),
            BackendKind::Hogwild,
        )
        .threads(2)
        .iterations(30_000)
        .learning_rate(0.02)
        .x0(vec![1.0, -1.0, 0.5, -0.5])
        .seed(11)
    }

    #[test]
    fn rejects_non_hogwild_backends() {
        let spec = train_spec().backend(BackendKind::Sequential);
        match ModelService::start(&spec, 64) {
            Err(ServeError::UnsupportedBackend(BackendKind::Sequential)) => {}
            other => panic!("expected UnsupportedBackend, got {other:?}"),
        }
    }

    #[test]
    fn invalid_train_specs_surface_as_driver_errors() {
        let mut spec = train_spec();
        spec.oracle.kind = "no-such-oracle".to_string();
        match ModelService::start(&spec, 64) {
            Err(ServeError::Driver(DriverError::Oracle(_))) => {}
            other => panic!("expected Driver(Oracle), got {other:?}"),
        }
        let spec = train_spec().threads(0);
        assert!(matches!(
            ModelService::start(&spec, 64),
            Err(ServeError::Driver(DriverError::InvalidSpec(_)))
        ));
    }

    #[test]
    fn serves_reads_while_training_then_quiesces() {
        let service = ModelService::start(&train_spec(), 128).expect("starts");
        assert_eq!(service.dimension(), 4);
        let reader = service.reader();
        // Live reads work immediately; snapshots appear once claim 0
        // publishes.
        let mut live = vec![0.0; 4];
        reader.read_live(&mut live);
        assert!(live.iter().all(|v| v.is_finite()));
        let report = service.wait().expect("run completes");
        assert_eq!(report.iterations, 30_000);
        // Quiescent: live reads now equal the reported final model exactly.
        reader.read_live(&mut live);
        assert_eq!(live, report.final_model);
        // The final snapshot reflects the final state, at full iteration
        // count, and staleness is zero.
        let snap = reader.snapshot().expect("final publication");
        assert_eq!(snap.values, report.final_model);
        assert_eq!(snap.iteration, 30_000);
        assert_eq!(service.staleness(), Some(0));
        assert!(service.is_finished());
        // Repeat waits return the cached outcome.
        assert_eq!(service.wait().unwrap(), report);
        let _ = format!("{service:?}");
    }

    #[test]
    fn cancel_stops_training_and_leaves_the_service_readable() {
        let spec = train_spec().iterations(u64::MAX / 2);
        let service = ModelService::start(&spec, 256).expect("starts");
        assert!(!service.is_finished());
        let report = service.stop().expect("cancelled runs report Ok");
        assert_eq!(report.stop.as_deref(), Some("cancelled"));
        let snap = service.reader().snapshot().expect("final publication");
        assert_eq!(snap.values, report.final_model);
        // Tags are monotone: a strided tag published just before the cancel
        // may count claims that aborted, so the final tag can exceed the
        // executed count by at most the thread count.
        assert!(
            snap.iteration >= report.iterations && snap.iteration <= report.iterations + 2,
            "final tag {} vs executed {}",
            snap.iteration,
            report.iterations
        );
    }
}
