//! Query execution and the closed-loop/fixed-rate traffic harness.

use crate::error::ServeError;
use crate::report::{LatencySummary, ServeReport, StalenessSummary};
use crate::service::ModelService;
use crate::spec::{Arrival, QueryKind, ReadMode, ServeSpec};
use asgd_driver::ModelReader;
use asgd_math::rng::SeedSequence;
use asgd_metrics::Histogram;
use asgd_oracle::GradientOracle;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The answer to one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutcome {
    /// The computed value (score, objective, or fetched parameter).
    pub value: f64,
    /// Snapshot staleness at query time — training iterations claimed since
    /// the snapshot this query read was published. `None` for live reads
    /// (they have no publication lag) and for snapshot reads that had to
    /// fall back to a live scan before the first publication.
    pub staleness: Option<u64>,
}

/// One client's query engine: owns its RNG stream, its scratch buffers and
/// (in snapshot mode) a version-cached copy of the latest snapshot, so the
/// steady-state query path allocates nothing.
pub struct QueryClient {
    reader: ModelReader,
    oracle: Arc<dyn GradientOracle>,
    mode: ReadMode,
    kind: QueryKind,
    probe_len: usize,
    rng: StdRng,
    /// Cached snapshot (snapshot mode): refreshed only when the published
    /// version moves, so consecutive queries between publications cost
    /// O(query), not O(d).
    snap: Vec<f64>,
    snap_tag: Option<(u64, u64)>,
    /// Full-view scratch for live predict reads (and snapshot fallback).
    live: Vec<f64>,
}

impl std::fmt::Debug for QueryClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryClient")
            .field("mode", &self.mode)
            .field("kind", &self.kind)
            .field("probe_len", &self.probe_len)
            .finish_non_exhaustive()
    }
}

impl QueryClient {
    /// A client for `service`, drawing its coins from `seed`.
    #[must_use]
    pub fn new(service: &ModelService, spec: &ServeSpec, seed: u64) -> Self {
        Self::from_parts(
            service.reader(),
            Arc::clone(service.oracle()),
            spec.mode,
            spec.query,
            spec.probe_len,
            seed,
        )
    }

    /// Assembles a client from its parts (the reader may outlive the
    /// service).
    #[must_use]
    pub fn from_parts(
        reader: ModelReader,
        oracle: Arc<dyn GradientOracle>,
        mode: ReadMode,
        kind: QueryKind,
        probe_len: usize,
        seed: u64,
    ) -> Self {
        let d = reader.dimension();
        Self {
            reader,
            oracle,
            mode,
            kind,
            probe_len: probe_len.clamp(1, d.max(1)),
            rng: SeedSequence::new(seed).child_rng(0),
            snap: Vec::new(),
            snap_tag: None,
            live: vec![0.0; d],
        }
    }

    /// Refreshes the cached snapshot if a newer version was published.
    /// Returns `false` when nothing has been published yet.
    fn refresh_snapshot(&mut self) -> bool {
        let current = self.reader.snapshot_version();
        if current == 0 {
            return false;
        }
        if self.snap_tag.is_none_or(|(version, _)| version != current) {
            self.snap_tag = self.reader.snapshot_into(&mut self.snap);
        }
        self.snap_tag.is_some()
    }

    /// Staleness of the cached snapshot at this instant.
    fn staleness(&self) -> Option<u64> {
        let (_, published_at) = self.snap_tag?;
        Some(self.reader.iterations().saturating_sub(published_at))
    }

    /// Executes one query against the service's model.
    pub fn query(&mut self) -> QueryOutcome {
        let d = self.reader.dimension();
        match self.kind {
            QueryKind::Fetch => {
                let j = (self.rng.next_u64() % d as u64) as usize;
                match self.mode {
                    ReadMode::Live => QueryOutcome {
                        value: self.reader.read_entry(j),
                        staleness: None,
                    },
                    ReadMode::Snapshot => {
                        if self.refresh_snapshot() {
                            QueryOutcome {
                                value: self.snap[j],
                                staleness: self.staleness(),
                            }
                        } else {
                            QueryOutcome {
                                value: self.reader.read_entry(j),
                                staleness: None,
                            }
                        }
                    }
                }
            }
            QueryKind::DotScore => {
                let use_snapshot = self.mode == ReadMode::Snapshot && self.refresh_snapshot();
                let mut score = 0.0;
                for _ in 0..self.probe_len {
                    let j = (self.rng.next_u64() % d as u64) as usize;
                    let weight = self.rng.gen_range(-1.0..1.0);
                    let xj = if use_snapshot {
                        self.snap[j]
                    } else {
                        self.reader.read_entry(j)
                    };
                    score += weight * xj;
                }
                QueryOutcome {
                    value: score,
                    staleness: use_snapshot.then(|| self.staleness()).flatten(),
                }
            }
            QueryKind::Predict => {
                let use_snapshot = self.mode == ReadMode::Snapshot && self.refresh_snapshot();
                let value = if use_snapshot {
                    self.oracle.objective(&self.snap)
                } else {
                    self.reader.read_live(&mut self.live);
                    self.oracle.objective(&self.live)
                };
                QueryOutcome {
                    value,
                    staleness: use_snapshot.then(|| self.staleness()).flatten(),
                }
            }
        }
    }
}

/// Per-client telemetry folded into the final [`ServeReport`].
struct ClientStats {
    latency_ns: Histogram,
    staleness: Histogram,
    queries: u64,
}

/// Drives `spec.clients` concurrent clients against `service` for the
/// serving window, then stops the training run and folds everything into a
/// [`ServeReport`].
///
/// Closed-loop clients re-query immediately; fixed-rate clients follow a
/// tick schedule. Latency is measured per query (request start → value
/// computed); staleness per snapshot-mode query. When the window closes, a
/// still-running training run is cancelled (its report then carries
/// `stop: "cancelled"` and the executed iteration count) — a run that ended
/// earlier on its own keeps its natural report, and the quiescent model
/// keeps serving for the remainder of the window.
///
/// # Errors
///
/// Returns [`ServeError::InvalidSpec`]/[`ServeError::UnsupportedBackend`]
/// for unexecutable specs and [`ServeError::Driver`] when the training run
/// fails.
pub fn run_workload(service: &ModelService, spec: &ServeSpec) -> Result<ServeReport, ServeError> {
    spec.validate()?;
    let window = Duration::from_secs_f64(spec.duration_secs);
    let seeds = SeedSequence::new(spec.serve_seed);
    let started = Instant::now();
    let deadline = started + window;
    let stats: Vec<ClientStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|client_id| {
                let mut client =
                    QueryClient::new(service, spec, seeds.child_seed(client_id as u64));
                let interval = match spec.arrival {
                    Arrival::ClosedLoop => None,
                    Arrival::FixedRate { qps } => Some(Duration::from_secs_f64(1.0 / qps)),
                };
                scope.spawn(move || {
                    let mut stats = ClientStats {
                        latency_ns: Histogram::new(),
                        staleness: Histogram::new(),
                        queries: 0,
                    };
                    let mut next_tick = Instant::now();
                    loop {
                        let now = Instant::now();
                        if now >= deadline {
                            return stats;
                        }
                        if let Some(interval) = interval {
                            if now < next_tick {
                                std::thread::sleep((next_tick - now).min(deadline - now));
                                continue;
                            }
                            // Fixed schedule; when behind, fire immediately
                            // without accumulating a backlog.
                            next_tick = next_tick.max(now) + interval;
                        }
                        let issued = Instant::now();
                        let outcome = client.query();
                        let latency = issued.elapsed();
                        stats
                            .latency_ns
                            .push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                        if let Some(staleness) = outcome.staleness {
                            stats.staleness.push(staleness);
                        }
                        stats.queries += 1;
                        // Keep the computed value observable in release
                        // builds: without this, snapshot-mode scoring
                        // (plain Vec reads, no side effects) could be
                        // dead-code-eliminated out of the measured path.
                        std::hint::black_box(outcome.value);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let served_secs = started.elapsed().as_secs_f64();
    let train = service.stop()?;

    let mut latency_ns = Histogram::new();
    let mut staleness = Histogram::new();
    let mut queries = 0;
    for s in &stats {
        latency_ns.merge(&s.latency_ns);
        staleness.merge(&s.staleness);
        queries += s.queries;
    }
    Ok(ServeReport {
        mode: spec.mode.label().to_string(),
        query: spec.query.label().to_string(),
        arrival: spec.arrival.label(),
        clients: spec.clients,
        // The stride the *run* actually used (the service may have been
        // started with a different one than the spec carries — e.g.
        // `ServeSpec::run` disables strided publication for live reads).
        publish_stride: service.hook().publish_stride(),
        duration_secs: served_secs,
        queries,
        qps: if served_secs > 0.0 {
            queries as f64 / served_secs
        } else {
            f64::INFINITY
        },
        latency: LatencySummary::from_histogram(&latency_ns),
        staleness: StalenessSummary::from_histogram(&staleness),
        snapshots: service.reader().snapshot_version(),
        train,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_driver::{BackendKind, RunSpec};
    use asgd_oracle::OracleSpec;

    fn serve_spec() -> ServeSpec {
        let train = RunSpec::new(
            OracleSpec::new("sparse-quadratic", 64).sigma(0.0),
            BackendKind::Hogwild,
        )
        .threads(1)
        .iterations(200_000)
        .learning_rate(0.002)
        .x0(vec![1.0; 64])
        .seed(5);
        ServeSpec::new(train)
            .clients(2)
            .duration_secs(0.15)
            .publish_every(500)
            .serve_seed(77)
    }

    #[test]
    fn every_query_kind_runs_in_both_modes() {
        for kind in QueryKind::all() {
            for mode in ReadMode::all() {
                let spec = serve_spec().query(*kind).mode(*mode).duration_secs(0.05);
                let report = spec.run().unwrap_or_else(|e| panic!("{kind}/{mode}: {e}"));
                assert!(report.queries > 0, "{kind}/{mode}: no queries ran");
                assert_eq!(report.latency.count, report.queries);
                assert!(report.qps > 0.0);
                assert_eq!(report.mode, mode.label());
                assert_eq!(report.query, kind.label());
                match mode {
                    ReadMode::Live => assert!(
                        report.staleness.is_none(),
                        "{kind}: live reads have no staleness"
                    ),
                    ReadMode::Snapshot => {
                        // Publications start at claim 0; at most the first
                        // few queries fall back to live reads.
                        let s = report
                            .staleness
                            .as_ref()
                            .unwrap_or_else(|| panic!("{kind}: snapshot staleness missing"));
                        assert!(s.samples > 0);
                        // Progress counts claims issued; a cancelled run's
                        // executed count can trail by one per trainer.
                        assert!(s.max <= report.train.iterations + 1);
                    }
                }
                assert!(report.snapshots >= 1, "final publication always lands");
            }
        }
    }

    #[test]
    fn fixed_rate_arrival_throttles_throughput() {
        let spec = serve_spec()
            .query(QueryKind::Fetch)
            .arrival(Arrival::FixedRate { qps: 100.0 })
            .clients(1)
            .duration_secs(0.2);
        let report = spec.run().expect("runs");
        // 100 qps over 0.2 s ≈ 20 queries; allow generous scheduling slop
        // but rule out closed-loop rates (tens of thousands).
        assert!(
            report.queries <= 60,
            "fixed rate did not throttle: {} queries",
            report.queries
        );
    }

    #[test]
    fn workload_over_a_finished_run_serves_the_quiescent_model() {
        // Training completes long before the window opens; every query then
        // reads the same final state.
        let mut spec = serve_spec().query(QueryKind::Fetch).duration_secs(0.05);
        spec.train = spec.train.iterations(1_000);
        let service = ModelService::start(&spec.train, spec.publish_stride).expect("starts");
        let finished = service.wait().expect("completes");
        let report = run_workload(&service, &spec).expect("serves");
        assert!(report.queries > 0);
        assert_eq!(report.train, finished, "stop() keeps the natural report");
        // All snapshot queries see the final iteration: staleness 0.
        if let Some(s) = &report.staleness {
            assert_eq!(s.max, 0);
        }
    }

    #[test]
    fn client_outcomes_are_deterministic_given_seed_and_quiescent_model() {
        let mut spec = serve_spec();
        spec.train = spec.train.iterations(500);
        let service = ModelService::start(&spec.train, spec.publish_stride).expect("starts");
        let _ = service.wait().expect("completes");
        let run = |seed| {
            let mut client = QueryClient::new(&service, &spec, seed);
            (0..32).map(|_| client.query().value).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1), "same seed, same quiescent answers");
        assert_ne!(run(1), run(2), "distinct seeds draw distinct probes");
    }
}
