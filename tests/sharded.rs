//! The sharded parameter store's correctness contract:
//!
//! 1. Routing — every boundary index (first and last entry of every shard,
//!    ragged tails included) routes to the shard whose range contains it,
//!    and the shard ranges are a contiguous partition of `0..d`.
//! 2. Store equivalence — a `ShardedModel` (one shard or many) performs the
//!    exact same per-entry atomic operations as the flat `SharedModel`, so
//!    disjoint deterministic update streams land *bit-identically* at every
//!    thread count.
//! 3. The PR-1 cross-backend invariant (sequential ≡ simulated-serial ≡
//!    1-thread hogwild) holds with the sharded store underneath the native
//!    backend, on the dense and the sparse path, and a 1-thread run is
//!    bit-identical flat vs sharded (identical claim schedule).
//! 4. Property: for random dimensions, shard counts and adversarial ragged
//!    partitions, a serial op stream through the sharded store matches the
//!    flat store bit for bit, and the per-shard update counters account for
//!    exactly the ops routed into each range.

use asyncsgd::prelude::*;
use proptest::prelude::*;

#[test]
fn routing_covers_every_boundary_index() {
    // Pow2-eligible, ragged, prime, shards > d (clamped), single-shard.
    for (d, shards) in [
        (64, 4),
        (65, 4),
        (10, 3),
        (97, 8),
        (7, 16),
        (1, 1),
        (1024, 6),
    ] {
        let router = ShardRouter::balanced(d, shards);
        let n = router.shard_count();
        assert!(
            n >= 1 && n <= d.min(shards),
            "balanced({d},{shards}) -> {n}"
        );
        // The ranges are a contiguous partition of 0..d.
        let mut at = 0;
        for s in 0..n {
            let range = router.range(s);
            assert_eq!(range.start, at, "d={d} shards={shards} shard {s}");
            assert!(!range.is_empty(), "empty shard {s} (d={d} shards={shards})");
            at = range.end;
            // First and last index of the shard route back to (s, offset).
            assert_eq!(router.route(range.start), (s, 0));
            assert_eq!(router.route(range.end - 1), (s, range.len() - 1));
            // The entry just past the boundary belongs to the next shard.
            if range.end < d {
                assert_eq!(router.route(range.end), (s + 1, 0));
            }
        }
        assert_eq!(at, d, "ranges must cover the full dimension");
    }
}

/// Applies a deterministic per-thread update stream (thread `t` owns the
/// indices `j ≡ t (mod threads)`) so each entry sees a fixed sequence of
/// `fetch&add`s regardless of interleaving — the final state is then a
/// function of the streams alone, and must be bitwise equal across stores.
fn run_disjoint_streams(store: &(dyn Fn(usize, f64) -> f64 + Sync), d: usize, threads: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = &store;
            scope.spawn(move || {
                for step in 0..50 {
                    let mut j = t;
                    while j < d {
                        store(j, 0.5 + (j as f64) * 0.125 + (step as f64) * 0.0625);
                        j += threads;
                    }
                }
            });
        }
    });
}

#[test]
fn one_shard_and_many_shard_stores_match_flat_bit_for_bit_at_every_thread_count() {
    let d = 96;
    let x0: Vec<f64> = (0..d).map(|j| (j as f64) * 0.25 - 8.0).collect();
    for threads in [1, 2, 4, 8] {
        let flat = SharedModel::new(&x0);
        let one = ShardedModel::with_options(&x0, 1, UpdateOrder::SeqCst);
        let many = ShardedModel::with_options(&x0, 6, UpdateOrder::SeqCst);
        run_disjoint_streams(&|j, delta| flat.fetch_add(j, delta), d, threads);
        run_disjoint_streams(&|j, delta| one.fetch_add(j, delta), d, threads);
        run_disjoint_streams(&|j, delta| many.fetch_add(j, delta), d, threads);
        let reference = flat.snapshot();
        for (name, store) in [("one-shard", &one), ("six-shard", &many)] {
            assert_eq!(store.snapshot().len(), d);
            for (j, (a, b)) in reference.iter().zip(store.snapshot()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "threads={threads} {name}: entry {j}: flat {a} vs {b}"
                );
            }
        }
        assert_eq!(one.shard_count(), 1);
        assert_eq!(many.shard_count(), 6, "d = 96 chunks into 6 × 16");
        assert_eq!(one.total_updates(), 50 * d as u64);
        assert_eq!(many.total_updates(), 50 * d as u64);
    }
}

fn sharded_spec(sparse: SparsePathSpec, shards: ShardsSpec) -> RunSpec {
    RunSpec::new(
        OracleSpec::new("sparse-quadratic", 32).sigma(0.3),
        BackendKind::Hogwild,
    )
    .threads(1)
    .iterations(3_000)
    .learning_rate(0.01)
    .x0(vec![1.0; 32])
    .scheduler(SchedulerSpec::Serial)
    .seed(1234)
    .sparse(sparse)
    .shards(shards)
}

#[test]
fn cross_backend_invariant_holds_on_the_sharded_store() {
    // sequential ≡ simulated-serial ≡ 1-thread hogwild, bit for bit, with
    // the native backend routing through a multi-shard store — on both the
    // dense and the sparse path. The simulated and sequential backends have
    // no arenas (their reports say so); a 1-thread serial claim schedule
    // makes the comparison exact. Fixed(3) at d = 32 rounds the chunk
    // ceil(32/3) = 11 up to 16, so the report carries the realised 2.
    for path in [SparsePathSpec::Dense, SparsePathSpec::Sparse] {
        let spec = sharded_spec(path, ShardsSpec::Fixed(3));
        let sequential = run_spec(&spec.clone().backend(BackendKind::Sequential)).unwrap();
        let simulated = run_spec(&spec.clone().backend(BackendKind::SimulatedLockFree)).unwrap();
        let hogwild = run_spec(&spec).unwrap();
        assert_eq!(sequential.shards, None, "no arenas under sequential");
        assert_eq!(simulated.shards, None, "no arenas under the simulator");
        assert_eq!(hogwild.shards, Some(2), "the realized shard count");
        for (name, other) in [("simulated-serial", &simulated), ("hogwild-1", &hogwild)] {
            for (j, (a, b)) in sequential
                .final_model
                .iter()
                .zip(&other.final_model)
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{path:?}/{name}: entry {j}: sequential {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn one_thread_sharded_run_is_bit_identical_to_flat() {
    // Same spec, same serial claim schedule — only the store differs. The
    // refactor's regression oracle: routing must never change which cell an
    // index denotes or the order its updates apply in.
    for path in [SparsePathSpec::Dense, SparsePathSpec::Sparse] {
        let flat = run_spec(&sharded_spec(path, ShardsSpec::Flat)).unwrap();
        let sharded = run_spec(&sharded_spec(path, ShardsSpec::Fixed(4))).unwrap();
        assert_eq!(flat.shards, None);
        assert_eq!(sharded.shards, Some(4));
        for (j, (a, b)) in flat
            .final_model
            .iter()
            .zip(&sharded.final_model)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{path:?}: entry {j}: flat {a} vs sharded {b}"
            );
        }
        assert_eq!(
            flat.final_dist_sq.to_bits(),
            sharded.final_dist_sq.to_bits()
        );
    }
}

/// A deterministic ragged partition of `0..d` derived from `seed`: random
/// strictly-increasing interior bounds, the adversarial input for the
/// exact-range router.
fn ragged_bounds(d: usize, seed: u64) -> Vec<usize> {
    let mut bounds = vec![0, d];
    let mut state = seed | 1;
    for _ in 0..(seed % 7) {
        // Splitmix-style step; any deterministic scramble works here.
        state = state
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        if d > 1 {
            bounds.push((state as usize) % (d - 1) + 1);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A serial op stream through a sharded store — pow2 chunked routing at
    /// a random shard count AND an adversarial ragged partition — lands bit
    /// for bit where the flat store puts it, with the per-shard counters
    /// accounting for exactly the ops routed into each range.
    #[test]
    fn sharded_stores_apply_op_streams_bit_identically_to_flat(
        d in 1_usize..300,
        shards in 1_usize..40,
        seed in 0_u64..10_000,
        raw_ops in proptest::collection::vec((any::<u32>(), -1.0_f64..1.0), 0..64),
    ) {
        let x0: Vec<f64> = (0..d).map(|j| (j as f64) * 0.1 - 3.0).collect();
        let ops: Vec<(usize, f64)> = raw_ops
            .iter()
            .map(|&(raw, delta)| (raw as usize % d, delta))
            .collect();

        let flat = SharedModel::new(&x0);
        let chunked = ShardedModel::with_options(&x0, shards, UpdateOrder::SeqCst);
        let ragged = ShardedModel::with_router(
            &x0,
            ShardRouter::ranged(ragged_bounds(d, seed)),
            UpdateOrder::SeqCst,
        );
        for &(j, delta) in &ops {
            let a = flat.fetch_add(j, delta);
            let b = chunked.fetch_add(j, delta);
            let c = ragged.fetch_add(j, delta);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "prior value at {}", j);
            prop_assert_eq!(a.to_bits(), c.to_bits(), "prior value at {}", j);
        }
        let reference = flat.snapshot();
        for store in [&chunked, &ragged] {
            for (j, (a, b)) in reference.iter().zip(store.snapshot()).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "entry {}", j);
            }
            // Counter accounting: each shard's counter is the number of ops
            // whose index its range contains; quiescent double-collect
            // validates and returns the same vector.
            prop_assert_eq!(store.total_updates(), ops.len() as u64);
            let mut counts = Vec::new();
            prop_assert!(store.coherent_update_counts(&mut counts), "quiescent");
            for (s, &count) in counts.iter().enumerate() {
                let range = store.router().range(s);
                let expected = ops.iter().filter(|&&(j, _)| range.contains(&j)).count();
                prop_assert_eq!(count, expected as u64, "shard {}", s);
                prop_assert_eq!(store.shard_updates(s), expected as u64);
            }
        }
    }

    /// Routing is a bijection onto arena slots: every index of a random
    /// dimension routes into the range that claims it, at the offset the
    /// range implies.
    #[test]
    fn every_index_routes_into_its_claimed_range(
        d in 1_usize..2_000,
        shards in 1_usize..64,
    ) {
        let router = ShardRouter::balanced(d, shards);
        for j in 0..d {
            let (s, off) = router.route(j);
            let range = router.range(s);
            prop_assert!(range.contains(&j), "index {} vs shard {} range {:?}", j, s, range);
            prop_assert_eq!(off, j - range.start);
        }
    }
}
