//! Minimal dense linear algebra for workload construction.
//!
//! Just enough to (a) solve the normal equations of least squares, and
//! (b) bracket the extreme eigenvalues of small symmetric positive-definite
//! matrices so workloads can report exact strong-convexity moduli. Matrices
//! here are tiny (`d ≤ a few hundred`), so simple `O(d³)` algorithms are the
//! right tool.

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| asgd_math::vec::dot(self.row(r), x))
            .collect()
    }

    /// Gram matrix `AᵀA / rows` (the Hessian of mean least squares).
    #[must_use]
    pub fn gram_normalized(&self) -> DenseMatrix {
        let d = self.cols;
        let mut g = DenseMatrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                for j in i..d {
                    let v = g.get(i, j) + row[i] * row[j];
                    g.set(i, j, v);
                }
            }
        }
        let scale = 1.0 / self.rows as f64;
        for i in 0..d {
            for j in i..d {
                let v = g.get(i, j) * scale;
                g.set(i, j, v);
                g.set(j, i, v);
            }
        }
        g
    }
}

/// Error from [`solve`] when the system is (numerically) singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrixError {}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if a pivot underflows `1e-12` in absolute
/// value.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
    assert_eq!(a.rows(), a.cols(), "solve requires a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs dimension mismatch");
    let n = a.rows();
    // Augmented working copy.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("pivot comparison on finite values")
            })
            .expect("non-empty pivot range");
        if m[pivot_row][col].abs() < 1e-12 {
            return Err(SingularMatrixError);
        }
        m.swap(col, pivot_row);
        for r in col + 1..n {
            let factor = m[r][col] / m[col][col];
            let (pivot_rows, rest) = m.split_at_mut(r);
            let pivot = &pivot_rows[col];
            for (cell, p) in rest[0][col..].iter_mut().zip(&pivot[col..]) {
                *cell -= factor * p;
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = m[r][n];
        for c in r + 1..n {
            acc -= m[r][c] * x[c];
        }
        x[r] = acc / m[r][r];
    }
    Ok(x)
}

/// Largest eigenvalue of a symmetric PSD matrix by power iteration.
///
/// # Panics
///
/// Panics if the matrix is not square or is empty.
#[must_use]
pub fn max_eigenvalue_sym(a: &DenseMatrix, iterations: usize) -> f64 {
    assert_eq!(a.rows(), a.cols(), "eigenvalue of non-square matrix");
    let n = a.rows();
    assert!(n > 0, "empty matrix");
    // Deterministic start vector with all components nonzero and varied.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 + 1.0).sqrt()).collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..iterations.max(1) {
        let mut w = a.matvec(&v);
        lambda = asgd_math::vec::dot(&v, &w);
        let norm = asgd_math::vec::l2_norm(&w);
        if norm == 0.0 {
            return 0.0;
        }
        asgd_math::vec::scale(&mut w, 1.0 / norm);
        v = w;
    }
    lambda
}

/// Smallest eigenvalue of a symmetric positive-definite matrix via inverse
/// power iteration (each step solves `A·w = v`).
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if `A` is singular.
///
/// # Panics
///
/// Panics if the matrix is not square or is empty.
pub fn min_eigenvalue_spd(a: &DenseMatrix, iterations: usize) -> Result<f64, SingularMatrixError> {
    assert_eq!(a.rows(), a.cols(), "eigenvalue of non-square matrix");
    let n = a.rows();
    assert!(n > 0, "empty matrix");
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((i * 7 + 3) % 11) as f64 * 0.1)
        .collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..iterations.max(1) {
        let mut w = solve(a, &v)?;
        // Rayleigh quotient on the un-normalised iterate: v ≈ λ_min⁻¹ w.
        let norm = asgd_math::vec::l2_norm(&w);
        if norm == 0.0 {
            return Ok(0.0);
        }
        asgd_math::vec::scale(&mut w, 1.0 / norm);
        let av = a.matvec(&w);
        lambda = asgd_math::vec::dot(&w, &av);
        v = w;
    }
    Ok(lambda)
}

fn normalize(v: &mut [f64]) {
    let n = asgd_math::vec::l2_norm(v);
    if n > 0.0 {
        asgd_math::vec::scale(v, 1.0 / n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(values: &[f64]) -> DenseMatrix {
        let n = values.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (i, &v) in values.iter().enumerate() {
            m.set(i, i, v);
        }
        m
    }

    #[test]
    fn matrix_accessors() {
        let m = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_rows_checks_length() {
        let _ = DenseMatrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    fn gram_of_identity_rows() {
        // Rows e1, e2 → AᵀA/2 = diag(1/2, 1/2).
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let g = a.gram_normalized();
        assert_eq!(g.get(0, 0), 0.5);
        assert_eq!(g.get(1, 1), 0.5);
        assert_eq!(g.get(0, 1), 0.0);
    }

    #[test]
    fn solve_known_system() {
        let a = DenseMatrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_singular_errors() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let err = solve(&a, &[1.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn eigenvalues_of_diagonal_matrix() {
        let m = diag(&[0.5, 2.0, 7.0]);
        let max = max_eigenvalue_sym(&m, 200);
        assert!((max - 7.0).abs() < 1e-6, "max {max}");
        let min = min_eigenvalue_spd(&m, 200).unwrap();
        assert!((min - 0.5).abs() < 1e-6, "min {min}");
    }

    #[test]
    fn eigenvalues_of_dense_spd() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let m = DenseMatrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        assert!((max_eigenvalue_sym(&m, 200) - 3.0).abs() < 1e-6);
        assert!((min_eigenvalue_spd(&m, 200).unwrap() - 1.0).abs() < 1e-6);
    }
}
