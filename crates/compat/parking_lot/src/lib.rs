//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind the `parking_lot` API surface the
//! workspace uses (`lock()` without a poison `Result`, `into_inner()`).
//! Poisoning is transparently ignored, matching `parking_lot` semantics of
//! never poisoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A mutual-exclusion primitive with the `parking_lot` calling convention.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns a poison
    /// error: a poisoned lock is recovered, as `parking_lot` never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
