//! Native lock-free SGD on real threads — the practical counterpart of the
//! simulated model.
//!
//! The paper's Algorithm 1 maps directly onto commodity hardware: the shared
//! model is an array of atomically updatable `f64`s, the iteration counter is
//! an `AtomicU64`, and gradient entries are applied with `fetch&add` (a CAS
//! loop on `f64` bits, [`atomic::AtomicF64`]). This crate provides:
//!
//! * [`atomic`] — `AtomicF64` with lock-free `fetch_add` (SeqCst and
//!   relaxed variants);
//! * [`model`] — the shared parameter vector, with compact or cache-line-
//!   padded layouts and a paper-faithful-vs-relaxed ordering knob;
//! * [`shard`] — the topology-aware sharded parameter store: contiguous
//!   index ranges routed (shift-and-mask, or exact ranges for ragged
//!   dimensions) to per-shard arenas with per-shard update counters, and
//!   [`ParamStore`], the flat-or-sharded enum every native claim loop
//!   actually holds;
//! * [`pin`] — best-effort worker-to-core pinning (enabled by
//!   `ExecTuning::pin`);
//! * [`tuning`] — [`ExecTuning`]: the layout/ordering/sparse-path knobs
//!   every native executor accepts; Δ-sparse oracles get an O(Δ) hot loop
//!   instead of the O(d) dense scan;
//! * [`control`] — [`RunControl`]: a cooperative stop flag and a strided
//!   metrics sink threaded into every executor's claim loop (the
//!   `run_controlled` entry points), with cancellation latency bounded by
//!   the success-check stride;
//! * [`snapshot`] — model serving attachments: epoch-versioned
//!   double-buffered snapshot publication ([`SnapshotCell`]) and cloneable
//!   [`ModelReader`] handles (live per-entry reads racing the trainers +
//!   coherent published snapshots), threaded into the lock-free executor
//!   through [`RunControl::serve`] ([`ServeHook`]);
//! * [`hogwild`] — the lock-free executor (Algorithm 1 on OS threads);
//! * [`locked`] — the coarse-grained-locking baseline the paper's
//!   introduction contrasts against (one mutex around the whole model,
//!   serialising iterations);
//! * [`full_sgd`] — native Algorithm 2 with per-epoch model arrays and the
//!   final accumulating epoch;
//! * [`guarded`] — an op-level epoch guard packing `(epoch, f32 value)`
//!   into one atomic word, demonstrating the DCAS-style guard of §7 with a
//!   single-word CAS (at the cost of `f32` precision), plus
//!   [`guarded::GuardedEpochSgd`], a full epoch-guarded SGD executor on top
//!   of it.
//!
//! **Front door:** new code should usually go through the unified driver
//! (`asgd-driver`): one `RunSpec` selects this crate's executors via the
//! `hogwild`, `locked`, `guarded-epoch` and `native-fullsgd` backends and
//! returns one serialisable `RunReport`. The types here remain supported as
//! the native backends' engine-level API.
//!
//! Native runs are *not* deterministic (real interleavings); tests assert
//! statistical properties — update conservation, convergence, monotone
//! scaling — never exact trajectories.
//!
//! # Example
//!
//! ```
//! use asgd_hogwild::hogwild::{Hogwild, HogwildConfig};
//! use asgd_oracle::NoisyQuadratic;
//! use std::sync::Arc;
//!
//! let oracle = Arc::new(NoisyQuadratic::new(4, 0.05).expect("valid"));
//! let report = Hogwild::new(oracle, HogwildConfig {
//!     threads: 2,
//!     iterations: 2_000,
//!     alpha: 0.05,
//!     seed: 7,
//!     success_radius_sq: Some(0.05),
//! })
//! .run(&[1.0, -1.0, 0.5, -0.5]);
//! assert!(report.final_dist_sq < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod control;
pub mod full_sgd;
pub mod guarded;
pub mod hogwild;
pub mod locked;
pub mod model;
pub mod pin;
pub mod shard;
pub mod snapshot;
pub mod tuning;

pub use atomic::{AtomicF64, CacheAligned};
pub use control::{MetricsFn, MetricsSink, RunControl, TimingFn, TimingSink};
pub use full_sgd::{NativeFullSgd, NativeFullSgdConfig, NativeFullSgdReport};
pub use guarded::{GuardedEpochSgd, GuardedEpochSgdConfig, GuardedEpochSgdReport, GuardedModel};
pub use hogwild::{Hogwild, HogwildConfig, HogwildReport};
pub use locked::{LockedSgd, LockedSgdReport};
pub use model::{ModelLayout, SharedModel, UpdateOrder};
pub use shard::{ParamStore, ShardRouter, ShardTopology, ShardedModel, ShardedVec, StoreWriter};
pub use snapshot::{ModelReader, ModelSnapshot, PublishListener, ServeHook, SnapshotCell};
pub use tuning::{ExecTuning, ShardPolicy, SparsePolicy};
