//! Execution traces and the Figure-1 update grid.
//!
//! With [`TraceLevel::Events`] the engine records every fired action. Traces
//! power determinism checks (via [`Trace::hash`]) and the ASCII rendering of
//! the paper's Figure 1 — the grid of gradient updates per iteration and
//! model entry, distinguishing applied from still-pending updates
//! ([`UpdateGrid`]).

use crate::op::{MemOp, OpResult, OpTag, Step, ThreadId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// How much the engine records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Record nothing beyond contention accounting (fast; default).
    #[default]
    Off,
    /// Record every fired action.
    Events,
}

/// One fired action.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Global step at which the action fired.
    pub step: Step,
    /// Thread whose action fired.
    pub thread: ThreadId,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of trace events.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A shared-memory op fired.
    Op {
        /// The operation.
        op: MemOp,
        /// Its semantic tag.
        tag: OpTag,
        /// The result delivered to the process.
        result: OpResult,
    },
    /// A local computation step fired.
    Local {
        /// Its semantic tag.
        tag: OpTag,
    },
    /// The thread halted (after its previous action fired).
    Halted,
    /// The adversary crashed the thread.
    Crashed,
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<EventRecord>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: EventRecord) {
        self.events.push(ev);
    }

    /// All recorded events in firing order.
    #[must_use]
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A deterministic hash of the whole trace (used by determinism and
    /// replay-equivalence tests).
    #[must_use]
    pub fn hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for ev in &self.events {
            ev.step.hash(&mut h);
            ev.thread.hash(&mut h);
            match &ev.kind {
                EventKind::Op { op, tag, result } => {
                    0u8.hash(&mut h);
                    hash_op(op, &mut h);
                    hash_tag(tag, &mut h);
                    hash_result(result, &mut h);
                }
                EventKind::Local { tag } => {
                    1u8.hash(&mut h);
                    hash_tag(tag, &mut h);
                }
                EventKind::Halted => 2u8.hash(&mut h),
                EventKind::Crashed => 3u8.hash(&mut h),
            }
        }
        h.finish()
    }

    /// Builds the Figure-1 update grid for a `d`-dimensional model from the
    /// events fired up to and including `at_step`.
    #[must_use]
    pub fn update_grid(&self, d: usize, at_step: Step) -> UpdateGrid {
        UpdateGrid::from_events(&self.events, d, at_step)
    }
}

fn hash_op(op: &MemOp, h: &mut impl Hasher) {
    match *op {
        MemOp::ReadF64 { idx } => (0u8, idx).hash(h),
        MemOp::WriteF64 { idx, value } => (1u8, idx, value.to_bits()).hash(h),
        MemOp::FaaF64 { idx, delta } => (2u8, idx, delta.to_bits()).hash(h),
        MemOp::CasF64 { idx, expected, new } => {
            (3u8, idx, expected.to_bits(), new.to_bits()).hash(h)
        }
        MemOp::ReadU64 { idx } => (4u8, idx).hash(h),
        MemOp::WriteU64 { idx, value } => (5u8, idx, value).hash(h),
        MemOp::FaaU64 { idx, delta } => (6u8, idx, delta).hash(h),
        MemOp::CasU64 { idx, expected, new } => (7u8, idx, expected, new).hash(h),
    }
}

fn hash_tag(tag: &OpTag, h: &mut impl Hasher) {
    match *tag {
        OpTag::Untagged => 0u8.hash(h),
        OpTag::ClaimIteration => 1u8.hash(h),
        OpTag::ViewRead { entry, first, last } => (2u8, entry, first, last).hash(h),
        OpTag::SampleCoin => 3u8.hash(h),
        OpTag::ModelWrite { entry, first, last } => (4u8, entry, first, last).hash(h),
    }
}

fn hash_result(r: &OpResult, h: &mut impl Hasher) {
    match *r {
        OpResult::F64(v) => (0u8, v.to_bits()).hash(h),
        OpResult::U64(v) => (1u8, v).hash(h),
        OpResult::CasF64 { success, observed } => (2u8, success, observed.to_bits()).hash(h),
        OpResult::CasU64 { success, observed } => (3u8, success, observed).hash(h),
        OpResult::Unit => 4u8.hash(h),
    }
}

/// State of one cell in the Figure-1 grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// The update for this entry has been applied to shared memory
    /// (drawn in red in the paper's figure).
    Applied,
    /// The iteration computed this entry's update but has not yet applied it
    /// (drawn in black in the paper's figure).
    Pending,
}

/// One row of the Figure-1 grid: an iteration's per-entry update status.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// Iteration order index (0-based; the paper's `t` is `index + 1`).
    pub index: usize,
    /// Executing thread.
    pub thread: ThreadId,
    /// Per-entry state.
    pub cells: Vec<CellState>,
    /// True once the iteration applied its last write.
    pub complete: bool,
}

/// The paper's Figure 1: iterations × model entries, applied vs pending.
///
/// Summing the *applied* updates in a column yields that entry's current
/// shared-memory value (relative to `x₀`); summing *all* cells yields the
/// accumulator `x_t` of §6.1.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateGrid {
    rows: Vec<GridRow>,
    d: usize,
}

impl UpdateGrid {
    /// Reconstructs the grid from trace events up to `at_step`.
    ///
    /// Iterations appear in their Lemma-6.1 order (first model write). Rows
    /// assume Algorithm 1's in-order entry writes: entries up to the furthest
    /// applied write are `Applied`, the rest `Pending`.
    #[must_use]
    pub fn from_events(events: &[EventRecord], d: usize, at_step: Step) -> Self {
        let mut rows: Vec<GridRow> = Vec::new();
        let mut current_row: Vec<Option<usize>> = Vec::new();
        for ev in events.iter().filter(|e| e.step <= at_step) {
            if ev.thread >= current_row.len() {
                current_row.resize(ev.thread + 1, None);
            }
            if let EventKind::Op {
                tag: OpTag::ModelWrite { entry, first, last },
                ..
            } = ev.kind
            {
                if first {
                    current_row[ev.thread] = Some(rows.len());
                    rows.push(GridRow {
                        index: rows.len(),
                        thread: ev.thread,
                        cells: vec![CellState::Pending; d],
                        complete: false,
                    });
                }
                if let Some(row_idx) = current_row[ev.thread] {
                    let row = &mut rows[row_idx];
                    if entry < d {
                        row.cells[entry] = CellState::Applied;
                    }
                    if last {
                        row.complete = true;
                        // Dense iterations may skip zero entries; a complete
                        // row's unwritten cells carried zero updates, shown
                        // as applied.
                        for c in &mut row.cells {
                            *c = CellState::Applied;
                        }
                        current_row[ev.thread] = None;
                    }
                }
            }
        }
        Self { rows, d }
    }

    /// The grid rows, in iteration order.
    #[must_use]
    pub fn rows(&self) -> &[GridRow] {
        &self.rows
    }

    /// Model dimension.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.d
    }

    /// Renders the grid as ASCII art in the style of Figure 1: `#` applied,
    /// `.` pending; one row per iteration, annotated with the thread id.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "update grid: {} iterations x {} entries (#=applied, .=pending)\n",
            self.rows.len(),
            self.d
        ));
        out.push_str("  iter thread  entries 0..d\n");
        for row in &self.rows {
            out.push_str(&format!("  t={:<4} P{:<4}  ", row.index + 1, row.thread));
            for c in &row.cells {
                out.push(match c {
                    CellState::Applied => '#',
                    CellState::Pending => '.',
                });
            }
            if !row.complete {
                out.push_str("  (in flight)");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_ev(
        step: Step,
        thread: ThreadId,
        entry: usize,
        first: bool,
        last: bool,
    ) -> EventRecord {
        EventRecord {
            step,
            thread,
            kind: EventKind::Op {
                op: MemOp::FaaF64 {
                    idx: entry,
                    delta: -0.1,
                },
                tag: OpTag::ModelWrite { entry, first, last },
                result: OpResult::F64(0.0),
            },
        }
    }

    #[test]
    fn trace_hash_is_deterministic_and_sensitive() {
        let mut a = Trace::new();
        a.push(write_ev(0, 0, 0, true, true));
        let mut b = Trace::new();
        b.push(write_ev(0, 0, 0, true, true));
        assert_eq!(a.hash(), b.hash());
        b.push(write_ev(1, 0, 0, true, true));
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn grid_tracks_partial_and_complete_rows() {
        // Iteration by thread 0 writes entries 0,1,2 (complete);
        // iteration by thread 1 writes entry 0 of 3 (in flight).
        let events = vec![
            write_ev(0, 0, 0, true, false),
            write_ev(1, 0, 1, false, false),
            write_ev(2, 1, 0, true, false),
            write_ev(3, 0, 2, false, true),
        ];
        let grid = UpdateGrid::from_events(&events, 3, 99);
        assert_eq!(grid.rows().len(), 2);
        let r0 = &grid.rows()[0];
        assert!(r0.complete);
        assert_eq!(r0.thread, 0);
        assert!(r0.cells.iter().all(|c| *c == CellState::Applied));
        let r1 = &grid.rows()[1];
        assert!(!r1.complete);
        assert_eq!(r1.cells[0], CellState::Applied);
        assert_eq!(r1.cells[1], CellState::Pending);
        assert_eq!(r1.cells[2], CellState::Pending);
    }

    #[test]
    fn grid_respects_snapshot_step() {
        let events = vec![
            write_ev(0, 0, 0, true, false),
            write_ev(5, 0, 1, false, true),
        ];
        let early = UpdateGrid::from_events(&events, 2, 2);
        assert!(!early.rows()[0].complete);
        let late = UpdateGrid::from_events(&events, 2, 5);
        assert!(late.rows()[0].complete);
    }

    #[test]
    fn grid_render_contains_markers() {
        let events = vec![write_ev(0, 0, 0, true, false)];
        let grid = UpdateGrid::from_events(&events, 2, 9);
        let s = grid.render();
        assert!(s.contains('#'));
        assert!(s.contains('.'));
        assert!(s.contains("in flight"));
        assert!(s.contains("t=1"));
        assert_eq!(grid.dimension(), 2);
    }

    #[test]
    fn trace_update_grid_convenience() {
        let mut t = Trace::new();
        t.push(write_ev(0, 0, 0, true, true));
        let g = t.update_grid(1, 10);
        assert_eq!(g.rows().len(), 1);
        assert!(g.rows()[0].complete);
    }
}
