//! Sequential SGD — Eq. (1) of the paper, the baseline of every comparison.

use asgd_oracle::GradientOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Strided trajectory inspector: called with `(t, ‖x_t − x*‖²)` where `t`
/// counts the updates already applied to the inspected state.
type InspectFn = Box<dyn FnMut(u64, f64)>;

/// Runner for the classic iteration `x_{t+1} = x_t − α·g̃(x_t)`.
///
/// # Example
///
/// ```
/// use asgd_core::sequential::SequentialSgd;
/// use asgd_oracle::NoisyQuadratic;
///
/// let oracle = NoisyQuadratic::new(2, 0.0).expect("valid");
/// let report = SequentialSgd::new(&oracle)
///     .learning_rate(0.5)
///     .iterations(50)
///     .initial_point(vec![1.0, 1.0])
///     .success_radius_sq(1e-4)
///     .seed(1)
///     .run();
/// assert!(report.hit_iteration.is_some());
/// ```
pub struct SequentialSgd<'a, O> {
    oracle: &'a O,
    alpha: f64,
    iterations: u64,
    x0: Option<Vec<f64>>,
    eps: Option<f64>,
    seed: u64,
    record_distances: bool,
    stop_on_success: bool,
    stop_flag: Option<Arc<AtomicBool>>,
    inspect: Option<(u64, InspectFn)>,
}

impl<O: std::fmt::Debug> std::fmt::Debug for SequentialSgd<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequentialSgd")
            .field("oracle", &self.oracle)
            .field("alpha", &self.alpha)
            .field("iterations", &self.iterations)
            .field("seed", &self.seed)
            .field("inspect", &self.inspect.as_ref().map(|(stride, _)| stride))
            .finish_non_exhaustive()
    }
}

/// Outcome of a sequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialReport {
    /// Final iterate.
    pub final_x: Vec<f64>,
    /// First (1-based) iteration index `t` with `‖x_t − x*‖² ≤ ε`, if the
    /// success region was ever entered and a radius was configured.
    pub hit_iteration: Option<u64>,
    /// Minimum squared distance to the optimum seen along the trajectory
    /// (including the initial point).
    pub min_dist_sq: f64,
    /// Squared distance of the final iterate.
    pub final_dist_sq: f64,
    /// Number of iterations executed.
    pub iterations: u64,
    /// Per-iteration squared distances (index 0 = after first step), present
    /// only when distance recording was enabled.
    pub distances_sq: Option<Vec<f64>>,
    /// Whether the run was ended early by the stop flag (the iteration count
    /// then reflects only the work actually done).
    pub cancelled: bool,
}

impl<'a, O: GradientOracle> SequentialSgd<'a, O> {
    /// Creates a runner with defaults: `α = 0.1`, `T = 1000`, `x₀ = 0`,
    /// no success region, seed 0.
    #[must_use]
    pub fn new(oracle: &'a O) -> Self {
        Self {
            oracle,
            alpha: 0.1,
            iterations: 1000,
            x0: None,
            eps: None,
            seed: 0,
            record_distances: false,
            stop_on_success: false,
            stop_flag: None,
            inspect: None,
        }
    }

    /// Sets the constant learning rate `α > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite and positive.
    #[must_use]
    pub fn learning_rate(mut self, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }

    /// Sets the iteration budget `T`.
    #[must_use]
    pub fn iterations(mut self, t: u64) -> Self {
        self.iterations = t;
        self
    }

    /// Sets the initial point (default: the origin).
    #[must_use]
    pub fn initial_point(mut self, x0: Vec<f64>) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// Enables success-region tracking with threshold `ε` on `‖x − x*‖²`.
    #[must_use]
    pub fn success_radius_sq(mut self, eps: f64) -> Self {
        self.eps = Some(eps);
        self
    }

    /// Sets the RNG seed for the gradient coins.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records per-iteration distances in the report.
    #[must_use]
    pub fn record_distances(mut self, on: bool) -> Self {
        self.record_distances = on;
        self
    }

    /// Stops as soon as the success region is entered (default: run all `T`
    /// iterations, matching the paper's fixed-horizon failure event `F_T`).
    #[must_use]
    pub fn stop_on_success(mut self, on: bool) -> Self {
        self.stop_on_success = on;
        self
    }

    /// Installs a cooperative stop flag, checked at the top of every
    /// iteration: once raised, the run returns early with
    /// [`SequentialReport::cancelled`] set.
    #[must_use]
    pub fn stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop_flag = Some(flag);
        self
    }

    /// Installs a strided trajectory inspector: `f(t, ‖x_t − x*‖²)` fires at
    /// the top of iteration `t + 1` for every `t` that is a multiple of
    /// `stride` (clamped to ≥ 1) — i.e. on the state with exactly `t`
    /// updates applied, starting at `t = 0` (`x₀`). Pure observation: the
    /// trajectory and coin stream are unchanged.
    #[must_use]
    pub fn inspect(mut self, stride: u64, f: impl FnMut(u64, f64) + 'static) -> Self {
        self.inspect = Some((stride.max(1), Box::new(f)));
        self
    }

    /// Runs SGD and reports the trajectory statistics.
    ///
    /// # Panics
    ///
    /// Panics if the configured initial point has the wrong dimension.
    #[must_use]
    pub fn run(self) -> SequentialReport {
        let oracle = self.oracle;
        let stop_flag = self.stop_flag;
        let mut inspect = self.inspect;
        let d = oracle.dimension();
        let mut x = self.x0.unwrap_or_else(|| vec![0.0; d]);
        assert_eq!(x.len(), d, "initial point dimension mismatch");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut g = vec![0.0; d];
        let mut hit = None;
        let mut current_dist_sq = oracle.dist_sq_to_opt(&x);
        let mut min_dist_sq = current_dist_sq;
        let mut distances = self.record_distances.then(Vec::new);
        let mut executed = 0;
        let mut cancelled = false;
        for t in 1..=self.iterations {
            if let Some(flag) = &stop_flag {
                if flag.load(Ordering::Relaxed) {
                    cancelled = true;
                    break;
                }
            }
            if let Some((stride, f)) = &mut inspect {
                // Observe x_{t−1}: the state with t − 1 updates applied —
                // the same index convention as the native executors' claim
                // indices, so strided samples align across backends.
                if (t - 1).is_multiple_of(*stride) {
                    f(t - 1, current_dist_sq);
                }
            }
            oracle.sample_gradient(&x, &mut rng, &mut g);
            asgd_math::vec::axpy(&mut x, -self.alpha, &g);
            executed = t;
            current_dist_sq = oracle.dist_sq_to_opt(&x);
            min_dist_sq = min_dist_sq.min(current_dist_sq);
            if let Some(ds) = &mut distances {
                ds.push(current_dist_sq);
            }
            if let Some(eps) = self.eps {
                if hit.is_none() && current_dist_sq <= eps {
                    hit = Some(t);
                    if self.stop_on_success {
                        break;
                    }
                }
            }
        }
        SequentialReport {
            final_dist_sq: oracle.dist_sq_to_opt(&x),
            final_x: x,
            hit_iteration: hit,
            min_dist_sq,
            iterations: executed,
            distances_sq: distances,
            cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::{LinearRegression, NoisyQuadratic};

    #[test]
    fn noiseless_quadratic_contracts_geometrically() {
        // x_{t+1} = (1−α)x_t exactly.
        let o = NoisyQuadratic::new(1, 0.0).unwrap();
        let report = SequentialSgd::new(&o)
            .learning_rate(0.5)
            .iterations(10)
            .initial_point(vec![1.0])
            .record_distances(true)
            .run();
        assert!((report.final_x[0] - 0.5_f64.powi(10)).abs() < 1e-12);
        let ds = report.distances_sq.unwrap();
        assert_eq!(ds.len(), 10);
        assert!((ds[0] - 0.25).abs() < 1e-12);
        assert!(ds.windows(2).all(|w| w[1] < w[0]), "monotone contraction");
    }

    #[test]
    fn hit_iteration_matches_analytic_crossing() {
        // |x_t| = 0.5^t ≤ √ε=0.1 ⇔ t ≥ log2(10) ≈ 3.32 ⇒ t = 4.
        let o = NoisyQuadratic::new(1, 0.0).unwrap();
        let report = SequentialSgd::new(&o)
            .learning_rate(0.5)
            .iterations(10)
            .initial_point(vec![1.0])
            .success_radius_sq(0.01)
            .run();
        assert_eq!(report.hit_iteration, Some(4));
        assert_eq!(report.iterations, 10, "runs to horizon by default");
    }

    #[test]
    fn stop_on_success_short_circuits() {
        let o = NoisyQuadratic::new(1, 0.0).unwrap();
        let report = SequentialSgd::new(&o)
            .learning_rate(0.5)
            .iterations(10)
            .initial_point(vec![1.0])
            .success_radius_sq(0.01)
            .stop_on_success(true)
            .run();
        assert_eq!(report.iterations, 4);
    }

    #[test]
    fn converges_on_linear_regression() {
        let w = LinearRegression::synthetic(100, 4, 0.05, 11).unwrap();
        let report = SequentialSgd::new(&w)
            .learning_rate(0.02)
            .iterations(20_000)
            .seed(3)
            .run();
        assert!(
            report.final_dist_sq < 0.05,
            "final dist² {}",
            report.final_dist_sq
        );
        assert!(report.min_dist_sq <= report.final_dist_sq);
    }

    #[test]
    fn deterministic_under_seed() {
        let o = NoisyQuadratic::new(3, 1.0).unwrap();
        let run = |seed| {
            SequentialSgd::new(&o)
                .learning_rate(0.1)
                .iterations(100)
                .seed(seed)
                .initial_point(vec![1.0, 2.0, 3.0])
                .run()
        };
        assert_eq!(run(9).final_x, run(9).final_x);
        assert_ne!(run(9).final_x, run(10).final_x);
    }

    #[test]
    fn inspector_sees_strided_states_without_perturbing_the_run() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let o = NoisyQuadratic::new(1, 0.0).unwrap();
        let plain = SequentialSgd::new(&o)
            .learning_rate(0.5)
            .iterations(8)
            .initial_point(vec![1.0])
            .run();
        let samples = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&samples);
        let inspected = SequentialSgd::new(&o)
            .learning_rate(0.5)
            .iterations(8)
            .initial_point(vec![1.0])
            .inspect(4, move |t, d| sink.borrow_mut().push((t, d)))
            .run();
        assert_eq!(plain.final_x, inspected.final_x, "pure observation");
        // States with 0 and 4 updates: dist² = 1 and 0.5^8.
        let got = samples.borrow().clone();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (0, 1.0));
        assert_eq!(got[1].0, 4);
        assert!((got[1].1 - 0.5_f64.powi(8)).abs() < 1e-15);
        assert!(!inspected.cancelled);
    }

    #[test]
    fn raised_stop_flag_ends_the_run_immediately() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let o = NoisyQuadratic::new(1, 0.0).unwrap();
        let report = SequentialSgd::new(&o)
            .learning_rate(0.5)
            .iterations(1_000_000)
            .initial_point(vec![1.0])
            .stop_flag(Arc::new(AtomicBool::new(true)))
            .run();
        assert!(report.cancelled);
        assert_eq!(report.iterations, 0);
        assert_eq!(report.final_x, vec![1.0], "no step executed");
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        let o = NoisyQuadratic::new(1, 0.0).unwrap();
        let _ = SequentialSgd::new(&o).learning_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_x0() {
        let o = NoisyQuadratic::new(2, 0.0).unwrap();
        let _ = SequentialSgd::new(&o).initial_point(vec![1.0]).run();
    }
}
