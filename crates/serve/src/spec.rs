//! [`ServeSpec`] — one value describing a serving workload end to end.

use crate::error::ServeError;
use asgd_driver::{BackendKind, RunSpec};

/// How a query reads the (possibly still training) model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadMode {
    /// Per-entry atomic loads of the live shared model, racing the trainers
    /// entry by entry — inconsistent-snapshot semantics, exactly what the
    /// paper's adversary is allowed to show a worker (§2). Zero publication
    /// cost, zero staleness, no cross-entry coherence.
    Live,
    /// The latest published epoch-versioned snapshot: one internally
    /// coherent vector per query, at most `publish_stride` training
    /// iterations stale. The default.
    #[default]
    Snapshot,
}

impl ReadMode {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Live => "live",
            Self::Snapshot => "snapshot",
        }
    }

    /// Both modes, in documentation order.
    #[must_use]
    pub fn all() -> &'static [ReadMode] {
        &[Self::Live, Self::Snapshot]
    }
}

impl std::str::FromStr for ReadMode {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "live" => Ok(Self::Live),
            "snapshot" => Ok(Self::Snapshot),
            other => Err(ServeError::InvalidSpec(format!(
                "unknown read mode `{other}` (known: live, snapshot)"
            ))),
        }
    }
}

impl std::fmt::Display for ReadMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a query computes against its view of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueryKind {
    /// Dot-product score of the model against a random sparse probe
    /// ([`ServeSpec::probe_len`] coordinates drawn per query from the
    /// client's RNG) — O(probe) per query, the recommendation-style scoring
    /// read. The default.
    #[default]
    DotScore,
    /// Objective evaluation `f(x)` at the served point on a held-out
    /// [`GradientOracle`](asgd_oracle::GradientOracle) instance — O(d) per
    /// query (a full live scan in [`ReadMode::Live`]), the
    /// loss-on-fresh-data prediction read.
    Predict,
    /// Raw fetch of one uniformly random parameter — O(1), the latency
    /// floor probe.
    Fetch,
}

impl QueryKind {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::DotScore => "dot-score",
            Self::Predict => "predict",
            Self::Fetch => "fetch",
        }
    }

    /// Every kind, in documentation order.
    #[must_use]
    pub fn all() -> &'static [QueryKind] {
        &[Self::DotScore, Self::Predict, Self::Fetch]
    }
}

impl std::str::FromStr for QueryKind {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dot-score" => Ok(Self::DotScore),
            "predict" => Ok(Self::Predict),
            "fetch" => Ok(Self::Fetch),
            other => Err(ServeError::InvalidSpec(format!(
                "unknown query kind `{other}` (known: dot-score, predict, fetch)"
            ))),
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Query arrival pattern per client.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Arrival {
    /// Closed loop: each client issues its next query the moment the
    /// previous one returns — measures saturation throughput. The default.
    #[default]
    ClosedLoop,
    /// Fixed rate: each client issues `qps` queries per second on a fixed
    /// tick schedule (falling behind, it proceeds immediately without
    /// accumulating a backlog).
    FixedRate {
        /// Per-client target queries per second (`> 0`, finite).
        qps: f64,
    },
}

impl Arrival {
    /// Canonical CLI/JSON rendering (`closed-loop` or `rate:QPS`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Self::ClosedLoop => "closed-loop".to_string(),
            Self::FixedRate { qps } => format!("rate:{qps}"),
        }
    }
}

impl std::str::FromStr for Arrival {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "closed-loop" {
            return Ok(Self::ClosedLoop);
        }
        if let Some(raw) = s.strip_prefix("rate:") {
            let qps: f64 = raw
                .parse()
                .map_err(|_| ServeError::InvalidSpec(format!("arrival `{s}`: bad qps value")))?;
            return Ok(Self::FixedRate { qps });
        }
        Err(ServeError::InvalidSpec(format!(
            "unknown arrival `{s}` (known: closed-loop, rate:QPS)"
        )))
    }
}

impl std::fmt::Display for Arrival {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One value describing a serving workload: the training run underneath,
/// the read mode, the query mix, the traffic shape, and the seeds — built
/// once, executed by [`ServeSpec::run`] (or piecewise through
/// [`ModelService`](crate::ModelService) +
/// [`run_workload`](crate::run_workload)).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// The training run the service reads from. Must select the `hogwild`
    /// backend — the lock-free executor is the one that exposes readers.
    pub train: RunSpec,
    /// How queries read the model.
    pub mode: ReadMode,
    /// What queries compute.
    pub query: QueryKind,
    /// Arrival pattern per client.
    pub arrival: Arrival,
    /// Concurrent client threads (`≥ 1`).
    pub clients: usize,
    /// Serving window in seconds; when it closes, a still-running training
    /// run is cancelled and its (partial) report embedded.
    pub duration_secs: f64,
    /// Training claims between snapshot publications (clamped to `≥ 1`).
    pub publish_stride: u64,
    /// Probe support size for [`QueryKind::DotScore`] (clamped to the model
    /// dimension).
    pub probe_len: usize,
    /// Master seed for the client RNG streams — deliberately separate from
    /// `train.seed`, so serving draws can never collide with training coin
    /// streams.
    pub serve_seed: u64,
}

impl ServeSpec {
    /// A spec with defaults: snapshot reads, dot-score queries, closed
    /// loop, 4 clients, a 1-second window, publish stride 256, probe 8.
    #[must_use]
    pub fn new(train: RunSpec) -> Self {
        Self {
            train,
            mode: ReadMode::default(),
            query: QueryKind::default(),
            arrival: Arrival::default(),
            clients: 4,
            duration_secs: 1.0,
            publish_stride: 256,
            probe_len: 8,
            serve_seed: 0x05EA_F00D,
        }
    }

    /// Selects the read mode.
    #[must_use]
    pub fn mode(mut self, mode: ReadMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the query kind.
    #[must_use]
    pub fn query(mut self, query: QueryKind) -> Self {
        self.query = query;
        self
    }

    /// Selects the arrival pattern.
    #[must_use]
    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the client count.
    #[must_use]
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// Sets the serving window.
    #[must_use]
    pub fn duration_secs(mut self, secs: f64) -> Self {
        self.duration_secs = secs;
        self
    }

    /// Sets the snapshot publication stride.
    #[must_use]
    pub fn publish_every(mut self, stride: u64) -> Self {
        self.publish_stride = stride;
        self
    }

    /// Sets the dot-score probe support size.
    #[must_use]
    pub fn probe_len(mut self, len: usize) -> Self {
        self.probe_len = len;
        self
    }

    /// Sets the serving-side master seed.
    #[must_use]
    pub fn serve_seed(mut self, seed: u64) -> Self {
        self.serve_seed = seed;
        self
    }

    /// Checks the spec is executable.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnsupportedBackend`] unless the training run
    /// selects `hogwild`, and [`ServeError::InvalidSpec`] for zero clients,
    /// a non-positive/non-finite duration or rate, or a zero probe.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.train.backend != BackendKind::Hogwild {
            return Err(ServeError::UnsupportedBackend(self.train.backend));
        }
        if self.clients == 0 {
            return Err(ServeError::InvalidSpec(
                "at least one client required".to_string(),
            ));
        }
        if !(self.duration_secs.is_finite() && self.duration_secs > 0.0) {
            return Err(ServeError::InvalidSpec(format!(
                "duration must be positive and finite, got {}",
                self.duration_secs
            )));
        }
        if let Arrival::FixedRate { qps } = self.arrival {
            if !(qps.is_finite() && qps > 0.0) {
                return Err(ServeError::InvalidSpec(format!(
                    "fixed-rate qps must be positive and finite, got {qps}"
                )));
            }
        }
        if self.probe_len == 0 {
            return Err(ServeError::InvalidSpec(
                "probe length must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    /// Starts the training run, drives the client fleet for the serving
    /// window, then stops training and reports.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the spec is invalid or the underlying
    /// run fails.
    pub fn run(&self) -> Result<crate::ServeReport, ServeError> {
        self.validate()?;
        // Live reads never consume published snapshots, so don't make the
        // trainers pay the strided O(d) copy for them: an effectively
        // infinite stride leaves only the claim-0 and final publications
        // (quiescent snapshot reads stay valid). The report then carries
        // the stride the run actually used.
        let stride = match self.mode {
            ReadMode::Snapshot => self.publish_stride,
            ReadMode::Live => u64::MAX,
        };
        let service = crate::ModelService::start(&self.train, stride)?;
        crate::run_workload(&service, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::OracleSpec;

    fn train() -> RunSpec {
        RunSpec::new(OracleSpec::new("noisy-quadratic", 2), BackendKind::Hogwild)
    }

    #[test]
    fn labels_parse_back() {
        for mode in ReadMode::all() {
            assert_eq!(mode.label().parse::<ReadMode>().unwrap(), *mode);
        }
        for kind in QueryKind::all() {
            assert_eq!(kind.label().parse::<QueryKind>().unwrap(), *kind);
        }
        for arrival in [Arrival::ClosedLoop, Arrival::FixedRate { qps: 250.0 }] {
            assert_eq!(arrival.label().parse::<Arrival>().unwrap(), arrival);
        }
        assert!("bogus".parse::<ReadMode>().is_err());
        assert!("bogus".parse::<QueryKind>().is_err());
        assert!("rate:banana".parse::<Arrival>().is_err());
        assert!("bogus".parse::<Arrival>().is_err());
    }

    #[test]
    fn validation_rejects_broken_specs() {
        let ok = ServeSpec::new(train());
        assert!(ok.validate().is_ok());
        let wrong_backend = ServeSpec::new(train().backend(BackendKind::Sequential));
        assert!(matches!(
            wrong_backend.validate(),
            Err(ServeError::UnsupportedBackend(BackendKind::Sequential))
        ));
        assert!(ServeSpec::new(train()).clients(0).validate().is_err());
        assert!(ServeSpec::new(train())
            .duration_secs(0.0)
            .validate()
            .is_err());
        assert!(ServeSpec::new(train())
            .duration_secs(f64::NAN)
            .validate()
            .is_err());
        assert!(ServeSpec::new(train())
            .arrival(Arrival::FixedRate { qps: 0.0 })
            .validate()
            .is_err());
        assert!(ServeSpec::new(train()).probe_len(0).validate().is_err());
    }

    #[test]
    fn builders_apply() {
        let spec = ServeSpec::new(train())
            .mode(ReadMode::Live)
            .query(QueryKind::Fetch)
            .arrival(Arrival::FixedRate { qps: 10.0 })
            .clients(3)
            .duration_secs(0.5)
            .publish_every(64)
            .probe_len(4)
            .serve_seed(9);
        assert_eq!(spec.mode, ReadMode::Live);
        assert_eq!(spec.query, QueryKind::Fetch);
        assert_eq!(spec.arrival, Arrival::FixedRate { qps: 10.0 });
        assert_eq!(
            (
                spec.clients,
                spec.publish_stride,
                spec.probe_len,
                spec.serve_seed
            ),
            (3, 64, 4, 9)
        );
        assert_eq!(spec.duration_secs, 0.5);
    }
}
