//! Stochastic-gradient oracles and synthetic workloads for `asyncsgd`.
//!
//! The paper's analysis (§3) assumes access to stochastic gradients `g̃` of a
//! strongly convex objective `f` with three analytic constants:
//!
//! * `c` — strong convexity (Eq. 2),
//! * `L` — Lipschitz continuity of `g̃` in expectation (Eq. 3),
//! * `M²` — a second-moment bound `E‖g̃(x)‖² ≤ M²` (Eq. 4).
//!
//! Every workload here implements [`GradientOracle`] and *knows its own
//! constants* (exactly, or as documented upper bounds valid within a stated
//! radius of the optimum), so the theory crate can compute the paper's
//! learning rates and failure-probability bounds for real runs:
//!
//! * [`NoisyQuadratic`] — `f(x) = ½‖x‖²` with Gaussian gradient noise, the
//!   §5 lower-bound workload;
//! * [`SparseQuadratic`] — diagonal quadratic with single-nonzero-entry
//!   stochastic gradients, the regime required by De Sa et al. \[10\] and
//!   *removed* by this paper's analysis;
//! * [`LinearRegression`] — least squares over a synthetic dataset;
//! * [`RidgeLogistic`] — ℓ2-regularised logistic regression (strongly convex
//!   thanks to the ridge term);
//! * [`StreamingOracle`] — live labeled observations consumed from a bounded
//!   [`IngressQueue`] (explicit backpressure: block, drop-oldest, or
//!   reject), falling back to a prior oracle when starved — the
//!   continual-learning ingest path;
//! * [`Flat`] — the inert `f ≡ 0` oracle (kind `"flat"`), the
//!   hold-position prior for streaming models (outside the §3
//!   assumptions; see its docs).
//!
//! # Example
//!
//! ```
//! use asgd_oracle::{GradientOracle, NoisyQuadratic};
//! use rand::SeedableRng;
//!
//! let oracle = NoisyQuadratic::new(4, 0.1).expect("valid noise level");
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let x = vec![1.0; 4];
//! let mut g = vec![0.0; 4];
//! oracle.sample_gradient(&x, &mut rng, &mut g);
//! assert_eq!(g.len(), 4);
//! let consts = oracle.constants(2.0);
//! assert_eq!(consts.c, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod flat;
pub mod linalg;
pub mod linreg;
pub mod logreg;
pub mod minibatch;
pub mod oracle;
pub mod quadratic;
pub mod registry;
pub mod sparse;
pub mod sparse_grad;
pub mod streaming;
pub mod synth;

pub use constants::Constants;
pub use flat::Flat;
pub use linreg::LinearRegression;
pub use logreg::RidgeLogistic;
pub use minibatch::{Minibatch, MinibatchRegression};
pub use oracle::GradientOracle;
pub use quadratic::NoisyQuadratic;
pub use registry::{OracleSpec, OracleSpecError};
pub use sparse::SparseQuadratic;
pub use sparse_grad::{apply_dense_chunk, ModelView, SparseGrad, DENSE_CHUNK_WIDTH};
pub use streaming::{BackpressurePolicy, IngressError, IngressQueue, Observation, StreamingOracle};
