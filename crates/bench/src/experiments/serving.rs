//! **Serving under training fire** — latency/throughput/staleness of
//! concurrent model reads racing live hogwild writers.
//!
//! The ROADMAP's north star is a model that serves traffic *while*
//! training; the paper's bounded-delay analysis is exactly why that is
//! sound. This experiment measures the serving plane: a hogwild run on
//! `sparse-quadratic` with closed-loop dot-score clients hammering the
//! shared model, sweeping client count × read mode × trainer threads.
//! `live` reads race the trainers entry by entry; `snapshot` reads go
//! through the epoch-versioned double buffer (coherent, at most
//! `publish_stride` iterations stale).
//!
//! Full (non-quick) runs write `BENCH_serving.json` into the current
//! directory — the committed serving-telemetry artifact.

use crate::ExperimentOutput;
use asgd_driver::json::Value;
use asgd_driver::{BackendKind, RunSpec};
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::OracleSpec;
use asgd_serve::{QueryKind, ReadMode, ServeSpec};

/// One measured serving configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// `"live"` or `"snapshot"`.
    pub mode: &'static str,
    /// Trainer threads underneath.
    pub trainer_threads: usize,
    /// Queries answered in the window.
    pub queries: u64,
    /// Aggregate throughput (queries/s).
    pub qps: f64,
    /// Median query latency (ns).
    pub p50_ns: u64,
    /// 99th-percentile query latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile query latency (ns).
    pub p999_ns: u64,
    /// Mean snapshot staleness in training iterations (0 for live mode).
    pub staleness_mean: f64,
    /// Worst observed staleness (0 for live mode).
    pub staleness_max: u64,
    /// Training iterations executed during the window.
    pub train_iterations: u64,
    /// Training throughput sustained under serving load (iters/s).
    pub train_iters_per_sec: f64,
}

/// Model dimension of the sweep (big enough that a coherent copy is real
/// work, small enough for CI smoke runs).
pub const DIM: usize = 4_096;

fn serve_spec(clients: usize, mode: ReadMode, trainer_threads: usize, secs: f64) -> ServeSpec {
    // Δ=1 sparse gradients: the trainers run the O(Δ) path, so training
    // makes real progress even while client threads steal the cores. The
    // iteration budget is effectively unbounded — the serving window closes
    // the run via cancellation.
    let train = RunSpec::new(
        OracleSpec::new("sparse-quadratic", DIM).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(trainer_threads)
    .iterations(u64::MAX / 2)
    .learning_rate(0.5 / DIM as f64)
    .x0(vec![1.0; DIM])
    .seed(0x5E1_F00D);
    ServeSpec::new(train)
        .mode(mode)
        .query(QueryKind::DotScore)
        .clients(clients)
        .duration_secs(secs)
        .publish_every(2_048)
        .serve_seed(0xCAFE)
}

/// Runs the sweep serially (each cell owns the machine: the latency and
/// throughput columns are the output, so cells must not share cores).
#[must_use]
pub fn sweep(quick: bool) -> Vec<Row> {
    let (client_counts, thread_counts, secs): (Vec<usize>, Vec<usize>, f64) = if quick {
        (vec![1, 4], vec![1, 2], 0.08)
    } else {
        (vec![1, 8, 64], vec![1, 4], 0.3)
    };
    let mut rows = Vec::new();
    for &clients in &client_counts {
        for mode in [ReadMode::Live, ReadMode::Snapshot] {
            for &threads in &thread_counts {
                let report = serve_spec(clients, mode, threads, secs)
                    .run()
                    .expect("serving sweep cell runs");
                rows.push(Row {
                    clients,
                    mode: mode.label(),
                    trainer_threads: threads,
                    queries: report.queries,
                    qps: report.qps,
                    p50_ns: report.latency.p50_ns,
                    p99_ns: report.latency.p99_ns,
                    p999_ns: report.latency.p999_ns,
                    staleness_mean: report.staleness.as_ref().map_or(0.0, |s| s.mean),
                    staleness_max: report.staleness.as_ref().map_or(0, |s| s.max),
                    train_iterations: report.train.iterations,
                    train_iters_per_sec: report.train.iterations as f64
                        / report.train.wall_time_secs.max(f64::MIN_POSITIVE),
                });
            }
        }
    }
    rows
}

/// Serialises the sweep to the `BENCH_serving.json` value tree.
#[must_use]
pub fn to_json(rows: &[Row]) -> Value {
    Value::obj([
        ("experiment", Value::Str("serving".to_string())),
        ("backend", Value::Str("hogwild".to_string())),
        ("oracle", Value::Str("sparse-quadratic".to_string())),
        ("dim", Value::U64(DIM as u64)),
        ("query", Value::Str("dot-score".to_string())),
        ("arrival", Value::Str("closed-loop".to_string())),
        (
            "rows",
            Value::Arr(
                rows.iter()
                    .map(|r| {
                        Value::obj([
                            ("clients", Value::U64(r.clients as u64)),
                            ("mode", Value::Str(r.mode.to_string())),
                            ("trainer_threads", Value::U64(r.trainer_threads as u64)),
                            ("queries", Value::U64(r.queries)),
                            ("qps", Value::f64(r.qps)),
                            ("p50_ns", Value::U64(r.p50_ns)),
                            ("p99_ns", Value::U64(r.p99_ns)),
                            ("p999_ns", Value::U64(r.p999_ns)),
                            ("staleness_mean", Value::f64(r.staleness_mean)),
                            ("staleness_max", Value::U64(r.staleness_max)),
                            ("train_iterations", Value::U64(r.train_iterations)),
                            ("train_iters_per_sec", Value::f64(r.train_iters_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs the experiment. Non-quick runs also write `BENCH_serving.json`
/// into the current directory.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("serving");
    let rows = sweep(quick);
    let mut table = Table::new(
        "Serving under training: closed-loop dot-score clients vs live hogwild writers (sparse-quadratic)",
        &[
            "clients",
            "mode",
            "trainers",
            "queries",
            "qps",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "stale avg",
            "stale max",
            "train iters/s",
        ],
    );
    for r in &rows {
        table.row(&[
            r.clients.to_string(),
            r.mode.to_string(),
            r.trainer_threads.to_string(),
            r.queries.to_string(),
            fmt_f(r.qps),
            format!("{:.1}", r.p50_ns as f64 / 1e3),
            format!("{:.1}", r.p99_ns as f64 / 1e3),
            format!("{:.1}", r.p999_ns as f64 / 1e3),
            fmt_f(r.staleness_mean),
            r.staleness_max.to_string(),
            fmt_f(r.train_iters_per_sec),
        ]);
    }
    out.tables.push(table);
    if !quick {
        let path = std::path::Path::new("BENCH_serving.json");
        match std::fs::write(path, to_json(&rows).to_json_pretty() + "\n") {
            Ok(()) => out.notes.push(format!("[json] {}", path.display())),
            Err(e) => out
                .notes
                .push(format!("[json] failed to write {}: {e}", path.display())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_both_modes_and_round_trips_json() {
        let rows = sweep(true);
        assert_eq!(rows.len(), 2 * 2 * 2, "clients × modes × trainers");
        assert!(rows.iter().any(|r| r.mode == "live"));
        assert!(rows.iter().any(|r| r.mode == "snapshot"));
        for r in &rows {
            assert!(r.queries > 0, "{r:?}: no queries answered");
            assert!(r.qps > 0.0, "{r:?}");
            assert!(r.p99_ns >= r.p50_ns, "{r:?}: percentile order");
            assert!(r.p999_ns >= r.p99_ns, "{r:?}: percentile order");
            assert!(r.train_iterations > 0, "{r:?}: training starved");
            if r.mode == "live" {
                assert_eq!(r.staleness_max, 0, "{r:?}: live reads have no staleness");
            }
        }
        let json = to_json(&rows).to_json();
        let back = asgd_driver::json::parse(&json).expect("valid JSON");
        assert_eq!(
            back.get("rows").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(rows.len())
        );
        // No latency assertions (CI boxes are noisy); the committed
        // BENCH_serving.json carries the full-run numbers.
    }
}
