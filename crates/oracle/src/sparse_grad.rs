//! Sparse gradient scratch storage and the per-entry model-read abstraction.
//!
//! The paper's bounds are parameterized by the gradient sparsity Δ (§3): a
//! Δ-sparse stochastic gradient touches at most Δ coordinates, so an
//! iteration only *needs* Δ model reads and Δ `fetch&add`s. The dense
//! `sample_gradient(&[f64], …, &mut [f64])` interface forces O(d) work per
//! iteration regardless; the types here let sparse oracles express the O(Δ)
//! access pattern:
//!
//! * [`SparseGrad`] — a reusable index/value scratch buffer a sparse oracle
//!   writes its (at most Δ) nonzero gradient entries into;
//! * [`ModelView`] — per-entry reads of a (possibly shared, possibly
//!   inconsistent) model, so a sparse oracle reads only its support instead
//!   of requiring a fully materialised `&[f64]` snapshot.

/// A stochastic gradient stored as `(coordinate, value)` pairs.
///
/// The buffer is meant to be allocated once per worker and reused across
/// iterations ([`SparseGrad::clear`] keeps capacity). Entries are stored in
/// push order; duplicate coordinates are allowed and *accumulate* when the
/// gradient is applied or densified (this is what a minibatch of overlapping
/// sparse samples produces).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseGrad {
    entries: Vec<(usize, f64)>,
}

impl SparseGrad {
    /// An empty gradient.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty gradient with room for `cap` entries.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends the entry `g[j] = value`.
    pub fn push(&mut self, j: usize, value: f64) {
        self.entries.push((j, value));
    }

    /// Number of stored entries (counting duplicates).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries as `(coordinate, value)` pairs, in push order.
    #[must_use]
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Multiplies every stored value by `factor` (minibatch averaging).
    pub fn scale(&mut self, factor: f64) {
        for (_, v) in &mut self.entries {
            *v *= factor;
        }
    }

    /// Writes the densified gradient into `out` (zeroing it first);
    /// duplicate coordinates accumulate in push order.
    ///
    /// # Panics
    ///
    /// Panics if any stored coordinate is out of bounds for `out`.
    pub fn densify_into(&self, out: &mut [f64]) {
        out.fill(0.0);
        for &(j, v) in &self.entries {
            out[j] += v;
        }
    }
}

/// Entry width of [`apply_dense_chunk`]'s batched delta computation: eight
/// `f64`s, one 512-bit SIMD register (or two 256-bit ones) and exactly one
/// 64-byte cache line of a compact store.
pub const DENSE_CHUNK_WIDTH: usize = 8;

/// Streams the scaled dense update `delta[j] = scale * grad[j]` through
/// `apply`, computing deltas in [`DENSE_CHUNK_WIDTH`]-wide batches.
///
/// The multiply pass over each chunk is branch-free (auto-vectorizable); the
/// apply pass then skips exact zeros, preserving the executors' "only nonzero
/// entries touch the store" contract bit for bit: entries are visited in
/// index order and each nonzero receives exactly `scale * grad[j]`, the same
/// product the scalar loop computes. Both the flat and the sharded parameter
/// stores drive their dense claim loops through this helper, so a chunk never
/// straddles a power-of-two shard boundary of at least this width.
pub fn apply_dense_chunk(grad: &[f64], scale: f64, mut apply: impl FnMut(usize, f64)) {
    let mut chunks = grad.chunks_exact(DENSE_CHUNK_WIDTH);
    let mut base = 0;
    for chunk in &mut chunks {
        let mut deltas = [0.0_f64; DENSE_CHUNK_WIDTH];
        for (slot, &g) in deltas.iter_mut().zip(chunk) {
            *slot = scale * g;
        }
        for (k, &g) in chunk.iter().enumerate() {
            if g != 0.0 {
                apply(base + k, deltas[k]);
            }
        }
        base += DENSE_CHUNK_WIDTH;
    }
    for (k, &g) in chunks.remainder().iter().enumerate() {
        if g != 0.0 {
            apply(base + k, scale * g);
        }
    }
}

/// Per-entry reads of a model vector.
///
/// Implemented by plain slices (a local iterate) and by shared-memory models
/// (`asgd-hogwild`'s `SharedModel`, where each call is one atomic load). A
/// sparse oracle receives `&dyn ModelView` and reads *only* the coordinates
/// in its gradient's support — the whole point of the O(Δ) fast path. As
/// with Algorithm 1's entry-wise scan, reads of distinct entries need not be
/// mutually consistent.
pub trait ModelView {
    /// Model dimension `d`.
    fn dimension(&self) -> usize;

    /// Reads entry `j`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `j ≥ d`.
    fn entry(&self, j: usize) -> f64;
}

impl ModelView for &[f64] {
    fn dimension(&self) -> usize {
        self.len()
    }

    fn entry(&self, j: usize) -> f64 {
        self[j]
    }
}

impl ModelView for Vec<f64> {
    fn dimension(&self) -> usize {
        self.len()
    }

    fn entry(&self, j: usize) -> f64 {
        self[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_clear_and_capacity_reuse() {
        let mut g = SparseGrad::with_capacity(4);
        assert!(g.is_empty());
        g.push(2, 1.5);
        g.push(0, -0.5);
        assert_eq!(g.len(), 2);
        assert_eq!(g.entries(), &[(2, 1.5), (0, -0.5)]);
        g.clear();
        assert!(g.is_empty());
        assert!(g.entries().is_empty());
    }

    #[test]
    fn densify_accumulates_duplicates() {
        let mut g = SparseGrad::new();
        g.push(1, 2.0);
        g.push(1, 3.0);
        g.push(3, -1.0);
        let mut out = vec![9.0; 4];
        g.densify_into(&mut out);
        assert_eq!(out, vec![0.0, 5.0, 0.0, -1.0]);
    }

    #[test]
    fn scale_applies_to_all_entries() {
        let mut g = SparseGrad::new();
        g.push(0, 4.0);
        g.push(2, -2.0);
        g.scale(0.5);
        assert_eq!(g.entries(), &[(0, 2.0), (2, -1.0)]);
    }

    #[test]
    fn apply_dense_chunk_matches_the_scalar_loop_bitwise() {
        // Cover a full chunk, a ragged remainder, zeros inside and outside
        // chunk boundaries, and negative scales.
        for d in [0, 1, 7, 8, 9, 16, 27] {
            let grad: Vec<f64> = (0..d)
                .map(|j| {
                    if j % 3 == 0 {
                        0.0
                    } else {
                        (j as f64).mul_add(0.37, -1.5)
                    }
                })
                .collect();
            let scale = -0.013;
            let mut scalar = Vec::new();
            for (j, &g) in grad.iter().enumerate() {
                if g != 0.0 {
                    scalar.push((j, scale * g));
                }
            }
            let mut chunked = Vec::new();
            apply_dense_chunk(&grad, scale, |j, delta| chunked.push((j, delta)));
            assert_eq!(scalar.len(), chunked.len(), "d={d}");
            for ((ja, a), (jb, b)) in scalar.iter().zip(&chunked) {
                assert_eq!(ja, jb, "d={d}");
                assert_eq!(a.to_bits(), b.to_bits(), "d={d} entry {ja}");
            }
        }
    }

    #[test]
    fn slices_and_vecs_are_model_views() {
        let x: &[f64] = &[1.0, 2.0, 3.0];
        let view: &dyn ModelView = &x;
        assert_eq!(view.dimension(), 3);
        assert_eq!(view.entry(1), 2.0);
        let v = vec![4.0, 5.0];
        let view: &dyn ModelView = &v;
        assert_eq!(view.dimension(), 2);
        assert_eq!(view.entry(0), 4.0);
    }
}
