//! Integer histograms for contention statistics and serving telemetry.

/// The tail percentiles serving benchmarks report, extracted from a
/// [`Histogram`] by rank with linear interpolation between adjacent order
/// statistics (rounded to the nearest integer), so tiny sample counts yield
/// sensible quantiles instead of collapsing every tail percentile onto the
/// maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (p50).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest observation (p100).
    pub max: u64,
}

/// A histogram over `u64` observations (e.g. interval contention `ρ(θ)`,
/// staleness `τ_t` values, or per-query latencies in nanoseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: std::collections::BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from observations.
    #[must_use]
    pub fn from_values(values: &[u64]) -> Self {
        let mut h = Self::new();
        for &v in values {
            h.push(v);
        }
        h
    }

    /// Records one observation.
    pub fn push(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total observations — alias of [`Histogram::total`], paired with
    /// [`Histogram::is_empty`] in the standard container idiom.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no observation has been recorded. An empty histogram has
    /// no order statistics: [`Histogram::quantile`],
    /// [`Histogram::percentiles`], [`Histogram::min`], [`Histogram::max`]
    /// and [`Histogram::mean`] all return `None` (never a sentinel value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count of a specific value.
    #[must_use]
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Largest observed value.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by rank, linearly interpolated.
    ///
    /// Uses the standard `h = q · (n − 1)` rank: the result interpolates
    /// between the `⌊h⌋`-th and `⌈h⌉`-th order statistics and rounds to the
    /// nearest integer (half away from zero). At tiny sample counts this
    /// keeps tail percentiles anchored between order statistics instead of
    /// collapsing them all onto the maximum — the p90 of `{10, 20}` is 19,
    /// not 20 — while exact ranks (including `q = 0` and `q = 1`) still
    /// return exact observed values.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let h = q * (self.total - 1) as f64;
        let lo_rank = h.floor() as u64;
        let frac = h - h.floor();
        let lo = self.order_stat(lo_rank)?;
        if frac == 0.0 {
            return Some(lo);
        }
        let hi = self.order_stat(lo_rank + 1)?;
        // Interpolate in f64 and round half away from zero; lo ≤ hi keeps
        // the result within the observed range.
        Some((lo as f64 + (hi - lo) as f64 * frac).round() as u64)
    }

    /// The 0-based `rank`-th smallest observation (with multiplicity).
    fn order_stat(&self, rank: u64) -> Option<u64> {
        let mut acc = 0;
        for (&v, &c) in &self.counts {
            acc += c;
            if acc > rank {
                return Some(v);
            }
        }
        None
    }

    /// Smallest observed value.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Mean of the observations (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| {
            let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
            sum / self.total as f64
        })
    }

    /// The serving-telemetry percentile set (p50/p90/p99/p999/max), each
    /// rank-interpolated via [`Histogram::quantile`]; `max` is always the
    /// exact largest observation.
    ///
    /// On an empty histogram the outcome is defined: `None`, always — there
    /// is no observation to return, and inventing a `0` would let an idle
    /// window masquerade as a fast one (tested in
    /// `percentiles_on_empty_are_defined`).
    #[must_use]
    pub fn percentiles(&self) -> Option<Percentiles> {
        if self.is_empty() {
            return None;
        }
        Some(Percentiles {
            p50: self.quantile(0.50)?,
            p90: self.quantile(0.90)?,
            p99: self.quantile(0.99)?,
            p999: self.quantile(0.999)?,
            max: self.max()?,
        })
    }

    /// Folds another histogram into this one (per-value count addition).
    /// Merging is how per-client serving telemetry becomes one report:
    /// `merge` over the client histograms is exactly the histogram of the
    /// concatenated observations.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            *self.counts.entry(v).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Iterates `(value, count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Renders a compact ASCII bar chart (one row per distinct value, bars
    /// scaled to `width` characters).
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let max_count = self.counts.values().copied().max().unwrap_or(0);
        for (v, c) in self.iter() {
            let bar_len = if max_count == 0 {
                0
            } else {
                ((c as f64 / max_count as f64) * width as f64).round() as usize
            };
            out.push_str(&format!(
                "{v:>8} | {:<width$} {c}\n",
                "#".repeat(bar_len.max(usize::from(c > 0)))
            ));
        }
        out
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Self::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let h = Histogram::from_values(&[1, 1, 2, 5]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn quantiles() {
        let h: Histogram = (1..=100).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        // h = 0.5·99 = 49.5: midway between the 50th and 51st observations
        // (50.5), rounded half away from zero.
        assert_eq!(h.quantile(0.5), Some(51));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_range_checked() {
        let _ = Histogram::from_values(&[1]).quantile(1.5);
    }

    #[test]
    fn render_shows_bars() {
        let h = Histogram::from_values(&[0, 0, 0, 7]);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert!(s.contains('7'));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn min_and_mean() {
        let h = Histogram::from_values(&[2, 4, 6]);
        assert_eq!(h.min(), Some(2));
        assert_eq!(h.mean(), Some(4.0));
        assert_eq!(Histogram::new().min(), None);
        assert_eq!(Histogram::new().mean(), None);
    }

    #[test]
    fn percentiles_interpolate_by_rank() {
        // 1000 observations 1..=1000: h = q·999, interpolated then rounded.
        // p50 lands midway between 500 and 501 (→ 501); the tail ranks all
        // round back onto their lower order statistic.
        let h: Histogram = (1..=1000).collect();
        let p = h.percentiles().expect("non-empty");
        assert_eq!(
            p,
            Percentiles {
                p50: 501,
                p90: 900,
                p99: 990,
                p999: 999,
                max: 1000,
            }
        );
        assert_eq!(Histogram::new().percentiles(), None);
        // A single observation is every percentile.
        let one = Histogram::from_values(&[7]);
        let p = one.percentiles().unwrap();
        assert_eq!((p.p50, p.p999, p.max), (7, 7, 7));
    }

    #[test]
    fn tiny_sample_counts_do_not_collapse_to_max() {
        // n = 2: h = q·1, so every percentile interpolates between the two
        // observations instead of jumping to the max.
        let two = Histogram::from_values(&[10, 20]);
        let p = two.percentiles().unwrap();
        assert_eq!(p.p50, 15);
        assert_eq!(p.p90, 19);
        assert_eq!(p.max, 20);
        assert!(p.p90 < p.max, "p90 must not collapse onto the max at n=2");
        // n = 3: the median is the exact middle observation; p90 sits
        // between the 2nd and 3rd.
        let three = Histogram::from_values(&[10, 20, 30]);
        let p = three.percentiles().unwrap();
        assert_eq!(p.p50, 20);
        assert_eq!(p.p90, 28);
        assert!(p.p90 < p.max);
        // Duplicated values interpolate between equal order statistics
        // (a flat segment), so ties stay exact.
        let ties = Histogram::from_values(&[5, 5, 5, 40]);
        assert_eq!(ties.quantile(0.5), Some(5));
        assert_eq!(ties.quantile(0.25), Some(5));
    }

    #[test]
    fn len_and_is_empty_track_total() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        h.push(9);
        h.push(9);
        assert!(!h.is_empty());
        assert_eq!(h.len(), 2);
        assert_eq!(h.len(), h.total());
    }

    #[test]
    fn percentiles_on_empty_are_defined() {
        // The empty outcome is part of the API contract: every order
        // statistic is None, and stays None regardless of how the empty
        // histogram was produced.
        let fresh = Histogram::new();
        assert_eq!(fresh.percentiles(), None);
        assert_eq!(fresh.quantile(0.99), None);
        assert_eq!(fresh.min(), None);
        assert_eq!(fresh.max(), None);
        assert_eq!(fresh.mean(), None);
        let mut merged_empty = Histogram::new();
        merged_empty.merge(&Histogram::new());
        assert_eq!(merged_empty.percentiles(), None);
        let from_nothing = Histogram::from_values(&[]);
        assert_eq!(from_nothing.percentiles(), None);
        assert!(from_nothing.is_empty());
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Histogram::from_values(&[1, 1, 5]);
        let b = Histogram::from_values(&[1, 2, 9]);
        a.merge(&b);
        let concat = Histogram::from_values(&[1, 1, 5, 1, 2, 9]);
        assert_eq!(a, concat);
        assert_eq!(a.total(), 6);
        assert_eq!(a.count(1), 3);
        // Merging an empty histogram is a no-op; merging into one copies.
        let mut empty = Histogram::new();
        empty.merge(&concat);
        assert_eq!(empty, concat);
        a.merge(&Histogram::new());
        assert_eq!(a, concat);
    }

    #[test]
    fn iterator_construction() {
        let h: Histogram = vec![3u64, 3, 9].into_iter().collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(3, 2), (9, 1)]);
    }
}
