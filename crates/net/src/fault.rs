//! Deterministic fault injection for the socket layer.
//!
//! [`FaultyStream`] wraps a [`TcpStream`] and, driven by a seeded RNG,
//! perturbs its IO the ways real networks do: **partial writes** (a write
//! accepts only a prefix, exercising every `write_all` loop), **short
//! reads** (a read fills only a prefix, exercising `read_exact`
//! reassembly), **injected delays** (latency jitter), and **mid-frame
//! disconnects** (the socket is shut down partway through a frame, so the
//! peer sees a truncated stream). The same [`FaultPlan`] seed reproduces
//! the same fault sequence for the same IO sequence — chaos tests are
//! replayable, not flaky.
//!
//! The wrapper sits *under* the framing layer on both sides:
//! [`NetConfig::fault`](crate::NetConfig::fault) injects on every admitted
//! server connection, and
//! [`RetryingClient`](crate::RetryingClient) injects on its own
//! connections. Faults corrupt *delivery*, never payloads — a frame either
//! arrives intact or the connection dies — so a client that retries can
//! be wrong only if the protocol is; the chaos campaign in `asgd-chaos`
//! asserts exactly that (zero wrong answers under churn).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded probabilities for each fault class. The default plan is a
/// passthrough: every probability zero, no disconnect budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-stream fault RNG.
    pub seed: u64,
    /// Probability an IO operation is delayed first.
    pub delay_prob: f64,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
    /// Probability a write accepts only a prefix of the buffer.
    pub partial_write_prob: f64,
    /// Probability a read fills only a prefix of the buffer.
    pub short_read_prob: f64,
    /// Probability an IO operation tears the connection down mid-frame.
    pub disconnect_prob: f64,
    /// Disconnects this plan may inject in total (per stream).
    pub max_disconnects: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            partial_write_prob: 0.0,
            short_read_prob: 0.0,
            disconnect_prob: 0.0,
            max_disconnects: 0,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    #[must_use]
    pub fn passthrough() -> Self {
        Self::default()
    }

    /// An aggressive-but-bounded plan for chaos tests: frequent partial
    /// writes and short reads, occasional small delays, and up to
    /// `max_disconnects` mid-frame disconnects.
    #[must_use]
    pub fn chaotic(seed: u64) -> Self {
        Self {
            seed,
            delay_prob: 0.05,
            max_delay: Duration::from_millis(2),
            partial_write_prob: 0.4,
            short_read_prob: 0.4,
            disconnect_prob: 0.02,
            max_disconnects: 2,
        }
    }

    /// True when this plan can never perturb IO.
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self.partial_write_prob <= 0.0
            && self.short_read_prob <= 0.0
            && self.delay_prob <= 0.0
            && (self.disconnect_prob <= 0.0 || self.max_disconnects == 0)
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the delay fault class.
    #[must_use]
    pub fn delays(mut self, prob: f64, max_delay: Duration) -> Self {
        self.delay_prob = prob;
        self.max_delay = max_delay;
        self
    }

    /// Sets the partial-write probability.
    #[must_use]
    pub fn partial_writes(mut self, prob: f64) -> Self {
        self.partial_write_prob = prob;
        self
    }

    /// Sets the short-read probability.
    #[must_use]
    pub fn short_reads(mut self, prob: f64) -> Self {
        self.short_read_prob = prob;
        self
    }

    /// Sets the disconnect fault class.
    #[must_use]
    pub fn disconnects(mut self, prob: f64, budget: u32) -> Self {
        self.disconnect_prob = prob;
        self.max_disconnects = budget;
        self
    }

    /// The same plan re-seeded for a child stream: connection `salt` under
    /// one campaign seed gets its own deterministic fault sequence.
    #[must_use]
    pub fn child(&self, salt: u64) -> Self {
        let mut child = *self;
        // SplitMix64 finalizer: decorrelates consecutive salts.
        let mut z = self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        child.seed = z ^ (z >> 31);
        child
    }
}

/// A [`TcpStream`] with deterministic fault injection under the framing
/// layer. Constructed with a passthrough plan it behaves exactly like the
/// bare stream.
#[derive(Debug)]
pub struct FaultyStream {
    inner: TcpStream,
    plan: FaultPlan,
    rng: StdRng,
    disconnects_left: u32,
}

impl FaultyStream {
    /// Wraps `inner` under `plan`.
    #[must_use]
    pub fn new(inner: TcpStream, plan: FaultPlan) -> Self {
        Self {
            rng: StdRng::seed_from_u64(plan.seed),
            disconnects_left: plan.max_disconnects,
            inner,
            plan,
        }
    }

    /// Wraps `inner` with no faults at all.
    #[must_use]
    pub fn passthrough(inner: TcpStream) -> Self {
        Self::new(inner, FaultPlan::passthrough())
    }

    /// The underlying socket, for timeouts and shutdown.
    #[must_use]
    pub fn get_ref(&self) -> &TcpStream {
        &self.inner
    }

    fn roll(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen::<f64>() < prob
    }

    fn maybe_delay(&mut self) {
        if self.roll(self.plan.delay_prob) && !self.plan.max_delay.is_zero() {
            let nanos = self.plan.max_delay.as_nanos().min(u128::from(u64::MAX / 2)) as u64;
            std::thread::sleep(Duration::from_nanos(self.rng.gen_range(0..nanos + 1)));
        }
    }

    /// Tears the connection down and reports the error the peer of a dying
    /// socket would see.
    fn disconnect(&mut self) -> std::io::Error {
        let _ = self.inner.shutdown(std::net::Shutdown::Both);
        std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "injected fault: connection torn down mid-frame",
        )
    }

    fn take_disconnect(&mut self) -> bool {
        if self.disconnects_left > 0 && self.roll(self.plan.disconnect_prob) {
            self.disconnects_left -= 1;
            true
        } else {
            false
        }
    }
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.maybe_delay();
        if self.take_disconnect() {
            return Err(self.disconnect());
        }
        let len = if buf.len() > 1 && self.roll(self.plan.short_read_prob) {
            self.rng.gen_range(1..buf.len())
        } else {
            buf.len()
        };
        self.inner.read(&mut buf[..len])
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.maybe_delay();
        if self.take_disconnect() {
            // A mid-frame tear: deliver a random prefix, then kill the
            // socket, so the peer sees a truncated frame followed by EOF.
            if !buf.is_empty() {
                let torn = self.rng.gen_range(0..buf.len());
                if torn > 0 {
                    let _ = self.inner.write(&buf[..torn]);
                    let _ = self.inner.flush();
                }
            }
            return Err(self.disconnect());
        }
        let len = if buf.len() > 1 && self.roll(self.plan.partial_write_prob) {
            self.rng.gen_range(1..buf.len())
        } else {
            buf.len()
        };
        self.inner.write(&buf[..len])
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).expect("connects");
        let (b, _) = listener.accept().expect("accepts");
        (a, b)
    }

    #[test]
    fn passthrough_moves_bytes_unchanged() {
        let (a, b) = pair();
        let mut tx = FaultyStream::passthrough(a);
        let mut rx = FaultyStream::passthrough(b);
        tx.write_all(b"hello faults").expect("writes");
        let mut got = [0_u8; 12];
        rx.read_exact(&mut got).expect("reads");
        assert_eq!(&got, b"hello faults");
        assert!(FaultPlan::default().is_passthrough());
        assert!(!FaultPlan::chaotic(1).is_passthrough());
    }

    #[test]
    fn partial_writes_and_short_reads_still_deliver_every_byte() {
        let (a, b) = pair();
        let plan = FaultPlan::default()
            .seed(42)
            .partial_writes(0.9)
            .short_reads(0.9);
        let mut tx = FaultyStream::new(a, plan);
        let mut rx = FaultyStream::new(b, plan.child(1));
        let payload: Vec<u8> = (0..=255).collect();
        tx.write_all(&payload)
            .expect("write_all loops over partials");
        let mut got = vec![0_u8; payload.len()];
        rx.read_exact(&mut got)
            .expect("read_exact loops over shorts");
        assert_eq!(got, payload, "fragmentation must never corrupt bytes");
    }

    #[test]
    fn disconnect_budget_is_respected_and_kills_the_socket() {
        let (a, b) = pair();
        let plan = FaultPlan::default().seed(7).disconnects(1.0, 1);
        let mut tx = FaultyStream::new(a, plan);
        let err = tx.write(b"doomed").expect_err("first write disconnects");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // Budget exhausted: the wrapper stops injecting, but the socket is
        // already dead, so the OS reports the failure from here on.
        assert!(tx.write(b"after").is_err());
        drop(b);
    }

    #[test]
    fn child_plans_decorrelate_but_reproduce() {
        let plan = FaultPlan::chaotic(99);
        assert_eq!(plan.child(3), plan.child(3), "same salt, same plan");
        assert_ne!(plan.child(3).seed, plan.child(4).seed);
        assert_ne!(plan.child(3).seed, plan.seed);
    }
}
