//! **Lemma 6.2, Lemma 6.4, §2's `τ_avg ≤ 2n`** — contention-structure
//! audits on real executions.
//!
//! These are the combinatorial facts the `√(τ_max·n)` analysis rests on.
//! Each audit replays lock-free SGD under several schedulers (benign and
//! adversarial) and checks the stated inequality on the recorded execution.
//!
//! Spec-driven: every execution is one [`RunSpec`] differing only in the
//! [`SchedulerSpec`]; the Lemma 6.2/6.4 audits need the raw iteration
//! records, so the runs go through the driver's detailed simulated entry
//! point ([`asgd_driver::run_simulated_lockfree_detailed`]) — fanned out per
//! scheduler on the session driver's worker pool
//! ([`Driver::run_many_with`]), which is sound here because every spec
//! carries its own seed and the simulated backend is deterministic.

use crate::ExperimentOutput;
use asgd_core::runner::LockFreeRun;
use asgd_driver::{
    run_simulated_lockfree_detailed, BackendKind, Driver, RunReport, RunSpec, SchedulerSpec,
};
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_oracle::OracleSpec;

fn schedulers(include_stale: bool) -> Vec<(&'static str, SchedulerSpec)> {
    let mut v = vec![
        ("round-robin", SchedulerSpec::RoundRobin),
        ("random", SchedulerSpec::Random { seed: 11 }),
        (
            "delay-adversary(16)",
            SchedulerSpec::BoundedDelay { budget: 16 },
        ),
    ];
    if include_stale {
        v.push((
            "stale-gradient(8)",
            SchedulerSpec::StaleGradient {
                runner: 0,
                victim: 1,
                delay: 8,
            },
        ));
    }
    v
}

fn audit_spec(scheduler: SchedulerSpec, n: usize, iterations: u64, seed: u64) -> RunSpec {
    RunSpec::new(
        OracleSpec::new("noisy-quadratic", 4).sigma(1.0),
        BackendKind::SimulatedLockFree,
    )
    .threads(n)
    .iterations(iterations)
    .learning_rate(0.02)
    .x0(vec![1.0; 4])
    .scheduler(scheduler)
    .seed(seed)
}

/// Single-run variant of [`execute_all`], kept for targeted audits in tests.
#[cfg(test)]
fn execute(
    scheduler: SchedulerSpec,
    n: usize,
    iterations: u64,
    seed: u64,
) -> (RunReport, LockFreeRun) {
    run_simulated_lockfree_detailed(&audit_spec(scheduler, n, iterations, seed))
        .expect("audit spec runs")
}

/// Runs every scheduler's audit concurrently on the session driver's pool,
/// returning `(name, report, detailed run)` per scheduler, in input order.
fn execute_all(
    schedulers: &[(&'static str, SchedulerSpec)],
    n: usize,
    iterations: u64,
    seed: u64,
) -> Vec<(&'static str, RunReport, LockFreeRun)> {
    let specs: Vec<RunSpec> = schedulers
        .iter()
        .map(|&(_, sched)| audit_spec(sched, n, iterations, seed))
        .collect();
    let results = Driver::new().run_many_with(&specs, run_simulated_lockfree_detailed);
    schedulers
        .iter()
        .zip(results)
        .map(|(&(name, _), result)| {
            let (report, run) = result.expect("audit spec runs");
            (name, report, run)
        })
        .collect()
}

/// **Lemma 6.2**: in any window where `K·n` consecutive iterations start,
/// fewer than `n` *bad* iterations complete.
#[must_use]
pub fn run_l62(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("l62");
    let n = 4;
    let iterations = if quick { 200 } else { 2000 };
    let mut table = Table::new(
        "Lemma 6.2 audit: bad-iteration completions per K·n-start window (< n required)",
        &[
            "scheduler",
            "K",
            "windows",
            "max bad completions",
            "bound n",
            "holds",
        ],
    );
    for (name, _, run) in execute_all(&schedulers(true), n, iterations, 0x62) {
        for k in [1u64, 2, 4] {
            if let Some(audit) = run.execution.contention.lemma_6_2(k) {
                table.row(&[
                    name.to_string(),
                    k.to_string(),
                    audit.windows.to_string(),
                    audit.max_bad_completions.to_string(),
                    audit.bound.to_string(),
                    audit.holds.to_string(),
                ]);
            }
        }
    }
    out.tables.push(table);
    out
}

/// **Lemma 6.4**: `max_t Σ_m 1{τ_{t+m} ≥ m} ≤ 2√(τ_max·n)`.
#[must_use]
pub fn run_l64(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("l64");
    let n = 4;
    let iterations = if quick { 200 } else { 2000 };
    let mut table = Table::new(
        "Lemma 6.4 audit: max_t Σ_m 1{τ_t+m ≥ m} vs 2√(tau_max·n)",
        &[
            "scheduler",
            "tau_max (staleness)",
            "max sum",
            "2√(tau_max·n)",
            "holds",
        ],
    );
    for (name, report, run) in execute_all(&schedulers(true), n, iterations, 0x64) {
        let audit = run.execution.contention.lemma_6_4();
        let summary = report.contention.as_ref().expect("simulated run");
        table.row(&[
            name.to_string(),
            summary.staleness_max.to_string(),
            audit.max_sum.to_string(),
            fmt_f(audit.bound),
            audit.holds.to_string(),
        ]);
    }
    out.tables.push(table);
    out
}

/// **§2**: the Gibson–Gramoli average-contention bound `τ_avg ≤ 2n`.
/// This audit needs only the unified report's contention summary.
#[must_use]
pub fn run_tavg(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("tavg");
    let iterations = if quick { 200 } else { 2000 };
    let mut table = Table::new(
        "τ_avg ≤ 2n (Gibson–Gramoli) across schedulers and thread counts",
        &["scheduler", "n", "tau_avg", "tau_max", "2n", "holds"],
    );
    let ns: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    for &n in ns {
        for (name, report, _) in execute_all(&schedulers(n >= 2), n, iterations, 0xA7 + n as u64) {
            let c = report.contention.as_ref().expect("simulated run");
            table.row(&[
                name.to_string(),
                n.to_string(),
                fmt_f(c.tau_avg),
                c.tau_max.to_string(),
                (2 * n).to_string(),
                c.gibson_gramoli_holds.to_string(),
            ]);
        }
    }
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_6_2_holds_on_all_schedulers() {
        let out = run_l62(true);
        let rendered = out.tables[0].render();
        assert!(
            !rendered.contains("false"),
            "Lemma 6.2 violated:\n{rendered}"
        );
        assert!(
            out.tables[0].len() >= 4,
            "several scheduler×K rows expected"
        );
    }

    #[test]
    fn lemma_6_4_holds_on_all_schedulers() {
        let out = run_l64(true);
        let rendered = out.tables[0].render();
        assert!(
            !rendered.contains("false"),
            "Lemma 6.4 violated:\n{rendered}"
        );
    }

    #[test]
    fn tau_avg_bound_holds_everywhere() {
        let out = run_tavg(true);
        let rendered = out.tables[0].render();
        assert!(
            !rendered.contains("false"),
            "τ_avg ≤ 2n violated:\n{rendered}"
        );
    }

    #[test]
    fn adversary_rows_show_contention() {
        // The delay adversary must actually produce τ_max well above the
        // benign schedulers, otherwise the audits are vacuous.
        let (benign, _) = execute(SchedulerSpec::RoundRobin, 4, 200, 1);
        let (adv, _) = execute(SchedulerSpec::BoundedDelay { budget: 16 }, 4, 200, 1);
        let (b, a) = (
            benign.contention.as_ref().unwrap().tau_max,
            adv.contention.as_ref().unwrap().tau_max,
        );
        assert!(a > b, "adversary τ_max {a} vs benign {b}");
    }
}
