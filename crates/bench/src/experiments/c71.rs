//! **Corollary 7.1** — FullSGD (Algorithm 2) reaches `E‖r − x*‖ ≤ √ε` with
//! `O(T·log(α·2Mn/√ε))` iterations.
//!
//! Measured: for a sweep of targets `ε`, derive the epoch budget from the
//! paper's formula, run simulated Algorithm 2 over several seeds, and check
//! the mean final distance lands below the target. Also verifies
//! `r = snapshot + ΣAcc` equals the final model (the line-9 collection is
//! exact).

use crate::ExperimentOutput;
use asgd_core::full_sgd::{run_simulated, FullSgdConfig};
use asgd_metrics::table::fmt_f;
use asgd_metrics::{trial_stats, Table};
use asgd_oracle::GradientOracle;
use asgd_shmem::sched::RandomScheduler;
use asgd_theory::corollary_7_1;
use std::sync::Arc;

/// One sweep row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Success threshold on squared distance.
    pub eps: f64,
    /// Halving epochs from the paper's formula.
    pub halving_epochs: usize,
    /// Total iterations executed (`T × total epochs`).
    pub total_iterations: u64,
    /// Mean final distance `‖r − x*‖` over trials.
    pub mean_dist: f64,
    /// The target `√ε`.
    pub target: f64,
    /// Whether the mean distance met the target.
    pub holds: bool,
}

/// Runs the sweep.
#[must_use]
pub fn sweep(quick: bool) -> Vec<Row> {
    let d = 2;
    let sigma = 1.0;
    let n = 3;
    let alpha0 = 0.2;
    let t_per_epoch: u64 = if quick { 300 } else { 1500 };
    let trials: u64 = if quick { 4 } else { 20 };
    let oracle = super::quad(d, sigma);
    let consts = oracle.constants(4.0);
    let epss: &[f64] = if quick {
        &[0.25, 0.04]
    } else {
        &[0.25, 0.04, 0.01, 0.0025]
    };
    epss.iter()
        .map(|&eps| {
            let halving = corollary_7_1::epoch_count(alpha0, &consts, n, eps);
            let cfg = FullSgdConfig {
                alpha0,
                epoch_iterations: t_per_epoch,
                halving_epochs: halving,
            };
            let stats = trial_stats(trials, 0x71 ^ (eps.to_bits() >> 32), |seed| {
                let report = run_simulated(
                    Arc::clone(&oracle),
                    cfg,
                    n,
                    &[2.0, -2.0],
                    RandomScheduler::new(seed ^ 0x5EED),
                    seed,
                    None,
                );
                report.dist_to_opt
            });
            let target = eps.sqrt();
            Row {
                eps,
                halving_epochs: halving,
                total_iterations: corollary_7_1::total_iterations(t_per_epoch, halving),
                mean_dist: stats.mean(),
                target,
                holds: stats.mean() <= target,
            }
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("c71");
    let rows = sweep(quick);
    let mut table = Table::new(
        "Corollary 7.1: FullSGD epochs vs target (α₀=0.2, n=3, T/epoch from config)",
        &[
            "eps",
            "halving epochs (paper formula)",
            "total iterations",
            "mean ‖r−x*‖",
            "target √eps",
            "holds",
        ],
    );
    for r in &rows {
        table.row(&[
            fmt_f(r.eps),
            r.halving_epochs.to_string(),
            r.total_iterations.to_string(),
            fmt_f(r.mean_dist),
            fmt_f(r.target),
            r.holds.to_string(),
        ]);
    }
    out.tables.push(table);
    out.notes.push(format!(
        "epoch budget grows logarithmically: {:?} epochs for eps {:?}",
        rows.iter().map(|r| r.halving_epochs).collect::<Vec<_>>(),
        rows.iter().map(|r| r.eps).collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_distance_meets_target() {
        for r in sweep(true) {
            assert!(
                r.holds,
                "ε={}: mean dist {} vs target {}",
                r.eps, r.mean_dist, r.target
            );
        }
    }

    #[test]
    fn epoch_budget_grows_as_eps_shrinks() {
        let rows = sweep(true);
        assert!(rows[1].halving_epochs > rows[0].halving_epochs);
        assert!(rows[1].total_iterations > rows[0].total_iterations);
    }
}
