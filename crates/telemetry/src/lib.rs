//! `asgd-telemetry` — the runtime's observability plane: a lock-free
//! [`MetricsRegistry`], Prometheus-text exposition ([`render`]/[`parse`]),
//! and a structured JSONL [`TraceSink`].
//!
//! The paper's bounds are driven by quantities the system already produces
//! — the delay τ (per-shard update counters), snapshot staleness, queue lag,
//! shed-tier state — and this crate is where they become *scrapeable*:
//! every tier records into the process-wide [`global`] registry, the net
//! tier's `stats-scrape` opcode renders it live, and `experiments stats`
//! scrapes it from the CLI.
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths stay lock-free and unshared.** Counters and histograms
//!    stripe updates over cache-line-padded per-thread cells (relaxed
//!    atomics), exactly like `ShardedModel`'s per-shard update counters, so
//!    instrumentation never introduces a coherence hot spot. The committed
//!    bench gate holds instrumented hogwild throughput at ≥ 97% of
//!    uninstrumented (d = 1M, 4 pinned threads).
//! 2. **Collection is validated.** [`MetricsRegistry::snapshot`]
//!    double-collects every monotone cell and flags the result `coherent`
//!    only when two collects agree — the registry-wide generalisation of
//!    `ShardedModel::coherent_update_counts`, model-checked in `asgd-chaos`
//!    (`TelemetryCellModel`, with a seeded torn-read twin the explorer
//!    catches).
//! 3. **Exposition is lossless.** `parse(render(snapshot)) == snapshot` for
//!    every snapshot (property-tested below), so a scrape is a transport of
//!    the registry state, not a lossy pretty-print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod registry;
pub mod trace;

pub use expo::{parse, render, ParseError};
pub use registry::{
    global, thread_stripe, Counter, Gauge, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    TelemetryHistogram, BUCKET_COUNT, STRIPES,
};
pub use trace::{replay, FieldValue, Span, TraceSink};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A plausible metric name, optionally label-suffixed.
    fn name_strategy() -> impl Strategy<Value = String> {
        (0_u64..4, 0_u64..8).prop_map(|(kind, n)| {
            let base = ["asgd_updates_total", "asgd_tau", "latency_ns", "q_depth"][kind as usize];
            if n % 2 == 0 {
                base.to_string()
            } else {
                format!("{base}{{model=\"m{n}\",shard=\"{}\"}}", n / 2)
            }
        })
    }

    fn histogram_strategy() -> impl Strategy<Value = HistogramSnapshot> {
        (
            proptest::collection::vec((0_u64..30, 1_u64..1000), 0..6),
            0_u64..1_000_000,
        )
            .prop_map(|(raw, sum)| {
                // Strictly increasing bounds with monotone cumulative counts.
                let mut bounds: Vec<u64> = raw.iter().map(|&(b, _)| 1 << b).collect();
                bounds.sort_unstable();
                bounds.dedup();
                let mut cum = 0;
                let buckets: Vec<(u64, u64)> = bounds
                    .into_iter()
                    .zip(raw.iter())
                    .map(|(le, &(_, c))| {
                        cum += c;
                        (le, cum)
                    })
                    .collect();
                let count = buckets.last().map_or(0, |&(_, c)| c);
                HistogramSnapshot {
                    buckets,
                    count,
                    sum,
                }
            })
    }

    /// Gauge values from the full finite f64 grid Rust's `Display` renders
    /// shortest-exact (including negatives and subnormal-ish magnitudes).
    fn gauge_value_strategy() -> impl Strategy<Value = f64> {
        (any::<u64>(), 0_u64..4).prop_map(|(bits, kind)| match kind {
            0 => f64::from_bits(bits % (1 << 40)) * 1e-12,
            1 => -((bits % 10_000) as f64) / 7.0,
            2 => (bits % 1_000_000) as f64,
            _ => {
                let v = f64::from_bits(bits);
                if v.is_finite() {
                    v
                } else {
                    0.5
                }
            }
        })
    }

    fn dedup_by_name<T>(mut items: Vec<(String, T)>) -> Vec<(String, T)> {
        items.sort_by(|a, b| a.0.cmp(&b.0));
        items.dedup_by(|a, b| a.0 == b.0);
        items
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Satellite: any `MetricsSnapshot` round-trips the exposition text
        /// format exactly.
        #[test]
        fn exposition_round_trips_exactly(
            coherent in any::<bool>(),
            counters in proptest::collection::vec((name_strategy(), any::<u64>()), 0..5),
            gauges in proptest::collection::vec((name_strategy(), gauge_value_strategy()), 0..5),
            hists in proptest::collection::vec((name_strategy(), histogram_strategy()), 0..3),
        ) {
            let snap = MetricsSnapshot {
                coherent,
                counters: dedup_by_name(counters),
                gauges: dedup_by_name(gauges),
                // Histogram series parse by base-name suffix match, so keep
                // base names distinct the way the registry does (one entry
                // per name).
                histograms: dedup_by_name(hists)
                    .into_iter()
                    .map(|(n, h)| (n.split('{').next().unwrap_or(&n).to_string(), h))
                    .collect::<std::collections::BTreeMap<_, _>>()
                    .into_iter()
                    .collect(),
            };
            let text = render(&snap);
            let back = parse(&text).expect("rendered exposition parses");
            prop_assert_eq!(back, snap);
        }
    }

    #[test]
    fn live_registry_snapshot_round_trips() {
        let r = MetricsRegistry::new();
        r.counter("asgd_rt_total").add(41);
        r.gauge("asgd_rt_gauge{model=\"m\"}").set(-2.75);
        let h = r.histogram("asgd_rt_latency_ns");
        for v in [3, 900, 900, 1 << 20] {
            h.record(v);
        }
        let snap = r.snapshot();
        let back = parse(&render(&snap)).expect("parses");
        assert_eq!(back, snap);
    }
}
