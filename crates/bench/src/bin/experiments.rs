//! Experiment CLI: paper-claim tables *and* spec-driven single runs.
//!
//! Table mode (regenerates the paper artifacts, as before):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- all
//! cargo run -p asgd-bench --release --bin experiments -- t51 t65
//! cargo run -p asgd-bench --release --bin experiments -- --quick all
//! ```
//!
//! Run mode (the unified driver from the command line — one `RunSpec`, any
//! backend, JSON out):
//!
//! ```text
//! cargo run -p asgd-bench --release --bin experiments -- run \
//!     --backend hogwild --oracle noisy-quadratic --dim 8 --threads 4 \
//!     --iterations 50000 --alpha 0.02 --seed 7 --json out.json
//! cargo run -p asgd-bench --release --bin experiments -- run --backend all --pretty
//! ```
//!
//! `--json PATH` writes the report; if `PATH` is a directory, files named
//! `BENCH_<backend>.json` are created inside it. Without `--json`, reports
//! print to stdout.

use asgd_bench::{experiment_ids, run_experiment};
use asgd_driver::{
    run_spec, BackendKind, Driver, DriverError, ModelLayoutSpec, RunReport, RunSpec, SchedulerSpec,
    SparsePathSpec, UpdateOrderSpec,
};
use asgd_oracle::{registry, OracleSpec};
use std::path::{Path, PathBuf};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_mode(&args[1..]),
        _ => table_mode(args),
    }
}

// ---------------------------------------------------------------- run mode

struct RunArgs {
    backend: String,
    oracle: OracleSpec,
    threads: usize,
    iterations: u64,
    alpha: f64,
    halving_epochs: Option<usize>,
    scheduler: SchedulerSpec,
    seed: u64,
    eps: Option<f64>,
    max_steps: Option<u64>,
    x0: Option<Vec<f64>>,
    layout: ModelLayoutSpec,
    order: UpdateOrderSpec,
    sparse: SparsePathSpec,
    trajectory_every: Option<u64>,
    json: Option<PathBuf>,
    pretty: bool,
    parallel: bool,
}

fn usage_run() -> ! {
    eprintln!(
        "usage: experiments run [options]\n\
         \n\
         options (defaults in parentheses):\n\
         \x20 --backend NAME|all     execution model ({backends}; default hogwild)\n\
         \x20 --oracle KIND          workload ({oracles}; default noisy-quadratic)\n\
         \x20 --dim D                model dimension (4)\n\
         \x20 --sigma S              noise level (0.1)\n\
         \x20 --dataset M            dataset size for dataset oracles (500)\n\
         \x20 --batch B              minibatch size (32)\n\
         \x20 --lambda L             ridge coefficient (0.1)\n\
         \x20 --threads N            worker threads (2)\n\
         \x20 --iterations T         total iteration budget (10000)\n\
         \x20 --alpha A              learning rate (0.05)\n\
         \x20 --halving-epochs E     use Algorithm 2's halving schedule with E halvings\n\
         \x20 --scheduler SPEC       simulated scheduler: serial | round-robin |\n\
         \x20                        iteration-serial | random:SEED | delay:BUDGET |\n\
         \x20                        stale:DELAY (round-robin)\n\
         \x20 --seed S               master seed (0)\n\
         \x20 --eps EPS              success region threshold on ‖x−x*‖²\n\
         \x20 --x0 V1,V2,…           initial point (origin; must match --dim)\n\
         \x20 --max-steps K          simulated step cap\n\
         \x20 --layout L             native model layout: compact | padded (compact)\n\
         \x20 --order O              native memory order: seqcst | relaxed (seqcst)\n\
         \x20 --sparse P             gradient path: auto | dense | sparse (auto)\n\
         \x20 --trajectory-every K   record a trajectory sample every K iterations\n\
         \x20 --parallel             run multiple backends concurrently (Driver::run_many)\n\
         \x20 --json PATH            write JSON report(s); directory ⇒ BENCH_<backend>.json\n\
         \x20 --pretty               pretty-print JSON",
        backends = BackendKind::all()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(" | "),
        oracles = registry::known_kinds().join(" | "),
    );
    exit(2);
}

fn run_mode(args: &[String]) {
    let parsed = parse_run_args(args);
    let mut spec = RunSpec::new(parsed.oracle.clone(), BackendKind::Hogwild)
        .threads(parsed.threads)
        .iterations(parsed.iterations)
        .seed(parsed.seed)
        .scheduler(parsed.scheduler)
        .layout(parsed.layout)
        .order(parsed.order)
        .sparse(parsed.sparse);
    spec = match parsed.halving_epochs {
        Some(epochs) => spec.halving(parsed.alpha, epochs),
        None => spec.learning_rate(parsed.alpha),
    };
    if let Some(eps) = parsed.eps {
        spec = spec.success_radius_sq(eps);
    }
    if let Some(steps) = parsed.max_steps {
        spec = spec.max_steps(steps);
    }
    if let Some(x0) = parsed.x0.clone() {
        spec = spec.x0(x0);
    }
    if let Some(stride) = parsed.trajectory_every {
        spec = spec.trajectory_every(stride);
    }

    let backends: Vec<BackendKind> = if parsed.backend == "all" {
        BackendKind::all().to_vec()
    } else {
        match parsed.backend.parse() {
            Ok(kind) => vec![kind],
            Err(e) => {
                eprintln!("{e}");
                exit(2);
            }
        }
    };

    let specs: Vec<RunSpec> = backends
        .iter()
        .map(|&backend| spec.clone().backend(backend))
        .collect();
    let outcomes: Vec<Result<RunReport, DriverError>> = if parsed.parallel {
        // The session driver's bounded pool: all backends at once, results
        // in spec order.
        Driver::new().run_many(&specs)
    } else {
        specs.iter().map(run_spec).collect()
    };

    let mut reports = Vec::new();
    for (backend, outcome) in backends.iter().zip(outcomes) {
        match outcome {
            Ok(report) => {
                eprintln!(
                    "[{}] T={} dist²={:.3e} wall={:.3}s{}{}",
                    report.backend,
                    report.iterations,
                    report.final_dist_sq,
                    report.wall_time_secs,
                    report
                        .hit_iteration
                        .map(|t| format!(" hit@{t}"))
                        .unwrap_or_default(),
                    report
                        .fingerprint
                        .map(|f| format!(" fp={f:016x}"))
                        .unwrap_or_default(),
                );
                reports.push(report);
            }
            Err(e) => {
                if parsed.backend == "all" {
                    eprintln!("[{backend}] skipped: {e}");
                } else {
                    eprintln!("error: {e}");
                    exit(1);
                }
            }
        }
    }
    if reports.is_empty() {
        eprintln!("error: no backend produced a report");
        exit(1);
    }
    emit_reports(&reports, parsed.json.as_deref(), parsed.pretty);
}

fn emit_reports(reports: &[RunReport], json: Option<&Path>, pretty: bool) {
    let render = |report: &RunReport| {
        if pretty {
            report.to_json_pretty()
        } else {
            report.to_json()
        }
    };
    match json {
        None => {
            for report in reports {
                println!("{}", render(report));
            }
        }
        Some(path) if path.is_dir() => {
            for report in reports {
                let file = path.join(format!("BENCH_{}.json", report.backend));
                if let Err(e) = std::fs::write(&file, render(report) + "\n") {
                    eprintln!("error: writing {}: {e}", file.display());
                    exit(1);
                }
                println!("[json] {}", file.display());
            }
        }
        Some(path) => {
            let payload = if reports.len() == 1 {
                render(&reports[0]) + "\n"
            } else {
                // An array of reports, preserving individual formatting.
                let items: Vec<String> = reports.iter().map(render).collect();
                format!("[{}]\n", items.join(","))
            };
            if let Err(e) = std::fs::write(path, payload) {
                eprintln!("error: writing {}: {e}", path.display());
                exit(1);
            }
            println!("[json] {}", path.display());
        }
    }
}

fn parse_run_args(args: &[String]) -> RunArgs {
    let mut parsed = RunArgs {
        backend: "hogwild".to_string(),
        oracle: OracleSpec::new("noisy-quadratic", 4),
        threads: 2,
        iterations: 10_000,
        alpha: 0.05,
        halving_epochs: None,
        scheduler: SchedulerSpec::RoundRobin,
        seed: 0,
        eps: None,
        max_steps: None,
        x0: None,
        layout: ModelLayoutSpec::Compact,
        order: UpdateOrderSpec::SeqCst,
        sparse: SparsePathSpec::Auto,
        trajectory_every: None,
        json: None,
        pretty: false,
        parallel: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> &str {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("error: {name} needs a value");
                    usage_run();
                }
            }
        };
        macro_rules! parse_to {
            ($name:literal) => {{
                let raw = value($name);
                match raw.parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("error: bad value `{raw}` for {}", $name);
                        exit(2);
                    }
                }
            }};
        }
        match flag.as_str() {
            "--backend" => parsed.backend = value("--backend").to_string(),
            "--oracle" => parsed.oracle.kind = value("--oracle").to_string(),
            "--dim" => parsed.oracle.dim = parse_to!("--dim"),
            "--sigma" => parsed.oracle.sigma = parse_to!("--sigma"),
            "--dataset" => parsed.oracle.dataset = parse_to!("--dataset"),
            "--batch" => parsed.oracle.batch = parse_to!("--batch"),
            "--lambda" => parsed.oracle.lambda = parse_to!("--lambda"),
            "--threads" => parsed.threads = parse_to!("--threads"),
            "--iterations" => parsed.iterations = parse_to!("--iterations"),
            "--alpha" => parsed.alpha = parse_to!("--alpha"),
            "--halving-epochs" => parsed.halving_epochs = Some(parse_to!("--halving-epochs")),
            "--scheduler" => {
                let raw = value("--scheduler");
                parsed.scheduler = match raw.parse() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(2);
                    }
                };
            }
            "--seed" => parsed.seed = parse_to!("--seed"),
            "--eps" => parsed.eps = Some(parse_to!("--eps")),
            "--x0" => {
                let raw = value("--x0");
                match raw.split(',').map(str::trim).map(str::parse).collect() {
                    Ok(x0) => parsed.x0 = Some(x0),
                    Err(_) => {
                        eprintln!("error: bad value `{raw}` for --x0 (want V1,V2,…)");
                        exit(2);
                    }
                }
            }
            "--max-steps" => parsed.max_steps = Some(parse_to!("--max-steps")),
            "--layout" => parsed.layout = parse_to!("--layout"),
            "--order" => parsed.order = parse_to!("--order"),
            "--sparse" => parsed.sparse = parse_to!("--sparse"),
            "--trajectory-every" => {
                parsed.trajectory_every = Some(parse_to!("--trajectory-every"));
            }
            "--json" => parsed.json = Some(PathBuf::from(value("--json"))),
            "--pretty" => parsed.pretty = true,
            "--parallel" => parsed.parallel = true,
            "--help" | "-h" => usage_run(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_run();
            }
        }
    }
    parsed
}

// -------------------------------------------------------------- table mode

fn table_mode(mut args: Vec<String>) {
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if args.is_empty() {
        eprintln!("usage: experiments [--quick] <id…|all>");
        eprintln!("       experiments run [--help for options]");
        eprintln!("known experiments: {}", experiment_ids().join(", "));
        exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiment_ids()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let out_dir = PathBuf::from("target").join("experiments");
    for id in ids {
        let started = std::time::Instant::now();
        let output = run_experiment(id, quick);
        print!("{}", output.render());
        for (i, table) in output.tables.iter().enumerate() {
            let name = if output.tables.len() == 1 {
                output.id.clone()
            } else {
                format!("{}_{i}", output.id)
            };
            match table.write_csv(&out_dir, &name) {
                Ok(path) => println!("[csv] {}", path.display()),
                Err(e) => eprintln!("[csv] failed to write {name}: {e}"),
            }
        }
        println!(
            "[done] {id} in {:.1}s{}\n",
            started.elapsed().as_secs_f64(),
            if quick { " (quick mode)" } else { "" }
        );
    }
}
