//! [`SlidingHistogram`] — a rolling window of recent observations with
//! exact order statistics, built from a ring of [`Histogram`] buckets.
//!
//! The serving front-end's SLO load shedder needs "the p99 of *recent*
//! request latencies", not of everything since boot: a single cumulative
//! [`Histogram`] can never recover after one overload spike, because the
//! spike's samples stay in the tail forever. The sliding window rotates by
//! **observation count** (not wall time), which keeps it deterministic and
//! unit-testable: after `bucket_capacity` pushes the oldest bucket is
//! evicted wholesale, so the window always covers the last
//! `(buckets-1)·bucket_capacity + 1 ..= buckets·bucket_capacity`
//! observations.

use crate::histogram::{Histogram, Percentiles};

/// A bounded window over the most recent observations: a ring of
/// [`Histogram`] buckets rotated every `bucket_capacity` pushes. Quantiles
/// are exact over the union of the live buckets (every value returned was
/// actually observed inside the window).
#[derive(Debug, Clone)]
pub struct SlidingHistogram {
    buckets: Vec<Histogram>,
    current: usize,
    bucket_capacity: u64,
}

impl SlidingHistogram {
    /// A window of `buckets` ring slots, each holding `bucket_capacity`
    /// observations before the oldest slot is evicted. Both are clamped to
    /// at least 1 (a zero-capacity window could never hold an observation).
    #[must_use]
    pub fn new(buckets: usize, bucket_capacity: u64) -> Self {
        Self {
            buckets: vec![Histogram::new(); buckets.max(1)],
            current: 0,
            bucket_capacity: bucket_capacity.max(1),
        }
    }

    /// Records one observation, evicting the oldest bucket first if the
    /// current one is full.
    pub fn push(&mut self, value: u64) {
        if self.buckets[self.current].total() >= self.bucket_capacity {
            self.current = (self.current + 1) % self.buckets.len();
            self.buckets[self.current] = Histogram::new();
        }
        self.buckets[self.current].push(value);
    }

    /// Observations currently inside the window.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.buckets.iter().map(Histogram::total).sum()
    }

    /// True when the window holds no observation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Histogram::is_empty)
    }

    /// Maximum observations the window can hold before eviction
    /// (`buckets · bucket_capacity`).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.buckets.len() as u64 * self.bucket_capacity
    }

    /// The union of the live buckets as one [`Histogram`].
    #[must_use]
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for b in &self.buckets {
            out.merge(b);
        }
        out
    }

    /// The `q`-quantile over the window (`None` when empty).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.merged().quantile(q)
    }

    /// The serving percentile set over the window (`None` when empty —
    /// same defined empty outcome as [`Histogram::percentiles`]).
    #[must_use]
    pub fn percentiles(&self) -> Option<Percentiles> {
        self.merged().percentiles()
    }

    /// Drops every observation, keeping the configured geometry.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = Histogram::new();
        }
        self.current = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_clamped_and_reported() {
        let w = SlidingHistogram::new(0, 0);
        assert_eq!(w.capacity(), 1);
        let w = SlidingHistogram::new(4, 128);
        assert_eq!(w.capacity(), 512);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.percentiles(), None);
        assert_eq!(w.quantile(0.99), None);
    }

    #[test]
    fn window_without_eviction_matches_a_plain_histogram() {
        let mut w = SlidingHistogram::new(4, 100);
        let mut h = Histogram::new();
        for v in 0..300 {
            w.push(v);
            h.push(v);
        }
        assert_eq!(w.len(), 300);
        assert_eq!(w.merged(), h);
        assert_eq!(w.percentiles(), h.percentiles());
    }

    #[test]
    fn old_observations_are_evicted_by_count() {
        // Fill the whole ring with slow observations, then push fast ones:
        // after `capacity` fast pushes every slow sample has been evicted
        // and the p99 recovers. A cumulative histogram never would.
        let mut w = SlidingHistogram::new(4, 50);
        for _ in 0..w.capacity() {
            w.push(1_000_000);
        }
        assert_eq!(w.quantile(0.99), Some(1_000_000));
        for _ in 0..w.capacity() {
            w.push(10);
        }
        assert_eq!(w.quantile(0.99), Some(10), "spike fully forgotten");
        assert!(w.len() <= w.capacity());
    }

    #[test]
    fn eviction_is_wholesale_per_bucket() {
        // 2 buckets × 2: the 5th push evicts observations 1 and 2 together.
        let mut w = SlidingHistogram::new(2, 2);
        for v in [1, 2, 3, 4] {
            w.push(v);
        }
        assert_eq!(w.merged().min(), Some(1));
        w.push(5);
        let m = w.merged();
        assert_eq!(m.min(), Some(3), "oldest bucket evicted wholesale");
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn clear_resets_observations_only() {
        let mut w = SlidingHistogram::new(2, 8);
        w.push(7);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 16);
        w.push(9);
        assert_eq!(w.quantile(1.0), Some(9));
    }
}
