//! Processes: the programs simulated threads run.
//!
//! A [`Process`] is a resumable state machine. The engine polls it to obtain
//! its next [`Action`]; the action is *declared* (pending) until the scheduler
//! fires it, at which point the op's [`OpResult`] is delivered on the next
//! poll. Any randomness a process needs is drawn from the deterministic
//! per-process RNG in [`ProcessCtx`] **at declaration time**, which is what
//! gives the adversary of §2 its strength: it observes the coins (through the
//! declared ops they produce) before deciding the schedule.

use crate::op::{Action, OpResult, Step};
use rand::rngs::StdRng;

/// Context handed to a process on each poll.
#[derive(Debug)]
pub struct ProcessCtx<'a> {
    /// Result of the op declared by the *previous* poll, if that action was an
    /// op (`None` on the first poll and after `Local` actions).
    pub last: Option<OpResult>,
    /// The process's private, deterministic coin source.
    pub rng: &'a mut StdRng,
    /// Global step count at poll time.
    pub step: Step,
}

/// A program executed by one simulated thread.
///
/// Implementations are state machines: each call to [`Process::poll`] must
/// return the next action given the result of the previous one. Returning
/// [`Action::Halt`] permanently retires the process.
pub trait Process {
    /// Declares the process's next action.
    ///
    /// `ctx.last` carries the result of the previously declared op. The
    /// engine guarantees polls alternate with firings: a process is never
    /// polled twice without its previous action having fired (or at start).
    fn poll(&mut self, ctx: &mut ProcessCtx<'_>) -> Action;

    /// Short human-readable label used in traces.
    fn describe(&self) -> String {
        "process".to_string()
    }
}

impl<P: Process + ?Sized> Process for Box<P> {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_>) -> Action {
        (**self).poll(ctx)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Test/diagnostic process: performs `count` fetch&adds of `delta` on model
/// register `idx`, then halts.
///
/// Useful for exercising the engine and schedulers without SGD semantics.
#[derive(Debug, Clone)]
pub struct FaaHammer {
    /// Target model register.
    pub idx: usize,
    /// Addend per op.
    pub delta: f64,
    /// Ops remaining.
    pub remaining: u64,
}

impl FaaHammer {
    /// Creates a hammer that adds `delta` to register `idx` `count` times.
    #[must_use]
    pub fn new(idx: usize, delta: f64, count: u64) -> Self {
        Self {
            idx,
            delta,
            remaining: count,
        }
    }
}

impl Process for FaaHammer {
    fn poll(&mut self, _ctx: &mut ProcessCtx<'_>) -> Action {
        if self.remaining == 0 {
            return Action::Halt;
        }
        self.remaining -= 1;
        Action::op(crate::op::MemOp::FaaF64 {
            idx: self.idx,
            delta: self.delta,
        })
    }

    fn describe(&self) -> String {
        format!("faa-hammer(idx={}, delta={})", self.idx, self.delta)
    }
}

/// Test/diagnostic process: claims slots from counter `counter_idx` via
/// fetch&add until the prior value reaches `limit`, recording how many slots
/// it won. Models the `C.fetch&add(1) ≥ T` loop shape of Algorithm 1 without
/// the gradient work.
#[derive(Debug, Clone)]
pub struct CounterClaimer {
    /// Counter register to claim from.
    pub counter_idx: usize,
    /// Claim bound (`T` in Algorithm 1).
    pub limit: u64,
    /// Number of slots this process successfully claimed.
    pub claimed: u64,
    awaiting: bool,
}

impl CounterClaimer {
    /// Creates a claimer on counter `counter_idx` bounded by `limit`.
    #[must_use]
    pub fn new(counter_idx: usize, limit: u64) -> Self {
        Self {
            counter_idx,
            limit,
            claimed: 0,
            awaiting: false,
        }
    }
}

impl Process for CounterClaimer {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_>) -> Action {
        if self.awaiting {
            self.awaiting = false;
            let prior = ctx
                .last
                .expect("claimer was awaiting a faa result")
                .unwrap_u64();
            if prior >= self.limit {
                return Action::Halt;
            }
            self.claimed += 1;
        }
        self.awaiting = true;
        Action::Op {
            op: crate::op::MemOp::FaaU64 {
                idx: self.counter_idx,
                delta: 1,
            },
            tag: crate::op::OpTag::ClaimIteration,
        }
    }

    fn describe(&self) -> String {
        format!("counter-claimer(limit={})", self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MemOp;
    use rand::SeedableRng;

    fn ctx<'a>(last: Option<OpResult>, rng: &'a mut StdRng) -> ProcessCtx<'a> {
        ProcessCtx { last, rng, step: 0 }
    }

    #[test]
    fn hammer_emits_then_halts() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut h = FaaHammer::new(2, 0.5, 2);
        let a1 = h.poll(&mut ctx(None, &mut rng));
        assert!(matches!(
            a1,
            Action::Op {
                op: MemOp::FaaF64 { idx: 2, .. },
                ..
            }
        ));
        let _ = h.poll(&mut ctx(Some(OpResult::F64(0.0)), &mut rng));
        let a3 = h.poll(&mut ctx(Some(OpResult::F64(0.5)), &mut rng));
        assert_eq!(a3, Action::Halt);
    }

    #[test]
    fn claimer_counts_until_limit() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = CounterClaimer::new(0, 2);
        // Simulate: claim returns 0 (win), 1 (win), 2 (≥ limit → halt).
        assert!(matches!(
            c.poll(&mut ctx(None, &mut rng)),
            Action::Op { .. }
        ));
        assert!(matches!(
            c.poll(&mut ctx(Some(OpResult::U64(0)), &mut rng)),
            Action::Op { .. }
        ));
        assert!(matches!(
            c.poll(&mut ctx(Some(OpResult::U64(1)), &mut rng)),
            Action::Op { .. }
        ));
        assert_eq!(
            c.poll(&mut ctx(Some(OpResult::U64(2)), &mut rng)),
            Action::Halt
        );
        assert_eq!(c.claimed, 2);
    }

    #[test]
    fn boxed_process_delegates() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b: Box<dyn Process> = Box::new(FaaHammer::new(0, 1.0, 1));
        assert!(matches!(
            b.poll(&mut ctx(None, &mut rng)),
            Action::Op { .. }
        ));
        assert!(b.describe().contains("faa-hammer"));
    }
}
