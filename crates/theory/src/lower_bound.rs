//! The §5 lower bound in closed form (Theorem 5.1).
//!
//! Setting: `f(x) = ½x²`, noisy gradients `g̃(x) = x − ũ`, `ũ ~ N(0, σ²)`,
//! two threads. The adversary has both threads compute a gradient at `x₀`,
//! lets the runner execute `τ` iterations, then merges the victim's stale
//! gradient. The paper derives:
//!
//! * without the adversary: `x_τ = (1−α)^τ·x₀ + noise`,
//! * with it: `x_{τ+1} = ((1−α)^τ − α)·x₀ + noise'`,
//! * injected noise variance `α²σ²(1 + (1−(1−α)^{2τ})/(1−(1−α)²))`,
//! * once `2(1−α)^τ ≤ α` (σ = 0): `‖x_{τ+1}‖ ≥ (α/2)‖x₀‖` versus
//!   `(1−α)^τ‖x₀‖`, a slowdown factor `τ·log(1−α)/(log α − log 2) = Ω(τ)`.

/// Deterministic part of the adversary-free iterate: `(1−α)^τ · x₀`.
///
/// # Panics
///
/// Panics unless `0 < α < 1`.
#[must_use]
pub fn clean_contraction(alpha: f64, tau: u64, x0: f64) -> f64 {
    validate_alpha(alpha);
    (1.0 - alpha).powi(tau as i32) * x0
}

/// Deterministic part of the post-merge iterate:
/// `x_{τ+1} = ((1−α)^τ − α) · x₀` (σ = 0 case of the §5 derivation).
///
/// # Panics
///
/// Panics unless `0 < α < 1`.
#[must_use]
pub fn adversarial_iterate(alpha: f64, tau: u64, x0: f64) -> f64 {
    validate_alpha(alpha);
    ((1.0 - alpha).powi(tau as i32) - alpha) * x0
}

/// Variance of the noise term of `x_{τ+1}` (the §5 display):
/// `α²σ²·(1 + (1 − (1−α)^{2τ}) / (1 − (1−α)²))`.
///
/// # Panics
///
/// Panics unless `0 < α < 1` or if `sigma` is negative.
#[must_use]
pub fn adversarial_noise_variance(alpha: f64, tau: u64, sigma: f64) -> f64 {
    validate_alpha(alpha);
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let q = (1.0 - alpha) * (1.0 - alpha);
    let geom = (1.0 - q.powi(tau as i32)) / (1.0 - q);
    alpha * alpha * sigma * sigma * (1.0 + geom)
}

/// The delay threshold of the construction: the smallest `τ` with
/// `2(1−α)^τ ≤ α`, i.e. `τ ≥ log(α/2)/log(1−α)`. This is the `τ_max`
/// Theorem 5.1 says the adversary needs.
///
/// # Panics
///
/// Panics unless `0 < α < 1`.
#[must_use]
pub fn required_delay(alpha: f64) -> u64 {
    validate_alpha(alpha);
    let tau = ((alpha / 2.0).ln() / (1.0 - alpha).ln()).ceil();
    tau.max(1.0) as u64
}

/// The Ω(τ) slowdown factor of Theorem 5.1:
/// `log((1−α)^τ) / log(α/2) = τ·log(1−α)/(log α − log 2)`.
///
/// Interpretation: the clean execution contracts by `(1−α)^τ` over the
/// window, the adversarial one only by `α/2`; in per-iteration log-progress
/// terms the adversarial run is this factor slower.
///
/// # Panics
///
/// Panics unless `0 < α < 1` (which also guarantees `log(α/2) < 0`).
#[must_use]
pub fn slowdown_factor(alpha: f64, tau: u64) -> f64 {
    validate_alpha(alpha);
    tau as f64 * (1.0 - alpha).ln() / (alpha / 2.0).ln()
}

/// Lower bound on the post-merge magnitude once `τ ≥ required_delay(α)`:
/// `‖x_{τ+1}‖ ≥ (α/2)·‖x₀‖` (σ = 0).
///
/// # Panics
///
/// Panics unless `0 < α < 1`.
#[must_use]
pub fn adversarial_magnitude_floor(alpha: f64, x0_abs: f64) -> f64 {
    validate_alpha(alpha);
    alpha / 2.0 * x0_abs
}

fn validate_alpha(alpha: f64) {
    assert!(
        alpha.is_finite() && alpha > 0.0 && alpha < 1.0,
        "alpha must be in (0, 1), got {alpha}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_contraction_shrinks_geometrically() {
        assert!((clean_contraction(0.5, 3, 8.0) - 1.0).abs() < 1e-12);
        assert_eq!(clean_contraction(0.5, 0, 8.0), 8.0);
    }

    #[test]
    fn adversarial_iterate_is_clean_minus_alpha_x0() {
        let (alpha, tau, x0) = (0.2, 10, 4.0);
        let clean = clean_contraction(alpha, tau, x0);
        let adv = adversarial_iterate(alpha, tau, x0);
        assert!((adv - (clean - alpha * x0)).abs() < 1e-12);
    }

    #[test]
    fn required_delay_satisfies_threshold() {
        for alpha in [0.05, 0.1, 0.3, 0.5] {
            let tau = required_delay(alpha);
            assert!(
                2.0 * (1.0 - alpha).powi(tau as i32) <= alpha + 1e-12,
                "τ = {tau} too small for α = {alpha}"
            );
            if tau > 1 {
                assert!(
                    2.0 * (1.0 - alpha).powi(tau as i32 - 1) > alpha,
                    "τ = {tau} not minimal for α = {alpha}"
                );
            }
        }
    }

    #[test]
    fn magnitude_floor_holds_past_required_delay() {
        let alpha = 0.1;
        let x0 = 1.0;
        let tau = required_delay(alpha);
        let adv = adversarial_iterate(alpha, tau, x0).abs();
        // |(1−α)^τ − α| with (1−α)^τ ≤ α/2 gives ≥ α/2.
        assert!(
            adv >= adversarial_magnitude_floor(alpha, x0) - 1e-12,
            "adv magnitude {adv} below floor"
        );
        // Meanwhile the clean run is far smaller.
        assert!(clean_contraction(alpha, tau, x0).abs() <= alpha / 2.0 * x0);
    }

    #[test]
    fn noise_variance_closed_form_matches_series() {
        // Direct sum: α²σ²(1 + Σ_{k=0}^{τ-1} ((1−α)²)^k).
        let (alpha, sigma, tau) = (0.3, 2.0, 7u64);
        let q: f64 = (1.0 - alpha) * (1.0 - alpha);
        let series: f64 = (0..tau).map(|k| q.powi(k as i32)).sum();
        let direct = alpha * alpha * sigma * sigma * (1.0 + series);
        let closed = adversarial_noise_variance(alpha, tau, sigma);
        assert!((closed - direct).abs() < 1e-12);
    }

    #[test]
    fn noise_variance_zero_for_zero_sigma() {
        assert_eq!(adversarial_noise_variance(0.2, 100, 0.0), 0.0);
    }

    #[test]
    fn slowdown_factor_is_linear_in_tau() {
        let alpha = 0.1;
        let s1 = slowdown_factor(alpha, 100);
        let s2 = slowdown_factor(alpha, 200);
        assert!((s2 / s1 - 2.0).abs() < 1e-12, "Ω(τ): doubling τ doubles it");
        assert!(s1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn rejects_alpha_one() {
        let _ = required_delay(1.0);
    }

    proptest! {
        /// For every valid α, at τ = required_delay the adversarial iterate
        /// is at least as large as the clean one — the slowdown is real.
        #[test]
        fn adversary_always_hurts_at_threshold(alpha in 0.01_f64..0.9) {
            let tau = required_delay(alpha);
            let clean = clean_contraction(alpha, tau, 1.0).abs();
            let adv = adversarial_iterate(alpha, tau, 1.0).abs();
            prop_assert!(adv >= clean - 1e-12,
                "adv {} < clean {} at α={} τ={}", adv, clean, alpha, tau);
            prop_assert!(adv >= adversarial_magnitude_floor(alpha, 1.0) - 1e-12);
        }

        /// Variance is increasing in τ and bounded by the geometric limit.
        #[test]
        fn variance_monotone_and_bounded(alpha in 0.01_f64..0.99, tau in 1_u64..200) {
            let v1 = adversarial_noise_variance(alpha, tau, 1.0);
            let v2 = adversarial_noise_variance(alpha, tau + 1, 1.0);
            prop_assert!(v2 >= v1 - 1e-15);
            let q = (1.0 - alpha) * (1.0 - alpha);
            let limit = alpha * alpha * (1.0 + 1.0 / (1.0 - q));
            prop_assert!(v1 <= limit + 1e-12);
        }
    }
}
