//! The [`ShardedModel`](asgd_hogwild::ShardedModel) per-shard progress
//! counters and their double-collect read protocol
//! (`coherent_update_counts`) as an explorable step function.
//!
//! The sharded store bumps one cache-line-padded counter per applied
//! `fetch&add`; each counter read is individually atomic, but a cross-shard
//! progress vector is assembled one shard at a time, so the *cut* across
//! shards can be torn: shard 0 read before a burst of updates, shard 1 read
//! after, producing a vector the store never passed through. The shipped
//! read side repairs this with double-collect validation: collect every
//! counter, collect again, and only call the vector *instantaneous* when a
//! whole validation pass observes no movement (counters are monotone, so an
//! unchanged pair of reads pins each counter through the instant between
//! the passes — one instant all shards share).
//!
//! [`ScanMode::Coherent`] mirrors that protocol step for step (each shard
//! read is its own atomic step, exactly the granularity the hardware
//! gives). [`ScanMode::SplitRead`] is the deliberately seeded bug: the
//! first collect is published as coherent with no validation pass — the
//! naive loop everyone writes first. Under one adversarial preemption
//! between two of the reader's per-shard loads, a writer slips a bump into
//! each shard and the published "instantaneous" vector is a state that
//! never existed, which the explorer catches and minimizes to a replayable
//! trace.
//!
//! Invariants, checked after every atomic step:
//!
//! * **Coherence**: a vector published as coherent must equal some
//!   instantaneous counter state the store actually passed through (the
//!   invariant the seeded twin breaks);
//! * **Monotone reads**: every collected entry is ≤ its shard's current
//!   counter (reads never invent progress), and the live counters always
//!   equal the bump history's last state;
//! * **Honest failure**: a publish flagged *incoherent* (validation retries
//!   exhausted) is allowed to be torn — the flag, not the vector, is the
//!   contract.

use crate::explore::{Schedulable, StepStatus};

/// Atomicity the modeled progress reader claims for its collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// The shipped protocol: collect, then re-collect until a whole
    /// validation pass observes no counter movement (bounded retries;
    /// exhaustion publishes the last collect flagged incoherent).
    Coherent,
    /// Seeded bug: the first per-shard collect is published as coherent
    /// with no validation pass.
    SplitRead,
}

/// Model parameters: `writers × bumps_each` shard-routed counter bumps
/// against one progress reader assembling a cross-shard vector.
#[derive(Debug, Clone, Copy)]
pub struct ShardedCounterModel {
    /// Shard (and counter) count.
    pub shards: usize,
    /// Concurrent writer threads bumping counters.
    pub writers: usize,
    /// Bumps each writer applies, rotating through shards from shard 0.
    pub bumps_each: usize,
    /// Validation passes the coherent reader may retry beyond the first
    /// (the model's `COHERENT_RETRIES`).
    pub retries: usize,
    /// Collect atomicity under test.
    pub scan_mode: ScanMode,
}

impl ShardedCounterModel {
    /// The headline race: one writer spraying a bump into each of two
    /// shards while the reader assembles its vector. One adversarial
    /// preemption between the reader's two loads tears the
    /// [`ScanMode::SplitRead`] twin's published snapshot.
    #[must_use]
    pub fn contended(scan_mode: ScanMode) -> Self {
        Self {
            shards: 2,
            writers: 1,
            bumps_each: 2,
            retries: 2,
            scan_mode,
        }
    }

    /// A deeper configuration: two writers keep both counters moving so
    /// the validation-retry and exhaustion paths are actually exercised.
    #[must_use]
    pub fn churning(scan_mode: ScanMode) -> Self {
        Self {
            shards: 2,
            writers: 2,
            bumps_each: 2,
            retries: 2,
            scan_mode,
        }
    }
}

/// Where the reader is in its collect/validate program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderPc {
    /// Initial collect, next reading shard `s`.
    Collect(usize),
    /// Validation pass, next re-reading shard `s`; `stable` is true while
    /// no re-read of this pass has observed movement.
    Validate { s: usize, stable: bool },
}

#[derive(Debug, Clone)]
struct Writer {
    bumps_done: usize,
}

/// A published progress vector plus the coherence the reader claimed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Published {
    counts: Vec<u64>,
    coherent: bool,
}

/// The modeled counters plus every thread's control state.
#[derive(Debug, Clone)]
pub struct ShardedCounterState {
    /// Live per-shard counters.
    counters: Vec<u64>,
    /// Every instantaneous counter state, in order (bumps are the only
    /// mutations, so this is the exact set of states the store passed
    /// through — the ground truth coherence is checked against).
    history: Vec<Vec<u64>>,
    writers: Vec<Writer>,
    reader_pc: ReaderPc,
    /// The reader's in-progress collect.
    collect: Vec<u64>,
    retries_left: usize,
    published: Option<Published>,
}

impl Schedulable for ShardedCounterModel {
    type State = ShardedCounterState;

    fn init(&self) -> ShardedCounterState {
        ShardedCounterState {
            counters: vec![0; self.shards],
            history: vec![vec![0; self.shards]],
            writers: (0..self.writers)
                .map(|_| Writer { bumps_done: 0 })
                .collect(),
            reader_pc: ReaderPc::Collect(0),
            collect: Vec::new(),
            retries_left: self.retries,
            published: None,
        }
    }

    fn thread_count(&self) -> usize {
        self.writers + 1
    }

    fn step(&self, state: &mut ShardedCounterState, tid: usize) -> StepStatus {
        if tid < self.writers {
            self.writer_step(state, tid)
        } else {
            self.reader_step(state)
        }
    }

    fn check(&self, state: &ShardedCounterState, _done: bool) -> Result<(), String> {
        // The live counters are, by construction, the last recorded state;
        // a mismatch is a model bug, caught loudly.
        if state.history.last() != Some(&state.counters) {
            return Err(format!(
                "history desynchronised: live {:?} vs recorded {:?}",
                state.counters,
                state.history.last()
            ));
        }
        // Monotone reads: a collected entry can never exceed the shard's
        // current counter (counters only go up after the read).
        for (s, &v) in state.collect.iter().enumerate() {
            if v > state.counters[s] {
                return Err(format!(
                    "collect invented progress: shard {s} read {v} > live {}",
                    state.counters[s]
                ));
            }
        }
        if let Some(p) = &state.published {
            if p.counts.len() != self.shards {
                return Err(format!(
                    "published vector has {} entries for {} shards",
                    p.counts.len(),
                    self.shards
                ));
            }
            // The invariant the seeded twin breaks: a coherent-flagged
            // vector must be a state the counters simultaneously held.
            if p.coherent && !state.history.contains(&p.counts) {
                return Err(format!(
                    "torn snapshot published as coherent: {:?} was never an \
                     instantaneous state (history {:?})",
                    p.counts, state.history
                ));
            }
        }
        Ok(())
    }
}

impl ShardedCounterModel {
    fn writer_step(&self, state: &mut ShardedCounterState, tid: usize) -> StepStatus {
        // Bumps rotate through shards from shard 0, so a writer's burst
        // touches distinct counters — the spread that tears a split read.
        let shard = state.writers[tid].bumps_done % self.shards;
        state.counters[shard] += 1;
        let snapshot = state.counters.clone();
        state.history.push(snapshot);
        state.writers[tid].bumps_done += 1;
        if state.writers[tid].bumps_done == self.bumps_each {
            StepStatus::Done
        } else {
            StepStatus::Runnable
        }
    }

    fn reader_step(&self, state: &mut ShardedCounterState) -> StepStatus {
        match state.reader_pc {
            ReaderPc::Collect(s) => {
                state.collect.push(state.counters[s]);
                if s + 1 < self.shards {
                    state.reader_pc = ReaderPc::Collect(s + 1);
                    return StepStatus::Runnable;
                }
                match self.scan_mode {
                    ScanMode::SplitRead => {
                        // The seeded bug: the first collect goes out as
                        // coherent — no pass ever validated the cut.
                        self.publish(state, true)
                    }
                    ScanMode::Coherent => {
                        state.reader_pc = ReaderPc::Validate { s: 0, stable: true };
                        StepStatus::Runnable
                    }
                }
            }
            ReaderPc::Validate { s, stable } => {
                let again = state.counters[s];
                let stable = stable && again == state.collect[s];
                state.collect[s] = again;
                if s + 1 < self.shards {
                    state.reader_pc = ReaderPc::Validate { s: s + 1, stable };
                    return StepStatus::Runnable;
                }
                if stable {
                    // A whole pass saw no movement: monotone counters pin
                    // every entry through the instant between the passes.
                    self.publish(state, true)
                } else if state.retries_left == 0 {
                    // Honest failure: the last collect, flagged torn.
                    self.publish(state, false)
                } else {
                    state.retries_left -= 1;
                    state.reader_pc = ReaderPc::Validate { s: 0, stable: true };
                    StepStatus::Runnable
                }
            }
        }
    }

    fn publish(&self, state: &mut ShardedCounterState, coherent: bool) -> StepStatus {
        state.published = Some(Published {
            counts: state.collect.clone(),
            coherent,
        });
        StepStatus::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer, ReplayOutcome};

    #[test]
    fn the_shipped_double_collect_verifies_under_churn() {
        let model = ShardedCounterModel::churning(ScanMode::Coherent);
        let report = Explorer::with_bound(2).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
        assert!(report.schedules > 50, "exhaustiveness: {report:?}");
    }

    #[test]
    fn split_read_publishes_a_torn_vector_and_the_trace_replays_identically() {
        let model = ShardedCounterModel::contended(ScanMode::SplitRead);
        let report = Explorer::with_bound(2).explore(&model);
        let cex = report.counterexample.expect("split read must tear");
        assert!(
            cex.violation.message.contains("torn snapshot"),
            "{:?}",
            cex.violation
        );
        // The classic torn cut needs exactly one adversarial preemption:
        // the writer's burst lands between two of the reader's loads.
        assert_eq!(cex.preemptions, 1, "{cex:?}");
        match replay(&model, &cex.trace) {
            Err(ReplayOutcome::Violation(v)) => assert_eq!(v, cex.violation),
            other => panic!("minimized trace must reproduce the tear, got {other:?}"),
        }
        // And the artifact text round-trips to the same trace.
        let decoded = asgd_shmem::sched::decode_schedule(&cex.artifact()).expect("artifact parses");
        assert_eq!(decoded, cex.trace);
    }

    #[test]
    fn split_read_is_safe_with_a_single_bump() {
        // One bump mutates one shard once, so any assembled vector equals
        // the before- or after-state — sanity that the model only reports
        // real torn cuts, not every interleaving.
        let model = ShardedCounterModel {
            shards: 2,
            writers: 1,
            bumps_each: 1,
            retries: 2,
            scan_mode: ScanMode::SplitRead,
        };
        let report = Explorer::with_bound(3).explore(&model);
        assert!(report.verified(), "{:?}", report.counterexample);
    }

    #[test]
    fn exhausted_retries_publish_the_last_collect_flagged_incoherent() {
        // Deterministic schedule through the honest-failure path: the
        // reader collects [0, 0], a writer bump dirties shard 0 so the
        // validation pass is unstable, and with zero retries the reader
        // publishes the repaired collect flagged incoherent.
        let model = ShardedCounterModel {
            shards: 2,
            writers: 1,
            bumps_each: 1,
            retries: 0,
            scan_mode: ScanMode::Coherent,
        };
        let reader = model.writers; // reader tid follows the writers
        let mut state = model.init();
        assert_eq!(model.step(&mut state, reader), StepStatus::Runnable);
        assert_eq!(model.step(&mut state, reader), StepStatus::Runnable);
        assert_eq!(model.step(&mut state, 0), StepStatus::Done);
        assert_eq!(model.step(&mut state, reader), StepStatus::Runnable);
        assert_eq!(model.step(&mut state, reader), StepStatus::Done);
        assert_eq!(
            state.published,
            Some(Published {
                counts: vec![1, 0],
                coherent: false
            })
        );
        assert!(model.check(&state, true).is_ok());
    }
}
