//! Engineering bench: steps/second of the asynchronous shared-memory
//! simulator per scheduler. Keeps the probability experiments' costs honest
//! and catches regressions in the engine's hot loop.

use asgd_core::runner::LockFreeSgd;
use asgd_oracle::NoisyQuadratic;
use asgd_shmem::sched::{
    BoundedDelayAdversary, RandomScheduler, Scheduler, SerialScheduler, StepRoundRobin,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

fn bench_schedulers(c: &mut Criterion) {
    let d = 8;
    let iterations = 500_u64;
    // Steps per iteration ≈ claim + d reads + coin + d writes.
    let steps = iterations * (2 * d as u64 + 2);
    let oracle = Arc::new(NoisyQuadratic::new(d, 0.5).expect("valid"));

    let mut group = c.benchmark_group("simulator_steps");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(steps));

    type SchedulerFactory = fn() -> Box<dyn Scheduler>;
    let cases: Vec<(&str, SchedulerFactory)> = vec![
        ("serial", || Box::new(SerialScheduler::new())),
        ("round-robin", || Box::new(StepRoundRobin::new())),
        ("random", || Box::new(RandomScheduler::new(3))),
        ("delay-adversary", || {
            Box::new(BoundedDelayAdversary::new(16))
        }),
    ];
    for (name, mk) in cases {
        group.bench_with_input(BenchmarkId::new("4_threads", name), &mk, |b, mk| {
            b.iter(|| {
                LockFreeSgd::builder(Arc::clone(&oracle))
                    .threads(4)
                    .iterations(iterations)
                    .learning_rate(0.05)
                    .scheduler(mk())
                    .seed(1)
                    .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
