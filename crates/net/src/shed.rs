//! SLO-based load shedding.
//!
//! The server tracks the rolling p99 of *executed* request latencies in an
//! [`SlidingHistogram`] (a count-rotated
//! window, so old overload decays as fresh traffic arrives) and compares
//! it against a latency objective. Tiers are evaluated at the *shed
//! trigger* — the SLO scaled by [`SloPolicy::trigger_ratio`] — so an
//! operator can shed early enough that the declared objective itself
//! still holds (a threshold controller with no headroom regulates the
//! p99 *to* its threshold, which would leave it hovering at the SLO):
//!
//! * p99 ≤ trigger — healthy; every priority is admitted;
//! * trigger < p99 ≤ 2×trigger — degraded; [`Priority::Low`] is shed;
//! * p99 > 2×trigger — overloaded; only [`Priority::High`] is admitted.
//!
//! Tier changes are **hysteretic**: a tier engages at its trigger
//! threshold but only releases once the p99 falls below
//! [`SloPolicy::release_ratio`] × that threshold. Without the gap, a p99
//! hovering at the trigger flaps the shedder every refresh — each flap
//! admits a burst of traffic that re-degrades the p99, re-engaging the
//! tier it just left. The engaged/held/released tier is recomputed at
//! every p99 refresh and cached, so the verdict hot path stays one atomic
//! load.
//!
//! Shed requests get an explicit [`Response::Shed`](crate::Response::Shed)
//! frame carrying the observed p99 and the objective — never a silent
//! drop — and skip the request's compute entirely, which is what frees
//! capacity for the admitted traffic. Shed requests are *not* recorded in
//! the window (they complete in ~µs; recording them would drag the p99
//! down and oscillate the shedder), so recovery is driven by the rotation
//! of the window as admitted requests complete.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use asgd_metrics::SlidingHistogram;

use crate::protocol::Priority;

/// Recovers a poisoned mutex: every critical section here leaves the
/// window structurally valid, so the data is safe to keep using.
fn lock_recovered<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The shedder's latency objective and window geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Target p99, as a duration. `None` disables shedding entirely.
    pub slo: Option<Duration>,
    /// Fraction of the SLO at which shedding engages (the *shed
    /// trigger*). `1.0` sheds only once the objective is already
    /// violated; values below 1 buy headroom so the executed-request
    /// p99 settles *inside* the objective instead of hovering at it.
    /// Values outside `(0, 1]` are treated as `1.0`.
    pub trigger_ratio: f64,
    /// Hysteresis: an engaged tier releases only once the p99 falls below
    /// `release_ratio` × its engage threshold. `1.0` means no hysteresis
    /// (engage and release at the same point); values outside `(0, 1]`
    /// are treated as `1.0`.
    pub release_ratio: f64,
    /// Number of rotation buckets in the rolling window.
    pub window_buckets: usize,
    /// Executed requests per bucket before the window rotates.
    pub bucket_capacity: u64,
    /// Minimum executed requests in the window before the shedder trusts
    /// its p99 estimate (cold-start guard: a handful of slow warm-up
    /// requests must not shed the whole warm-up).
    pub min_samples: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            slo: None,
            trigger_ratio: 1.0,
            release_ratio: 0.85,
            window_buckets: 8,
            bucket_capacity: 256,
            min_samples: 64,
        }
    }
}

impl SloPolicy {
    /// A policy with the given p99 objective and default window geometry.
    #[must_use]
    pub fn with_slo(slo: Duration) -> Self {
        Self {
            slo: Some(slo),
            ..Self::default()
        }
    }
}

/// The verdict for one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Execute the request.
    Admit,
    /// Refuse it with a `Shed` frame.
    Shed {
        /// The rolling p99 that triggered shedding, ns.
        p99_ns: u64,
        /// The objective, ns.
        slo_ns: u64,
    },
}

/// Rolling-p99 load shedder shared by every connection thread.
///
/// The hot path ([`LoadShedder::verdict`]) is a single relaxed atomic
/// load of the cached p99 — the histogram mutex is only taken when
/// recording a completed request, and the p99 is re-derived at most once
/// per [`refresh_stride`](SloPolicy::bucket_capacity) recordings.
#[derive(Debug)]
pub struct LoadShedder {
    policy: SloPolicy,
    window: Mutex<SlidingHistogram>,
    /// Cached rolling p99 in ns; 0 = "no estimate yet".
    p99_ns: AtomicU64,
    /// Executed requests recorded since the last p99 refresh.
    since_refresh: AtomicU64,
    /// Refresh the cached p99 every this many recordings.
    refresh_stride: u64,
    /// Cached shedding tier: 0 healthy, 1 degraded (shed Low), 2
    /// overloaded (shed Low and Normal). Recomputed hysteretically at
    /// every p99 refresh.
    tier: AtomicU8,
    /// Tier changes since construction (flap detector).
    transitions: AtomicU64,
    shed_total: AtomicU64,
    executed_total: AtomicU64,
}

impl LoadShedder {
    /// A shedder with the given policy.
    #[must_use]
    pub fn new(policy: SloPolicy) -> Self {
        let window = SlidingHistogram::new(policy.window_buckets, policy.bucket_capacity);
        // Re-deriving quantiles is O(buckets × bins); a stride of 1/8 of a
        // bucket keeps the estimate fresh (sub-bucket granularity) while
        // amortising the scan.
        let refresh_stride = (policy.bucket_capacity / 8).max(1);
        Self {
            policy,
            window: Mutex::new(window),
            p99_ns: AtomicU64::new(0),
            since_refresh: AtomicU64::new(0),
            refresh_stride,
            tier: AtomicU8::new(0),
            transitions: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            executed_total: AtomicU64::new(0),
        }
    }

    /// The policy this shedder enforces.
    #[must_use]
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// The shed trigger in ns: the SLO scaled by the (validated)
    /// trigger ratio. `None` when shedding is off.
    fn trigger_ns(&self) -> Option<u64> {
        let slo_ns = self.slo_ns()?;
        let ratio = self.policy.trigger_ratio;
        Some(if ratio.is_finite() && ratio > 0.0 && ratio < 1.0 {
            ((slo_ns as f64 * ratio) as u64).max(1)
        } else {
            slo_ns
        })
    }

    fn slo_ns(&self) -> Option<u64> {
        self.policy
            .slo
            .map(|slo| slo.as_nanos().min(u128::from(u64::MAX)) as u64)
    }

    /// The validated release ratio (out-of-range values mean no
    /// hysteresis).
    fn release_ratio(&self) -> f64 {
        let r = self.policy.release_ratio;
        if r.is_finite() && r > 0.0 && r < 1.0 {
            r
        } else {
            1.0
        }
    }

    /// The hysteretic tier update, run at every p99 refresh:
    /// `engage` is the tier the fresh p99 demands outright; `hold` is the
    /// highest tier whose *release* threshold (release_ratio × its engage
    /// threshold) the p99 still exceeds. The new tier engages upward
    /// immediately but releases downward only past the hold thresholds —
    /// `max(engage, min(current, hold))`.
    fn retier(&self, p99_ns: u64) {
        let Some(trigger_ns) = self.trigger_ns() else {
            return;
        };
        let tier_from = |p99: u64, low: u64, high: u64| -> u8 {
            if p99 > high {
                2
            } else if p99 > low {
                1
            } else {
                0
            }
        };
        let new = if p99_ns == 0 {
            0 // estimate lost (window below min_samples): start over
        } else {
            let high_ns = trigger_ns.saturating_mul(2);
            let engage = tier_from(p99_ns, trigger_ns, high_ns);
            let release = self.release_ratio();
            let hold = tier_from(
                p99_ns,
                ((trigger_ns as f64 * release) as u64).max(1),
                ((high_ns as f64 * release) as u64).max(1),
            );
            let current = self.tier.load(Ordering::Relaxed);
            engage.max(current.min(hold))
        };
        if self.tier.swap(new, Ordering::Relaxed) != new {
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Decides whether a request at `priority` is admitted right now.
    pub fn verdict(&self, priority: Priority) -> Verdict {
        let Some(slo_ns) = self.slo_ns() else {
            return Verdict::Admit;
        };
        let p99_ns = self.p99_ns.load(Ordering::Relaxed);
        if p99_ns == 0 {
            return Verdict::Admit; // no estimate yet
        }
        let floor = match self.tier.load(Ordering::Relaxed) {
            0 => return Verdict::Admit,
            1 => Priority::Normal, // degraded: shed Low
            _ => Priority::High,   // overloaded: only High survives
        };
        if priority >= floor {
            Verdict::Admit
        } else {
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            Verdict::Shed { p99_ns, slo_ns }
        }
    }

    /// Records the latency of one *executed* request and periodically
    /// refreshes the cached p99. Shed requests must not be recorded.
    pub fn record(&self, latency: Duration) {
        self.executed_total.fetch_add(1, Ordering::Relaxed);
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut window = lock_recovered(&self.window);
        window.push(ns);
        let n = self.since_refresh.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.refresh_stride {
            self.since_refresh.store(0, Ordering::Relaxed);
            let p99 = if window.len() >= self.policy.min_samples {
                window.quantile(0.99).unwrap_or(0)
            } else {
                0
            };
            self.p99_ns.store(p99, Ordering::Relaxed);
            self.retier(p99);
        }
    }

    /// The current shedding tier: 0 healthy, 1 degraded, 2 overloaded.
    #[must_use]
    pub fn tier(&self) -> u8 {
        self.tier.load(Ordering::Relaxed)
    }

    /// Tier changes since construction — the flap detector hysteresis
    /// exists to keep small.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// The cached rolling p99 in ns (`None` before enough samples).
    #[must_use]
    pub fn rolling_p99_ns(&self) -> Option<u64> {
        match self.p99_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Requests shed since construction.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Requests executed (recorded) since construction.
    #[must_use]
    pub fn executed_total(&self) -> u64 {
        self.executed_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn saturate(shedder: &LoadShedder, latency: Duration, n: u64) {
        for _ in 0..n {
            shedder.record(latency);
        }
    }

    #[test]
    fn no_slo_admits_everything() {
        let shedder = LoadShedder::new(SloPolicy::default());
        saturate(&shedder, ms(1_000), 500);
        for &p in Priority::all() {
            assert_eq!(shedder.verdict(p), Verdict::Admit);
        }
        assert_eq!(shedder.shed_total(), 0);
    }

    #[test]
    fn healthy_latencies_admit_everything() {
        let shedder = LoadShedder::new(SloPolicy::with_slo(ms(10)));
        saturate(&shedder, ms(1), 500);
        for &p in Priority::all() {
            assert_eq!(shedder.verdict(p), Verdict::Admit);
        }
    }

    #[test]
    fn degraded_sheds_low_only() {
        let shedder = LoadShedder::new(SloPolicy::with_slo(ms(10)));
        // p99 lands between SLO and 2×SLO.
        saturate(&shedder, ms(15), 500);
        assert!(matches!(
            shedder.verdict(Priority::Low),
            Verdict::Shed { .. }
        ));
        assert_eq!(shedder.verdict(Priority::Normal), Verdict::Admit);
        assert_eq!(shedder.verdict(Priority::High), Verdict::Admit);
        assert!(shedder.shed_total() > 0);
    }

    #[test]
    fn overloaded_admits_only_high() {
        let shedder = LoadShedder::new(SloPolicy::with_slo(ms(10)));
        saturate(&shedder, ms(100), 500);
        let v = shedder.verdict(Priority::Low);
        let Verdict::Shed { p99_ns, slo_ns } = v else {
            panic!("low must be shed, got {v:?}");
        };
        assert!(p99_ns > slo_ns * 2);
        assert!(matches!(
            shedder.verdict(Priority::Normal),
            Verdict::Shed { .. }
        ));
        assert_eq!(shedder.verdict(Priority::High), Verdict::Admit);
    }

    #[test]
    fn trigger_ratio_sheds_before_the_objective_is_violated() {
        let shedder = LoadShedder::new(SloPolicy {
            trigger_ratio: 0.5, // trigger at 5 ms against a 10 ms SLO
            ..SloPolicy::with_slo(ms(10))
        });
        // p99 ~7 ms: inside the SLO, past the trigger — Low is shed with
        // the frame still reporting the declared objective.
        saturate(&shedder, ms(7), 500);
        let v = shedder.verdict(Priority::Low);
        let Verdict::Shed { p99_ns, slo_ns } = v else {
            panic!("low must be shed at the trigger, got {v:?}");
        };
        assert!(p99_ns <= slo_ns, "shed engaged while still inside the SLO");
        assert_eq!(shedder.verdict(Priority::Normal), Verdict::Admit);
        // p99 ~12 ms: past 2×trigger — only High survives.
        saturate(&shedder, ms(12), 2_000);
        assert!(matches!(
            shedder.verdict(Priority::Normal),
            Verdict::Shed { .. }
        ));
        assert_eq!(shedder.verdict(Priority::High), Verdict::Admit);
    }

    #[test]
    fn out_of_range_trigger_ratio_falls_back_to_the_objective() {
        for ratio in [0.0, -1.0, 2.0, f64::NAN] {
            let shedder = LoadShedder::new(SloPolicy {
                trigger_ratio: ratio,
                ..SloPolicy::with_slo(ms(10))
            });
            saturate(&shedder, ms(8), 500); // inside the SLO
            assert_eq!(shedder.verdict(Priority::Low), Verdict::Admit);
        }
    }

    #[test]
    fn cold_start_never_sheds() {
        let policy = SloPolicy {
            slo: Some(ms(10)),
            min_samples: 64,
            ..SloPolicy::default()
        };
        let shedder = LoadShedder::new(policy);
        // Fewer than min_samples slow requests: estimate not trusted yet.
        saturate(&shedder, ms(500), 40);
        assert_eq!(shedder.verdict(Priority::Low), Verdict::Admit);
    }

    #[test]
    fn hysteresis_holds_the_tier_through_an_oscillating_p99() {
        // Trigger 10 ms, release at 0.8 × 10 = 8 ms. A p99 ramping
        // 11 → 9 → 11 → … crosses the engage threshold every burst but
        // never the release threshold, so the tier must engage once and
        // hold.
        let shedder = LoadShedder::new(SloPolicy {
            release_ratio: 0.8,
            window_buckets: 4,
            bucket_capacity: 64,
            min_samples: 32,
            ..SloPolicy::with_slo(ms(10))
        });
        saturate(&shedder, ms(11), 256);
        assert_eq!(shedder.tier(), 1, "degraded engages past the trigger");
        let engaged = shedder.transitions();
        assert!(engaged >= 1);
        for _ in 0..6 {
            saturate(&shedder, ms(9), 256); // below trigger, above release
            assert_eq!(shedder.tier(), 1, "held: 9 ms is above the 8 ms release");
            assert!(matches!(
                shedder.verdict(Priority::Low),
                Verdict::Shed { .. }
            ));
            saturate(&shedder, ms(11), 256);
            assert_eq!(shedder.tier(), 1);
        }
        assert_eq!(
            shedder.transitions(),
            engaged,
            "no flapping across the whole ramp"
        );
        // A real recovery (clearly below release) still releases the tier.
        saturate(&shedder, ms(1), 256);
        assert_eq!(shedder.tier(), 0);
        assert_eq!(shedder.verdict(Priority::Low), Verdict::Admit);
        assert_eq!(shedder.transitions(), engaged + 1);
    }

    #[test]
    fn without_hysteresis_the_same_ramp_flaps() {
        // Control experiment: release_ratio 1.0 turns hysteresis off, and
        // the identical 11/9 ms ramp now toggles the tier every burst.
        let shedder = LoadShedder::new(SloPolicy {
            release_ratio: 1.0,
            window_buckets: 4,
            bucket_capacity: 64,
            min_samples: 32,
            ..SloPolicy::with_slo(ms(10))
        });
        saturate(&shedder, ms(11), 256);
        let engaged = shedder.transitions();
        for _ in 0..6 {
            saturate(&shedder, ms(9), 256);
            saturate(&shedder, ms(11), 256);
        }
        assert!(
            shedder.transitions() >= engaged + 12,
            "expected a flap per burst, saw {} transitions",
            shedder.transitions()
        );
    }

    #[test]
    fn out_of_range_release_ratios_mean_no_hysteresis() {
        for ratio in [0.0, -0.5, 1.5, f64::NAN] {
            let shedder = LoadShedder::new(SloPolicy {
                release_ratio: ratio,
                window_buckets: 4,
                bucket_capacity: 64,
                min_samples: 32,
                ..SloPolicy::with_slo(ms(10))
            });
            saturate(&shedder, ms(11), 256);
            assert_eq!(shedder.tier(), 1);
            saturate(&shedder, ms(9), 256); // below the trigger releases
            assert_eq!(shedder.tier(), 0, "ratio {ratio} must disable the hold");
        }
    }

    #[test]
    fn recovery_after_overload_passes() {
        let shedder = LoadShedder::new(SloPolicy {
            slo: Some(ms(10)),
            window_buckets: 4,
            bucket_capacity: 64,
            min_samples: 32,
            ..SloPolicy::default()
        });
        saturate(&shedder, ms(100), 256);
        assert!(matches!(
            shedder.verdict(Priority::Normal),
            Verdict::Shed { .. }
        ));
        // Healthy traffic rotates the overload out of the window.
        saturate(&shedder, ms(1), 256);
        assert_eq!(shedder.verdict(Priority::Low), Verdict::Admit);
        assert!(shedder.executed_total() >= 512);
    }
}
