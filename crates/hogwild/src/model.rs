//! The shared parameter vector `X[d]` for native threads.

use crate::atomic::AtomicF64;

/// A `d`-dimensional model shared by all worker threads, with the exact
/// access pattern of Algorithm 1: entry-wise atomic reads (building a
/// possibly inconsistent view) and entry-wise `fetch&add` updates.
#[derive(Debug)]
pub struct SharedModel {
    entries: Vec<AtomicF64>,
}

impl SharedModel {
    /// Creates a model initialised to `x0`.
    #[must_use]
    pub fn new(x0: &[f64]) -> Self {
        Self {
            entries: x0.iter().map(|&v| AtomicF64::new(v)).collect(),
        }
    }

    /// Creates a zero model of dimension `d` (Algorithm 1's
    /// `X = (0, …, 0)`).
    #[must_use]
    pub fn zeros(d: usize) -> Self {
        Self::new(&vec![0.0; d])
    }

    /// Model dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.entries.len()
    }

    /// Atomically reads entry `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[must_use]
    pub fn read(&self, j: usize) -> f64 {
        self.entries[j].load()
    }

    /// Reads the whole model entry-by-entry into `view` — the inconsistent
    /// scan of Algorithm 1 line 4 (other threads may update between entry
    /// reads; that is the point).
    ///
    /// # Panics
    ///
    /// Panics if `view.len() != d`.
    pub fn read_view(&self, view: &mut [f64]) {
        assert_eq!(view.len(), self.entries.len(), "view dimension mismatch");
        for (v, e) in view.iter_mut().zip(&self.entries) {
            *v = e.load();
        }
    }

    /// Atomic `fetch&add` on entry `j`, returning the prior value.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn fetch_add(&self, j: usize, delta: f64) -> f64 {
        self.entries[j].fetch_add(delta)
    }

    /// Atomically overwrites entry `j` (used only by epoch initialisation,
    /// never by SGD iterations).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn write(&self, j: usize, value: f64) {
        self.entries[j].store(value);
    }

    /// Snapshots the model into a fresh vector (entry-wise atomic reads; only
    /// consistent when no writers are active).
    #[must_use]
    pub fn snapshot(&self) -> Vec<f64> {
        self.entries.iter().map(AtomicF64::load).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn construction_and_reads() {
        let m = SharedModel::new(&[1.0, -2.0]);
        assert_eq!(m.dimension(), 2);
        assert_eq!(m.read(0), 1.0);
        assert_eq!(m.read(1), -2.0);
        let z = SharedModel::zeros(3);
        assert_eq!(z.snapshot(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn view_and_updates() {
        let m = SharedModel::new(&[0.0, 0.0]);
        assert_eq!(m.fetch_add(0, 2.5), 0.0);
        m.write(1, 7.0);
        let mut view = vec![0.0; 2];
        m.read_view(&mut view);
        assert_eq!(view, vec![2.5, 7.0]);
    }

    #[test]
    #[should_panic(expected = "view dimension mismatch")]
    fn view_size_checked() {
        let m = SharedModel::zeros(2);
        let mut view = vec![0.0; 3];
        m.read_view(&mut view);
    }

    #[test]
    fn concurrent_updates_never_lost() {
        let m = Arc::new(SharedModel::zeros(4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for j in 0..4 {
                        for _ in 0..5_000 {
                            m.fetch_add(j, 1.0);
                        }
                    }
                });
            }
        });
        assert_eq!(m.snapshot(), vec![20_000.0; 4]);
    }
}
