//! Failure injection: the model of §2 allows the adversary to crash up to
//! `n − 1` threads. The lock-free algorithm must keep converging — the
//! claim counter is wait-free and surviving threads pick up the slack.

use asyncsgd::prelude::*;
use std::sync::Arc;

#[test]
fn converges_with_n_minus_1_crashes() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.3).expect("valid"));
    // Crash 3 of 4 threads early; the survivor must finish all claims.
    let run = LockFreeSgd::builder(Arc::clone(&oracle))
        .threads(4)
        .iterations(2_000)
        .learning_rate(0.03)
        .initial_point(vec![1.5, -1.5])
        .success_radius_sq(0.05)
        .scheduler(CrashAdversary::new(
            RandomScheduler::new(5),
            vec![(100, 1), (200, 2), (300, 3)],
        ))
        .seed(9)
        .run();
    assert_eq!(run.execution.crashed, 3);
    assert_eq!(run.execution.halted, 1);
    assert!(
        run.hit_iteration.is_some(),
        "survivor did not converge: min dist² {}",
        run.min_dist_sq
    );
}

#[test]
fn crash_mid_iteration_leaves_incomplete_iteration_but_no_corruption() {
    // Crash a thread between its first and last model write: the iteration
    // stays incomplete in the contention record, and the partial update is
    // simply absorbed (fetch&add semantics — no torn state possible).
    let oracle = Arc::new(NoisyQuadratic::new(4, 0.5).expect("valid"));
    let run = LockFreeSgd::builder(Arc::clone(&oracle))
        .threads(2)
        .iterations(400)
        .learning_rate(0.02)
        .initial_point(vec![1.0; 4])
        .scheduler(CrashAdversary::new(StepRoundRobin::new(), vec![(25, 1)]))
        .seed(3)
        .run();
    assert_eq!(run.execution.crashed, 1);
    // The run still completes all claimed iterations via thread 0.
    assert!(run.execution.contention.iterations() >= 399);
    // Model is finite and improved from ‖x₀‖² = 4.
    assert!(run.final_model.iter().all(|v| v.is_finite()));
    assert!(run.final_dist_sq < 4.0);
}

#[test]
fn engine_enforces_crash_budget() {
    // A plan with n crashes on n threads: the engine must refuse the last
    // one (at most n − 1), so exactly one thread halts normally.
    let oracle = Arc::new(NoisyQuadratic::new(1, 0.1).expect("valid"));
    let run = LockFreeSgd::builder(Arc::clone(&oracle))
        .threads(3)
        .iterations(300)
        .learning_rate(0.05)
        .scheduler(CrashAdversary::new(
            RandomScheduler::new(8),
            vec![(10, 0), (20, 1), (30, 2)],
        ))
        .seed(4)
        .run();
    assert_eq!(run.execution.crashed, 2, "third crash must be dropped");
    assert_eq!(run.execution.halted, 1);
    // Each crashed thread may take one claimed slot to the grave; the
    // survivor performs every remaining iteration.
    assert!(run.execution.contention.iterations() >= 298);
}

#[test]
fn native_guarded_model_survives_concurrent_epoch_bump() {
    // Native op-level guard under fire: stale writers + an epoch advance;
    // tested here at integration level with more threads than the unit test.
    use asyncsgd::hogwild::GuardedModel;
    let m = Arc::new(GuardedModel::new(&[0.0, 0.0]));
    std::thread::scope(|s| {
        for _ in 0..6 {
            let m = Arc::clone(&m);
            s.spawn(move || {
                for i in 0..20_000_u32 {
                    let epoch = if i < 10_000 { 0 } else { 1 };
                    // Updates tagged with the epoch the writer believes in;
                    // stale ones are dropped silently.
                    let _ = m.guarded_add(0, epoch, 1.0);
                    let _ = m.guarded_add(1, epoch, -1.0);
                }
            });
        }
        let m2 = Arc::clone(&m);
        s.spawn(move || {
            std::thread::yield_now();
            let _ = m2.advance_epoch(0, 0, 1);
            let _ = m2.advance_epoch(1, 0, 1);
        });
    });
    let (e0, v0) = m.read(0);
    let (e1, v1) = m.read(1);
    assert_eq!((e0, e1), (1, 1));
    assert!(v0.is_finite() && v1.is_finite());
    assert!(v0 >= 0.0 && v1 <= 0.0, "signs preserved: {v0} {v1}");
}
