//! Repeated-trial estimation.

use asgd_math::rng::SeedSequence;
use asgd_math::{OnlineStats, WilsonInterval};

/// An estimated probability with its 95% Wilson interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityEstimate {
    /// Number of trials in which the event occurred.
    pub occurrences: u64,
    /// Total trials.
    pub trials: u64,
    /// Wilson 95% score interval.
    pub interval: WilsonInterval,
}

impl ProbabilityEstimate {
    /// Point estimate `occurrences / trials`.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.interval.estimate
    }

    /// True if `bound` is consistent with the measurement, i.e. the bound is
    /// at least the interval's lower end. Used as the "theorem holds" check:
    /// a valid upper bound must not sit below what was actually measured.
    #[must_use]
    pub fn consistent_with_upper_bound(&self, bound: f64) -> bool {
        bound >= self.interval.lower
    }
}

impl std::fmt::Display for ProbabilityEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}/{})",
            self.interval, self.occurrences, self.trials
        )
    }
}

/// Estimates `P(event)` by running `trials` independent trials. Each trial
/// receives a distinct seed derived from `master_seed`; `event(seed)`
/// returns whether the event occurred.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn estimate_probability(
    trials: u64,
    master_seed: u64,
    mut event: impl FnMut(u64) -> bool,
) -> ProbabilityEstimate {
    assert!(trials > 0, "at least one trial required");
    let seq = SeedSequence::new(master_seed);
    let mut occurrences = 0;
    for i in 0..trials {
        if event(seq.child_seed(i)) {
            occurrences += 1;
        }
    }
    ProbabilityEstimate {
        occurrences,
        trials,
        interval: WilsonInterval::ci95(occurrences, trials),
    }
}

/// Collects a scalar statistic over `trials` independent seeded trials.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn trial_stats(trials: u64, master_seed: u64, mut stat: impl FnMut(u64) -> f64) -> OnlineStats {
    assert!(trials > 0, "at least one trial required");
    let seq = SeedSequence::new(master_seed);
    (0..trials).map(|i| stat(seq.child_seed(i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_events_estimate_exactly() {
        let all = estimate_probability(50, 1, |_| true);
        assert_eq!(all.estimate(), 1.0);
        assert_eq!(all.occurrences, 50);
        let none = estimate_probability(50, 1, |_| false);
        assert_eq!(none.estimate(), 0.0);
        assert!(none.to_string().contains("(0/50)"));
    }

    #[test]
    fn coin_flip_estimate_brackets_half() {
        let est = estimate_probability(2000, 7, |seed| StdRng::seed_from_u64(seed).gen_bool(0.5));
        assert!(
            est.interval.lower < 0.5 && 0.5 < est.interval.upper,
            "95% CI {} should contain 0.5",
            est.interval
        );
    }

    #[test]
    fn trials_receive_distinct_seeds() {
        let mut seeds = Vec::new();
        let _ = estimate_probability(100, 3, |seed| {
            seeds.push(seed);
            false
        });
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn same_master_seed_reproduces() {
        let run = |master| {
            let mut seeds = Vec::new();
            let _ = estimate_probability(10, master, |s| {
                seeds.push(s);
                false
            });
            seeds
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn bound_consistency_check() {
        let est = estimate_probability(100, 1, |seed| seed % 4 == 0);
        // A bound above the lower CI is consistent; one below is not.
        assert!(est.consistent_with_upper_bound(1.0));
        assert!(est.consistent_with_upper_bound(est.interval.lower + 1e-12));
        assert!(!est.consistent_with_upper_bound(0.0));
    }

    #[test]
    fn trial_stats_aggregates() {
        let stats = trial_stats(100, 5, |seed| (seed % 10) as f64);
        assert_eq!(stats.count(), 100);
        assert!(stats.mean() >= 0.0 && stats.mean() <= 9.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = estimate_probability(0, 0, |_| false);
    }
}
