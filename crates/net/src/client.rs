//! [`NetClient`] — a blocking wire-protocol client.
//!
//! One request in flight at a time: [`NetClient::call`] writes a frame,
//! then blocks for the answer. The convenience methods (`dot_score`,
//! `predict`, …) additionally turn `Error`/`Shed` frames into a typed
//! [`ClientError`], so a caller that only wants the value gets a `Result`
//! instead of a response enum to match. The open-loop bench harness in
//! [`workload`](crate::workload) bypasses this type and drives the raw
//! framing functions over a cloned stream instead.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use asgd_serve::ModelStats;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Priority, Request, RequestFrame, Response,
    StatsSelector, MAX_FRAME_LEN,
};

/// What a convenience call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server's bytes did not decode as a response frame.
    Frame(FrameError),
    /// The server answered with an error frame.
    Remote {
        /// The typed failure code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server shed the request (SLO pressure). Retrying later — or at
    /// a higher priority — may succeed.
    Shed {
        /// The priority that was refused.
        priority: Priority,
        /// The server's rolling p99 at refusal time, ns.
        p99_ns: u64,
        /// The server's objective, ns.
        slo_ns: u64,
    },
    /// The server answered with a frame of the wrong kind (e.g. stats to a
    /// score request) — a protocol bug, not a transient failure.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket: {e}"),
            Self::Frame(e) => write!(f, "bad response frame: {e}"),
            Self::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            Self::Shed {
                priority,
                p99_ns,
                slo_ns,
            } => write!(
                f,
                "request shed at priority {priority}: rolling p99 {p99_ns} ns over SLO {slo_ns} ns"
            ),
            Self::UnexpectedResponse(kind) => {
                write!(f, "unexpected response frame of kind `{kind}`")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

/// A blocking client over one TCP connection.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connects with 5-second read/write timeouts.
    ///
    /// # Errors
    ///
    /// Whatever connecting or configuring the socket returns.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with the given read/write timeout.
    ///
    /// # Errors
    ///
    /// Whatever connecting or configuring the socket returns.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request frame and blocks for the response.
    ///
    /// Shed and error frames are returned as `Ok(Response::Shed)` /
    /// `Ok(Response::Error)` — at this level they are valid answers.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure, [`ClientError::Frame`] when
    /// the response bytes do not decode.
    pub fn call(&mut self, frame: &RequestFrame) -> Result<Response, ClientError> {
        let body = frame.encode()?;
        write_frame(&mut self.stream, &body)?;
        read_frame(&mut self.stream, &mut self.buf, MAX_FRAME_LEN)?;
        Ok(Response::decode(&self.buf)?)
    }

    /// Sends `request` at `priority` and unwraps error/shed frames into
    /// [`ClientError`]s.
    fn call_ok(&mut self, request: Request, priority: Priority) -> Result<Response, ClientError> {
        match self.call(&RequestFrame::new(request).priority(priority))? {
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            Response::Shed {
                priority,
                p99_ns,
                slo_ns,
            } => Err(ClientError::Shed {
                priority,
                p99_ns,
                slo_ns,
            }),
            ok => Ok(ok),
        }
    }

    /// Scores a sparse probe against a model: `Σ wᵢ · x[idxᵢ]`.
    ///
    /// # Errors
    ///
    /// Transport failures, server error frames, or shedding, as
    /// [`ClientError`].
    pub fn dot_score(
        &mut self,
        model: u32,
        probe: &[(u32, f64)],
        priority: Priority,
    ) -> Result<(f64, Option<u64>), ClientError> {
        match self.call_ok(
            Request::DotScore {
                model,
                probe: probe.to_vec(),
            },
            priority,
        )? {
            Response::Score { value, staleness } => Ok((value, staleness)),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }

    /// Evaluates the held-out objective at the served point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn predict(
        &mut self,
        model: u32,
        priority: Priority,
    ) -> Result<(f64, Option<u64>), ClientError> {
        match self.call_ok(Request::Predict { model }, priority)? {
            Response::Score { value, staleness } => Ok((value, staleness)),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }

    /// Fetches raw parameters `x[start .. start+len]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn fetch_range(
        &mut self,
        model: u32,
        start: u32,
        len: u32,
        priority: Priority,
    ) -> Result<(Vec<f64>, Option<u64>), ClientError> {
        match self.call_ok(Request::FetchRange { model, start, len }, priority)? {
            Response::Values {
                values, staleness, ..
            } => Ok((values, staleness)),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }

    /// Statistics for the model addressed by registry id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn stats_by_id(&mut self, id: u32) -> Result<ModelStats, ClientError> {
        self.stats(StatsSelector::ById(id))
    }

    /// Statistics (and id discovery) for the model named `name`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetClient::dot_score`].
    pub fn stats_by_name(&mut self, name: &str) -> Result<ModelStats, ClientError> {
        self.stats(StatsSelector::ByName(name.to_string()))
    }

    fn stats(&mut self, selector: StatsSelector) -> Result<ModelStats, ClientError> {
        match self.call_ok(Request::ModelStats { selector }, Priority::High)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::UnexpectedResponse(kind_of(&other))),
        }
    }
}

fn kind_of(r: &Response) -> &'static str {
    match r {
        Response::Score { .. } => "score",
        Response::Values { .. } => "values",
        Response::Stats(_) => "stats",
        Response::Error { .. } => "error",
        Response::Shed { .. } => "shed",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = ClientError::Remote {
            code: ErrorCode::NoSuchModel,
            message: "no model with id 4".to_string(),
        };
        assert!(e.to_string().contains("no-such-model"));
        let e = ClientError::Shed {
            priority: Priority::Low,
            p99_ns: 2,
            slo_ns: 1,
        };
        assert!(e.to_string().contains("shed"));
        let e = ClientError::from(FrameError::BadTag(9));
        assert!(e.to_string().contains("tag"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ClientError::UnexpectedResponse("stats");
        assert!(e.to_string().contains("stats"));
        let e = ClientError::from(std::io::Error::new(std::io::ErrorKind::TimedOut, "slow"));
        assert!(e.to_string().contains("slow"));
    }

    #[test]
    fn connect_to_a_dead_port_is_an_io_error() {
        // Bind then immediately drop a listener to get a port that's
        // very likely closed.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
            l.local_addr().unwrap().port()
        };
        match NetClient::connect(("127.0.0.1", port)) {
            Err(ClientError::Io(_)) => {}
            Ok(_) => {} // something else grabbed the port; fine
            Err(other) => panic!("expected Io, got {other}"),
        }
    }
}
