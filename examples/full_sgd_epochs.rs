//! Algorithm 2 (`FullSGD`): epoch-halving learning rates with epoch-guarded
//! updates, both natively and in the simulator — and why it is necessary
//! (a fixed step size stalls under adversarial delays; §8).
//!
//! ```text
//! cargo run --release --example full_sgd_epochs
//! ```

use asyncsgd::prelude::*;
use asyncsgd::theory::corollary_7_1;
use std::sync::Arc;

fn main() {
    let d = 2;
    let oracle = Arc::new(NoisyQuadratic::new(d, 1.0).expect("valid"));
    let consts = oracle.constants(4.0);
    let (alpha0, n) = (0.25, 4);

    println!("target ε (on ‖r−x*‖²) → epochs from Corollary 7.1, then measured result:\n");
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>10}",
        "eps", "epochs", "total iters", "‖r−x*‖", "target √ε"
    );
    for eps in [0.25, 0.04, 0.01] {
        let halving = corollary_7_1::epoch_count(alpha0, &consts, n, eps);
        let t_per_epoch = 2_000;
        let report = NativeFullSgd::new(
            Arc::clone(&oracle),
            NativeFullSgdConfig {
                alpha0,
                epoch_iterations: t_per_epoch,
                halving_epochs: halving,
                threads: n,
                seed: 9,
            },
        )
        .run(&[2.0, -2.0]);
        println!(
            "{:>10} {:>8} {:>12} {:>14.4} {:>10.4}",
            eps,
            halving + 1,
            corollary_7_1::total_iterations(t_per_epoch, halving),
            report.dist_to_opt,
            eps.sqrt(),
        );
    }

    // The same algorithm, simulated, under an actively adversarial
    // scheduler — and the fixed-α comparison the paper's §8 predicts fails.
    println!("\nunder the cycling stale-gradient adversary (simulated, τ = 12):");
    let oracle1 = Arc::new(NoisyQuadratic::new(1, 0.05).expect("valid"));
    let total_budget = 150 * 7;
    let fixed = LockFreeSgd::builder(Arc::clone(&oracle1))
        .threads(2)
        .iterations(total_budget)
        .learning_rate(0.2)
        .initial_point(vec![1.0])
        .scheduler(StaleGradientAdversary::new(0, 1, 12))
        .seed(4)
        .run();
    let halving = run_full_sgd_simulated(
        Arc::clone(&oracle1),
        FullSgdConfig {
            alpha0: 0.2,
            epoch_iterations: 150,
            halving_epochs: 6,
        },
        2,
        &[1.0],
        StaleGradientAdversary::new(0, 1, 12),
        4,
        None,
    );
    println!(
        "  fixed α = 0.2 : final ‖x−x*‖ = {:.4}",
        fixed.final_dist_sq.sqrt()
    );
    println!(
        "  halving α     : final ‖r−x*‖ = {:.4}",
        halving.dist_to_opt
    );
    println!("  (decreasing the step size defeats the adversary — §8 discussion)");
}
