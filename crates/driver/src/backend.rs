//! The [`Backend`] trait and its seven implementations.
//!
//! Each backend interprets one [`RunSpec`] on a different execution model
//! and produces the same [`RunReport`], so experiments swap execution models
//! by changing one enum value.

use crate::error::DriverError;
use crate::report::{ContentionSummary, RunReport};
use crate::session::{RunEvent, SampleHub, SessionCtx, DEFAULT_PROGRESS_STRIDE};
use crate::spec::{
    BackendKind, ModelLayoutSpec, PinSpec, RunSpec, ShardsSpec, SparsePathSpec, UpdateOrderSpec,
};
use asgd_core::full_sgd::{run_simulated_session, FullSgdConfig, SimSession};
use asgd_core::runner::LockFreeSgd;
use asgd_core::sequential::SequentialSgd;
use asgd_hogwild::{
    ExecTuning, GuardedEpochSgd, GuardedEpochSgdConfig, Hogwild, HogwildConfig, LockedSgd,
    MetricsSink, ModelLayout, NativeFullSgd, NativeFullSgdConfig, RunControl, ShardPolicy,
    SparsePolicy, TimingSink, UpdateOrder,
};
use asgd_math::rng::SeedSequence;
use asgd_oracle::GradientOracle;
use asgd_shmem::StopReason;
use std::sync::Arc;
use std::time::Instant;

/// Maps the spec-level tuning knobs onto the native executors' [`ExecTuning`].
fn native_tuning(spec: &RunSpec) -> ExecTuning {
    ExecTuning {
        layout: match spec.layout {
            ModelLayoutSpec::Compact => ModelLayout::Compact,
            ModelLayoutSpec::Padded => ModelLayout::Padded,
        },
        order: match spec.order {
            UpdateOrderSpec::SeqCst => UpdateOrder::SeqCst,
            UpdateOrderSpec::Relaxed => UpdateOrder::Relaxed,
        },
        sparse: match spec.sparse {
            SparsePathSpec::Auto => SparsePolicy::Auto,
            SparsePathSpec::Dense => SparsePolicy::ForceDense,
            SparsePathSpec::Sparse => SparsePolicy::ForceSparse,
        },
        shards: match spec.shards {
            ShardsSpec::Flat => ShardPolicy::Flat,
            ShardsSpec::Auto => ShardPolicy::Auto,
            ShardsSpec::Fixed(n) => ShardPolicy::Fixed(n),
        },
        pin: spec.pin == PinSpec::On,
        ..ExecTuning::default()
    }
}

/// The realised shard count a sharding native backend reports: the count
/// the store's power-of-two router actually built (chunk rounding can
/// realise fewer shards than [`ShardPolicy::resolve`] requests), `None` for
/// flat ones. The executor builds its store through the same resolve →
/// `pow2` path, so this is the count that actually ran, not a request.
fn realized_shards(spec: &RunSpec, d: usize) -> Option<u64> {
    native_tuning(spec)
        .shards
        .resolve(d)
        .map(|n| asgd_hogwild::ShardRouter::pow2(d, n).shard_count() as u64)
}

/// The sampling stride a session uses: the spec's trajectory stride, or a
/// coarse default for observer-only sessions.
fn effective_stride(spec: &RunSpec) -> u64 {
    spec.trajectory_stride
        .unwrap_or(DEFAULT_PROGRESS_STRIDE)
        .max(1)
}

/// Builds the per-run sample hub, or `None` when nothing observes this run
/// (backends then skip sampling work entirely).
fn hub_for(spec: &RunSpec, ctx: &SessionCtx) -> Option<SampleHub> {
    let hub = SampleHub::new(ctx, spec.trajectory_stride.is_some(), spec.iterations);
    hub.active().then_some(hub)
}

/// The shared session wiring of the four native backends: builds the hub
/// and the [`RunControl`] (stop flag + strided metrics sink forwarding into
/// the hub), re-anchors the sample clock, invokes the executor, and drains
/// the collected trajectory. One definition, so session semantics cannot
/// silently diverge between native backends.
fn with_native_control<R>(
    spec: &RunSpec,
    ctx: &SessionCtx,
    run: impl FnOnce(RunControl<'_>) -> R,
) -> (R, Option<Vec<crate::report::TrajectorySample>>) {
    let hub = hub_for(spec, ctx);
    let sink = |claim: u64, dist_sq: f64| {
        if let Some(hub) = &hub {
            hub.observe(claim, dist_sq);
        }
    };
    // Worker-interval step timing feeds the process-wide telemetry
    // registry: the histogram handle is resolved once per run, the sink
    // records the amortised per-step latency of each stride window. The
    // sink is unconditional — the bench-check overhead gate holds its cost
    // (one strided Instant read + one striped histogram record) at ≤ 3%.
    let step_hist = asgd_telemetry::global().histogram("asgd_hogwild_step_ns");
    let timing = move |_claim: u64, elapsed_ns: u64, steps: u64| {
        step_hist.record(elapsed_ns / steps.max(1));
    };
    let ctrl = RunControl {
        stop: ctx.cancel.as_deref(),
        metrics: hub.as_ref().map(|_| MetricsSink {
            stride: effective_stride(spec),
            f: &sink,
        }),
        timing: Some(TimingSink { f: &timing }),
        serve: ctx.serve.as_deref(),
    };
    if let Some(hub) = &hub {
        // The executor starts its own wall-time clock inside `run`; anchor
        // the sample clock here so both share one origin.
        hub.start_now();
    }
    let out = run(ctrl);
    let trajectory = hub.as_ref().and_then(SampleHub::take_trajectory);
    (out, trajectory)
}

/// An execution model that can run a [`RunSpec`].
pub trait Backend {
    /// Which [`BackendKind`] this backend implements.
    fn kind(&self) -> BackendKind;

    /// Canonical name (mirrors [`BackendKind::name`]).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Executes the spec as a blocking one-shot call — a thin wrapper over
    /// [`Backend::run_session`] with an inert context.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] when the spec cannot be built or is not
    /// executable on this backend.
    fn run(&self, spec: &RunSpec) -> Result<RunReport, DriverError> {
        self.run_session(spec, &SessionCtx::default())
    }

    /// Executes the spec under a session context: progress/trajectory
    /// observation and cooperative cancellation. Attaching a context is pure
    /// observation — it never changes the run's coin streams or update
    /// sequence.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Backend::run`].
    fn run_session(&self, spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError>;
}

/// Returns the backend implementing `kind`.
#[must_use]
pub fn backend(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::Sequential => Box::new(SequentialBackend),
        BackendKind::SimulatedLockFree => Box::new(SimulatedLockFreeBackend),
        BackendKind::SimulatedFullSgd => Box::new(SimulatedFullSgdBackend),
        BackendKind::Hogwild => Box::new(HogwildBackend),
        BackendKind::Locked => Box::new(LockedBackend),
        BackendKind::GuardedEpoch => Box::new(GuardedEpochBackend),
        BackendKind::NativeFullSgd => Box::new(NativeFullSgdBackend),
    }
}

/// Executes `spec` on the backend it selects — the driver's front door.
///
/// # Errors
///
/// Returns [`DriverError::Oracle`] when the oracle spec cannot be built,
/// [`DriverError::InvalidSpec`] for configurations the backend cannot
/// execute, and [`DriverError::Runner`] when the simulator rejects the run.
pub fn run_spec(spec: &RunSpec) -> Result<RunReport, DriverError> {
    run_spec_session(spec, &SessionCtx::default())
}

/// Like [`run_spec`], with a [`SessionCtx`] attached: the observer receives
/// `Started`, periodic `Progress`/`TrajectorySample`, and `Finished` events,
/// and raising the cancel flag ends the run early with
/// `stop: Some("cancelled")`.
///
/// # Errors
///
/// Same conditions as [`run_spec`]. Cancellation is not an error.
pub fn run_spec_session(spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError> {
    validate(spec)?;
    if let Some(obs) = &ctx.observer {
        obs.on_event(&RunEvent::Started {
            backend: spec.backend,
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: spec.iterations,
            seed: spec.seed,
        });
    }
    // Serving hook + observer: forward each snapshot publication as a typed
    // session event (the listener is invoked from the publishing worker, so
    // observers see publications live, in order of version).
    if let (Some(hook), Some(obs)) = (&ctx.serve, &ctx.observer) {
        let obs = Arc::clone(obs);
        hook.set_listener(Box::new(move |version, iteration| {
            obs.on_event(&RunEvent::SnapshotPublished { version, iteration });
        }));
    }
    let result = backend(spec.backend).run_session(spec, ctx);
    if let (Some(obs), Ok(report)) = (&ctx.observer, &result) {
        obs.on_event(&RunEvent::Finished(Box::new(report.clone())));
    }
    result
}

/// Like [`run_spec`] restricted to the simulated lock-free backend, but also
/// returning the full engine-level [`asgd_core::runner::LockFreeRun`]
/// (execution report, raw contention records) for experiments that audit
/// more than the summary — e.g. the Lemma 6.2/6.4 contention experiments.
///
/// # Errors
///
/// Same conditions as [`run_spec`].
pub fn run_simulated_lockfree_detailed(
    spec: &RunSpec,
) -> Result<(RunReport, asgd_core::runner::LockFreeRun), DriverError> {
    validate(spec)?;
    SimulatedLockFreeBackend::run_detailed(spec, &SessionCtx::default())
}

fn validate(spec: &RunSpec) -> Result<(), DriverError> {
    if spec.threads == 0 {
        return Err(DriverError::InvalidSpec(
            "at least one thread required".to_string(),
        ));
    }
    if spec.trajectory_stride == Some(0) {
        return Err(DriverError::InvalidSpec(
            "trajectory stride must be at least 1".to_string(),
        ));
    }
    let alpha = spec.step.initial_alpha();
    if !alpha.is_finite() || alpha <= 0.0 {
        return Err(DriverError::InvalidSpec(format!(
            "learning rate must be positive and finite, got {alpha}"
        )));
    }
    // The scheduler only drives the simulated backends; check that its
    // thread references exist there, so misconfigurations surface as errors
    // instead of panics inside the adversary.
    if matches!(
        spec.backend,
        BackendKind::SimulatedLockFree | BackendKind::SimulatedFullSgd
    ) {
        if let crate::spec::SchedulerSpec::StaleGradient { runner, victim, .. } = spec.scheduler {
            if runner == victim {
                return Err(DriverError::InvalidSpec(format!(
                    "stale-gradient scheduler needs distinct threads, got runner = victim = \
                     {runner}"
                )));
            }
            let highest = runner.max(victim);
            if highest >= spec.threads {
                return Err(DriverError::InvalidSpec(format!(
                    "stale-gradient scheduler references thread {highest}, but the spec runs \
                     only {} threads",
                    spec.threads
                )));
            }
        }
    }
    Ok(())
}

/// Builds the oracle — honouring a [`SessionCtx::oracle`] override — and
/// resolves the initial point, checking dimensions.
fn oracle_and_x0(
    spec: &RunSpec,
    ctx: &SessionCtx,
) -> Result<(Arc<dyn GradientOracle>, Vec<f64>), DriverError> {
    let oracle = match &ctx.oracle {
        Some(oracle) => {
            if oracle.dimension() != spec.oracle.dim {
                return Err(DriverError::InvalidSpec(format!(
                    "session oracle override has dimension {}, spec declares {}",
                    oracle.dimension(),
                    spec.oracle.dim
                )));
            }
            Arc::clone(oracle)
        }
        None => spec.oracle.build()?,
    };
    let d = oracle.dimension();
    let x0 = match &spec.x0 {
        Some(x0) if x0.len() != d => {
            return Err(DriverError::InvalidSpec(format!(
                "x0 has dimension {}, oracle `{}` has {d}",
                x0.len(),
                spec.oracle.kind
            )));
        }
        Some(x0) => x0.clone(),
        None => vec![0.0; d],
    };
    Ok((oracle, x0))
}

/// Splits the total iteration budget across Algorithm-2 epochs.
///
/// Epochs share the budget equally; a non-divisible budget is floored, and
/// every epoch backend executes (and reports) the same
/// `per_epoch × epochs` total, so cross-backend head-to-heads stay
/// equal-budget.
fn epoch_split(spec: &RunSpec) -> Result<(u64, usize), DriverError> {
    let epochs = spec.step.halving_epochs() + 1;
    let per_epoch = spec.iterations / epochs as u64;
    if per_epoch == 0 {
        return Err(DriverError::InvalidSpec(format!(
            "iteration budget {} cannot cover {epochs} epochs",
            spec.iterations
        )));
    }
    Ok((per_epoch, epochs))
}

fn stop_label(stop: StopReason) -> String {
    // Every variant maps to a distinct label: cancellation must never be
    // mistaken for a completed run by JSON consumers.
    match stop {
        StopReason::AllDone => "all-done".to_string(),
        StopReason::StepBudgetExhausted => "step-budget-exhausted".to_string(),
        StopReason::Cancelled => "cancelled".to_string(),
    }
}

/// Stop label of a native run: `None` for a normal completion (native
/// executors do not distinguish reasons), `Some("cancelled")` when the
/// session's cancel flag ended it early.
fn native_stop(cancelled: bool) -> Option<String> {
    cancelled.then(|| "cancelled".to_string())
}

struct SequentialBackend;

impl Backend for SequentialBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sequential
    }

    fn run_session(&self, spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError> {
        let alpha = spec.step.constant_alpha(self.kind())?;
        let (oracle, x0) = oracle_and_x0(spec, ctx)?;
        // Thread 0's coin stream of the concurrent backends, so one spec
        // yields bit-identical trajectories here, on the simulated serial
        // schedule, and on single-threaded Hogwild.
        let seed = SeedSequence::new(spec.seed).child_seed(0);
        let hub = hub_for(spec, ctx).map(Arc::new);
        let mut runner = SequentialSgd::new(&oracle)
            .learning_rate(alpha)
            .iterations(spec.iterations)
            .initial_point(x0)
            .seed(seed);
        if let Some(eps) = spec.success_radius_sq {
            runner = runner.success_radius_sq(eps);
        }
        if let Some(hub) = &hub {
            let sink = Arc::clone(hub);
            runner = runner.inspect(effective_stride(spec), move |t, dist_sq| {
                sink.observe(t, dist_sq);
            });
        }
        if let Some(flag) = &ctx.cancel {
            runner = runner.stop_flag(Arc::clone(flag));
        }
        let started = Instant::now();
        if let Some(hub) = &hub {
            hub.start_now();
        }
        let report = runner.run();
        let wall = started.elapsed().as_secs_f64();
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: report.hit_iteration,
            min_dist_sq: Some(report.min_dist_sq),
            final_dist_sq: report.final_dist_sq,
            final_model: report.final_x,
            wall_time_secs: wall,
            steps: None,
            fingerprint: None,
            stop: native_stop(report.cancelled),
            contention: None,
            stale_rejected: None,
            sparse_path: None,
            shards: None,
            trajectory: hub.as_ref().and_then(|h| h.take_trajectory()),
        })
    }
}

struct SimulatedLockFreeBackend;

impl SimulatedLockFreeBackend {
    fn run_detailed(
        spec: &RunSpec,
        ctx: &SessionCtx,
    ) -> Result<(RunReport, asgd_core::runner::LockFreeRun), DriverError> {
        let alpha = spec.step.constant_alpha(BackendKind::SimulatedLockFree)?;
        let (oracle, x0) = oracle_and_x0(spec, ctx)?;
        let hub = hub_for(spec, ctx).map(Arc::new);
        let mut builder = LockFreeSgd::builder(oracle)
            .threads(spec.threads)
            .iterations(spec.iterations)
            .learning_rate(alpha)
            .initial_point(x0)
            .scheduler(spec.scheduler.build())
            .seed(spec.seed)
            // The dense op scan is the paper-faithful sequence; sparse ops
            // are an explicit opt-in for the simulator.
            .sparse(matches!(spec.sparse, SparsePathSpec::Sparse));
        if let Some(eps) = spec.success_radius_sq {
            builder = builder.success_radius_sq(eps);
        }
        if let Some(steps) = spec.max_steps {
            builder = builder.max_steps(steps);
        }
        if let Some(hub) = &hub {
            let sink = Arc::clone(hub);
            builder = builder.progress(effective_stride(spec), move |t, dist_sq| {
                sink.observe(t, dist_sq);
            });
        }
        if let Some(flag) = &ctx.cancel {
            builder = builder.stop_flag(Arc::clone(flag));
        }
        let started = Instant::now();
        if let Some(hub) = &hub {
            hub.start_now();
        }
        let run = builder.try_run()?;
        let wall = started.elapsed().as_secs_f64();
        let report = RunReport {
            backend: BackendKind::SimulatedLockFree.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: run.execution.contention.iterations(),
            seed: spec.seed,
            hit_iteration: run.hit_iteration,
            min_dist_sq: spec.success_radius_sq.map(|_| run.min_dist_sq),
            final_dist_sq: run.final_dist_sq,
            final_model: run.final_model.clone(),
            wall_time_secs: wall,
            steps: Some(run.execution.steps),
            fingerprint: Some(run.execution.fingerprint),
            stop: Some(stop_label(run.execution.stop)),
            contention: Some(ContentionSummary::from_report(&run.execution.contention)),
            stale_rejected: None,
            sparse_path: Some(run.used_sparse),
            shards: None,
            trajectory: hub.as_ref().and_then(|h| h.take_trajectory()),
        };
        Ok((report, run))
    }
}

impl Backend for SimulatedLockFreeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SimulatedLockFree
    }

    fn run_session(&self, spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError> {
        Self::run_detailed(spec, ctx).map(|(report, _)| report)
    }
}

struct SimulatedFullSgdBackend;

impl Backend for SimulatedFullSgdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SimulatedFullSgd
    }

    fn run_session(&self, spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError> {
        let (per_epoch, epochs) = epoch_split(spec)?;
        let (oracle, x0) = oracle_and_x0(spec, ctx)?;
        let cfg = FullSgdConfig {
            alpha0: spec.step.initial_alpha(),
            epoch_iterations: per_epoch,
            halving_epochs: epochs - 1,
        };
        let hub = hub_for(spec, ctx).map(Arc::new);
        let session = SimSession {
            stop_flag: ctx.cancel.clone(),
            progress: hub.as_ref().map(|hub| {
                let sink = Arc::clone(hub);
                let f: Box<dyn FnMut(u64, f64)> =
                    Box::new(move |t, dist_sq| sink.observe(t, dist_sq));
                (effective_stride(spec), f)
            }),
        };
        let started = Instant::now();
        if let Some(hub) = &hub {
            hub.start_now();
        }
        let report = run_simulated_session(
            oracle,
            cfg,
            spec.threads,
            &x0,
            spec.scheduler.build(),
            spec.seed,
            spec.max_steps,
            session,
        );
        let wall = started.elapsed().as_secs_f64();
        let cancelled = report.execution.stop == StopReason::Cancelled;
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            // The claim budget is executed in full unless the run was cut
            // short; then report the ordered iterations actually started.
            iterations: if cancelled {
                report.execution.contention.iterations()
            } else {
                per_epoch * epochs as u64
            },
            seed: spec.seed,
            hit_iteration: None,
            min_dist_sq: None,
            final_dist_sq: report.dist_to_opt * report.dist_to_opt,
            final_model: report.r,
            wall_time_secs: wall,
            steps: Some(report.execution.steps),
            fingerprint: Some(report.execution.fingerprint),
            stop: Some(stop_label(report.execution.stop)),
            contention: Some(ContentionSummary::from_report(&report.execution.contention)),
            stale_rejected: None,
            sparse_path: None,
            shards: None,
            trajectory: hub.as_ref().and_then(|h| h.take_trajectory()),
        })
    }
}

struct HogwildBackend;

impl Backend for HogwildBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Hogwild
    }

    fn run_session(&self, spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError> {
        let alpha = spec.step.constant_alpha(self.kind())?;
        let (oracle, x0) = oracle_and_x0(spec, ctx)?;
        let (report, trajectory) = with_native_control(spec, ctx, |ctrl| {
            Hogwild::new(
                oracle,
                HogwildConfig {
                    threads: spec.threads,
                    iterations: spec.iterations,
                    alpha,
                    seed: spec.seed,
                    success_radius_sq: spec.success_radius_sq,
                },
            )
            .tuning(native_tuning(spec))
            .run_controlled(&x0, ctrl)
        });
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: report.first_success_claim,
            min_dist_sq: None,
            final_dist_sq: report.final_dist_sq,
            final_model: report.final_model,
            wall_time_secs: report.elapsed.as_secs_f64(),
            steps: None,
            fingerprint: None,
            stop: native_stop(report.cancelled),
            contention: None,
            stale_rejected: None,
            sparse_path: Some(report.used_sparse),
            shards: realized_shards(spec, x0.len()),
            trajectory,
        })
    }
}

struct LockedBackend;

impl Backend for LockedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Locked
    }

    fn run_session(&self, spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError> {
        let alpha = spec.step.constant_alpha(self.kind())?;
        let (oracle, x0) = oracle_and_x0(spec, ctx)?;
        let (report, trajectory) = with_native_control(spec, ctx, |ctrl| {
            LockedSgd::new(oracle, spec.threads, spec.iterations, alpha, spec.seed)
                .tuning(native_tuning(spec))
                .run_controlled(&x0, ctrl)
        });
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: None,
            min_dist_sq: None,
            final_dist_sq: report.final_dist_sq,
            final_model: report.final_model,
            wall_time_secs: report.elapsed.as_secs_f64(),
            steps: None,
            fingerprint: None,
            stop: native_stop(report.cancelled),
            contention: None,
            stale_rejected: None,
            sparse_path: Some(report.used_sparse),
            // The locked baseline's global mutex serialises every update;
            // arenas would shard nothing, so the knob is ignored here.
            shards: None,
            trajectory,
        })
    }
}

struct GuardedEpochBackend;

impl Backend for GuardedEpochBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::GuardedEpoch
    }

    fn run_session(&self, spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError> {
        // Same floored per-epoch budget as the other epoch backends, so one
        // spec compares equal iteration counts everywhere (the executor
        // itself can distribute remainders, but the driver keeps backends
        // aligned).
        let (per_epoch, epochs) = epoch_split(spec)?;
        let (oracle, x0) = oracle_and_x0(spec, ctx)?;
        let (report, trajectory) = with_native_control(spec, ctx, |ctrl| {
            GuardedEpochSgd::new(
                oracle,
                GuardedEpochSgdConfig {
                    threads: spec.threads,
                    iterations: per_epoch * epochs as u64,
                    alpha0: spec.step.initial_alpha(),
                    halving_epochs: spec.step.halving_epochs(),
                    seed: spec.seed,
                    success_radius_sq: spec.success_radius_sq,
                },
            )
            .tuning(native_tuning(spec))
            .run_controlled(&x0, ctrl)
        });
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: report.first_success_claim,
            min_dist_sq: None,
            final_dist_sq: report.final_dist_sq,
            final_model: report.final_model,
            wall_time_secs: report.elapsed.as_secs_f64(),
            steps: None,
            fingerprint: None,
            stop: native_stop(report.cancelled),
            contention: None,
            stale_rejected: Some(report.stale_rejected),
            sparse_path: Some(report.used_sparse),
            shards: realized_shards(spec, x0.len()),
            trajectory,
        })
    }
}

struct NativeFullSgdBackend;

impl Backend for NativeFullSgdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::NativeFullSgd
    }

    fn run_session(&self, spec: &RunSpec, ctx: &SessionCtx) -> Result<RunReport, DriverError> {
        let (per_epoch, epochs) = epoch_split(spec)?;
        let (oracle, x0) = oracle_and_x0(spec, ctx)?;
        let (report, trajectory) = with_native_control(spec, ctx, |ctrl| {
            NativeFullSgd::new(
                oracle,
                NativeFullSgdConfig {
                    alpha0: spec.step.initial_alpha(),
                    epoch_iterations: per_epoch,
                    halving_epochs: epochs - 1,
                    threads: spec.threads,
                    seed: spec.seed,
                },
            )
            .tuning(native_tuning(spec))
            .run_controlled(&x0, ctrl)
        });
        Ok(RunReport {
            backend: self.name().to_string(),
            oracle: spec.oracle.kind.clone(),
            threads: spec.threads,
            iterations: report.iterations,
            seed: spec.seed,
            hit_iteration: None,
            min_dist_sq: None,
            final_dist_sq: report.dist_to_opt * report.dist_to_opt,
            final_model: report.r,
            wall_time_secs: report.elapsed.as_secs_f64(),
            steps: None,
            fingerprint: None,
            stop: native_stop(report.cancelled),
            contention: None,
            stale_rejected: None,
            sparse_path: Some(report.used_sparse),
            shards: realized_shards(spec, x0.len()),
            trajectory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SchedulerSpec, StepSize};
    use asgd_oracle::OracleSpec;

    fn base_spec() -> RunSpec {
        RunSpec::new(
            OracleSpec::new("noisy-quadratic", 2).sigma(0.1),
            BackendKind::SimulatedLockFree,
        )
        .threads(2)
        .iterations(400)
        .learning_rate(0.05)
        .x0(vec![1.0, -1.0])
        .success_radius_sq(0.05)
        .seed(11)
        .scheduler(SchedulerSpec::Random { seed: 3 })
    }

    #[test]
    fn every_backend_reports_its_kind() {
        for &kind in BackendKind::all() {
            assert_eq!(backend(kind).kind(), kind);
            assert_eq!(backend(kind).name(), kind.name());
        }
    }

    #[test]
    fn validation_rejects_broken_specs() {
        let spec = base_spec().threads(0);
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        let mut spec = base_spec();
        spec.step = StepSize::Constant { alpha: -0.5 };
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        let spec = base_spec().x0(vec![1.0]);
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        let mut spec = base_spec();
        spec.oracle.kind = "no-such-oracle".to_string();
        assert!(matches!(run_spec(&spec), Err(DriverError::Oracle(_))));
    }

    #[test]
    fn halving_schedule_is_rejected_on_constant_backends() {
        for kind in [
            BackendKind::Sequential,
            BackendKind::SimulatedLockFree,
            BackendKind::Hogwild,
            BackendKind::Locked,
        ] {
            let spec = base_spec().backend(kind).halving(0.1, 2);
            assert!(
                matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))),
                "{kind} must reject halving schedules"
            );
        }
    }

    #[test]
    fn epoch_backends_need_budget_for_every_epoch() {
        for kind in [
            BackendKind::SimulatedFullSgd,
            BackendKind::NativeFullSgd,
            BackendKind::GuardedEpoch,
        ] {
            let spec = base_spec().backend(kind).halving(0.1, 7).iterations(4);
            assert!(
                matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))),
                "{kind} must reject budget 4 over 8 epochs"
            );
        }
    }

    #[test]
    fn stale_scheduler_thread_references_are_validated() {
        // A stale-gradient adversary naming a thread the spec does not run
        // must be an error, not an index-out-of-bounds panic in the
        // scheduler.
        let spec = base_spec()
            .threads(1)
            .scheduler(SchedulerSpec::StaleGradient {
                runner: 0,
                victim: 1,
                delay: 4,
            });
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        let spec = base_spec().scheduler(SchedulerSpec::StaleGradient {
            runner: 1,
            victim: 1,
            delay: 4,
        });
        assert!(matches!(run_spec(&spec), Err(DriverError::InvalidSpec(_))));
        // Native backends ignore the scheduler; the same spec runs there.
        let spec = base_spec()
            .backend(BackendKind::Hogwild)
            .threads(1)
            .scheduler(SchedulerSpec::StaleGradient {
                runner: 0,
                victim: 1,
                delay: 4,
            });
        assert!(run_spec(&spec).is_ok());
    }

    #[test]
    fn epoch_backends_execute_identical_floored_budgets() {
        // 100 iterations over 3 epochs floors to 33 × 3 = 99 on *every*
        // epoch backend — cross-backend head-to-heads stay equal-budget.
        let spec = base_spec().halving(0.1, 2).iterations(100);
        for kind in [
            BackendKind::SimulatedFullSgd,
            BackendKind::NativeFullSgd,
            BackendKind::GuardedEpoch,
        ] {
            let report = run_spec(&spec.clone().backend(kind)).unwrap();
            assert_eq!(report.iterations, 99, "{kind}");
        }
    }

    #[test]
    fn sparse_knob_reaches_every_concurrent_backend() {
        use crate::spec::SparsePathSpec;
        let base = RunSpec::new(
            OracleSpec::new("sparse-quadratic", 16).sigma(0.0),
            BackendKind::Hogwild,
        )
        .threads(2)
        .iterations(600)
        .learning_rate(0.01)
        .x0(vec![1.0; 16])
        .seed(5);
        // Constant-step native backends + the simulator honour the forced
        // paths and report which one ran.
        for kind in [
            BackendKind::Hogwild,
            BackendKind::Locked,
            BackendKind::SimulatedLockFree,
        ] {
            let dense = run_spec(&base.clone().backend(kind).sparse(SparsePathSpec::Dense))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(dense.sparse_path, Some(false), "{kind}");
            let sparse = run_spec(&base.clone().backend(kind).sparse(SparsePathSpec::Sparse))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(sparse.sparse_path, Some(true), "{kind}");
        }
        for kind in [BackendKind::GuardedEpoch, BackendKind::NativeFullSgd] {
            let report = run_spec(&base.clone().backend(kind).sparse(SparsePathSpec::Sparse))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(report.sparse_path, Some(true), "{kind}");
        }
        // Sequential has no dense/sparse distinction.
        let seq = run_spec(&base.clone().backend(BackendKind::Sequential)).unwrap();
        assert_eq!(seq.sparse_path, None);
    }

    #[test]
    fn shards_knob_reaches_sharding_backends_and_reports_the_realized_count() {
        use crate::spec::{PinSpec, ShardsSpec};
        let base = RunSpec::new(
            OracleSpec::new("noisy-quadratic", 8).sigma(0.0),
            BackendKind::Hogwild,
        )
        .threads(2)
        .iterations(200)
        .learning_rate(0.05)
        .x0(vec![1.0; 8])
        .seed(5);
        for kind in [BackendKind::Hogwild, BackendKind::NativeFullSgd] {
            let spec = match kind {
                BackendKind::NativeFullSgd => base.clone().backend(kind).halving(0.05, 1),
                _ => base.clone().backend(kind),
            };
            let flat = run_spec(&spec).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(flat.shards, None, "{kind}: flat stores report no shards");
            let sharded = run_spec(&spec.shards(ShardsSpec::Fixed(4)).pin(PinSpec::On))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(sharded.shards, Some(4), "{kind}");
        }
        // The guarded backend shards its packed-word store the same way —
        // and the report carries the *realised* count: Fixed(3) at d = 8
        // rounds the chunk ceil(8/3) = 3 up to 4, so 2 shards actually run.
        let guarded = run_spec(
            &base
                .clone()
                .backend(BackendKind::GuardedEpoch)
                .halving(0.05, 1)
                .shards(ShardsSpec::Fixed(3)),
        )
        .unwrap();
        assert_eq!(guarded.shards, Some(2));
        // The locked baseline serialises on a global mutex: knob ignored.
        let locked = run_spec(
            &base
                .clone()
                .backend(BackendKind::Locked)
                .shards(ShardsSpec::Fixed(4)),
        )
        .unwrap();
        assert_eq!(locked.shards, None);
        // Fixed counts clamp to the dimension, and the report shows the
        // clamped (realised) count, not the request.
        let clamped = run_spec(&base.clone().shards(ShardsSpec::Fixed(1000))).unwrap();
        assert_eq!(clamped.shards, Some(8));
    }

    #[test]
    fn layout_and_order_knobs_run_on_native_backends() {
        use crate::spec::{ModelLayoutSpec, UpdateOrderSpec};
        let spec = base_spec()
            .backend(BackendKind::Hogwild)
            .layout(ModelLayoutSpec::Padded)
            .order(UpdateOrderSpec::Relaxed);
        let report = run_spec(&spec).unwrap();
        assert!(report.final_dist_sq < 0.5, "dist² {}", report.final_dist_sq);
    }

    #[test]
    fn detailed_run_matches_summary() {
        let spec = base_spec();
        let (mut report, run) = run_simulated_lockfree_detailed(&spec).unwrap();
        assert_eq!(report.fingerprint, Some(run.execution.fingerprint));
        assert_eq!(
            report.contention.as_ref().unwrap().tau_max,
            run.execution.contention.tau_max()
        );
        let mut again = run_spec(&spec).unwrap();
        // Wall time is the one non-deterministic field.
        report.wall_time_secs = 0.0;
        again.wall_time_secs = 0.0;
        assert_eq!(again, report, "deterministic backend");
    }
}
