//! Deterministic RNG fan-out.
//!
//! Simulated and native threads each need an independent stream of "local
//! coins" (sample indices, gradient noise). The adversarial scheduler must be
//! able to observe those coins (strong adversary, §2 of the paper), and the
//! whole execution must replay bit-identically from a single master seed.
//! [`SeedSequence`] derives child seeds from a master seed with a SplitMix64
//! step, which is the standard way to decorrelate sequential seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent child RNGs from one master seed.
///
/// # Example
///
/// ```
/// use asgd_math::rng::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// let a = seq.child_seed(0);
/// let b = seq.child_seed(1);
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).child_seed(0)); // reproducible
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    #[must_use]
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Returns the master seed.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the seed for child `index` (SplitMix64 finalizer).
    #[must_use]
    pub fn child_seed(&self, index: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Builds a seeded [`StdRng`] for child `index`.
    #[must_use]
    pub fn child_rng(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.child_seed(index))
    }

    /// Derives a sub-sequence (e.g. per-trial, then per-thread within the
    /// trial) rooted at child `index`.
    #[must_use]
    pub fn subsequence(&self, index: u64) -> SeedSequence {
        SeedSequence::new(self.child_seed(index))
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix on `u64`.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn children_are_distinct() {
        let seq = SeedSequence::new(7);
        let seeds: HashSet<u64> = (0..1000).map(|i| seq.child_seed(i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn reproducible_across_instances() {
        let a = SeedSequence::new(99).child_rng(3).gen::<u64>();
        let b = SeedSequence::new(99).child_rng(3).gen::<u64>();
        assert_eq!(a, b);
    }

    #[test]
    fn different_masters_diverge() {
        assert_ne!(
            SeedSequence::new(1).child_seed(0),
            SeedSequence::new(2).child_seed(0)
        );
    }

    #[test]
    fn subsequence_nests() {
        let root = SeedSequence::new(5);
        let trial = root.subsequence(10);
        // A trial's thread seeds differ from the root's direct children.
        assert_ne!(trial.child_seed(0), root.child_seed(0));
        assert_eq!(trial.master(), root.child_seed(10));
    }

    proptest! {
        /// splitmix64 is a bijection on a sampled domain: no collisions among
        /// distinct inputs drawn in a batch.
        #[test]
        fn splitmix_injective_on_sample(xs in proptest::collection::hash_set(any::<u64>(), 2..64)) {
            let ys: HashSet<u64> = xs.iter().map(|&x| splitmix64(x)).collect();
            prop_assert_eq!(xs.len(), ys.len());
        }
    }
}
