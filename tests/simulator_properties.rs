//! Property-based invariants of the simulated machine, over randomly drawn
//! configurations (thread counts, dimensions, budgets, seeds, schedulers).
//!
//! These are the structural facts every experiment silently relies on:
//! exact claim partitioning, conservation of fetch&add updates, contention
//! bounds, adversary budget adherence, and determinism.

use asyncsgd::core::runner::{LockFreeRun, LockFreeSgd};
use asyncsgd::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn run_cfg(n: usize, d: usize, t: u64, sched: Box<dyn Scheduler>, seed: u64) -> LockFreeRun {
    let oracle = Arc::new(NoisyQuadratic::new(d, 0.5).expect("valid"));
    LockFreeSgd::builder(oracle)
        .threads(n)
        .iterations(t)
        .learning_rate(0.05)
        .initial_point(vec![1.0; d])
        .scheduler(sched)
        .seed(seed)
        .run()
}

fn arb_scheduler() -> impl Strategy<Value = (String, u64)> {
    // (kind, scheduler seed/budget); constructed per run to avoid Clone
    // bounds on trait objects.
    prop_oneof![
        Just(("rr".to_string(), 0_u64)),
        (1_u64..1000).prop_map(|s| ("random".to_string(), s)),
        (1_u64..24).prop_map(|b| ("delay".to_string(), b)),
    ]
}

fn make_scheduler(kind: &str, param: u64) -> Box<dyn Scheduler> {
    match kind {
        "rr" => Box::new(StepRoundRobin::new()),
        "random" => Box::new(RandomScheduler::new(param)),
        "delay" => Box::new(BoundedDelayAdversary::new(param)),
        other => unreachable!("unknown scheduler kind {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly T ordered iterations execute, the claim counter ends at
    /// T + n (each thread's failing claim), and every started iteration
    /// completes under non-crashing schedulers.
    #[test]
    fn claims_partition_exactly(
        n in 1_usize..5,
        d in 1_usize..6,
        t in 1_u64..120,
        (kind, param) in arb_scheduler(),
        seed in 0_u64..1_000,
    ) {
        let run = run_cfg(n, d, t, make_scheduler(&kind, param), seed);
        prop_assert_eq!(run.execution.contention.iterations(), t);
        prop_assert_eq!(run.execution.contention.incomplete(), 0);
        prop_assert_eq!(run.execution.memory.counter(0), t + n as u64);
        prop_assert_eq!(run.execution.halted, n);
    }

    /// The final model equals x₀ plus the sum of every applied delta —
    /// fetch&add loses nothing under any schedule. (Verified through the
    /// accumulator monitor's final state.)
    #[test]
    fn no_update_is_ever_lost(
        n in 1_usize..4,
        t in 1_u64..80,
        (kind, param) in arb_scheduler(),
        seed in 0_u64..1_000,
    ) {
        let d = 3;
        let oracle = Arc::new(NoisyQuadratic::new(d, 0.5).expect("valid"));
        let run = LockFreeSgd::builder(oracle)
            .threads(n)
            .iterations(t)
            .learning_rate(0.05)
            .initial_point(vec![1.0; d])
            .success_radius_sq(1e-12) // monitor on; region effectively unreachable
            .scheduler(make_scheduler(&kind, param))
            .seed(seed)
            .run();
        // With no incomplete iterations the monitor's accumulator must equal
        // the final shared model exactly (same additions, same order per
        // entry — faa is order-insensitive only up to fp rounding, so allow
        // tiny slack).
        prop_assert_eq!(run.execution.contention.incomplete(), 0);
        for j in 0..d {
            prop_assert!((run.min_dist_sq).is_finite());
            prop_assert!(run.final_model[j].is_finite());
        }
    }

    /// Contention structure: τ_avg ≤ 2n (§2), Lemma 6.4, and Lemma 6.2 hold
    /// on every randomly drawn execution.
    #[test]
    fn contention_lemmas_hold(
        n in 2_usize..5,
        t in 20_u64..150,
        (kind, param) in arb_scheduler(),
        seed in 0_u64..1_000,
    ) {
        let run = run_cfg(n, 4, t, make_scheduler(&kind, param), seed);
        let c = &run.execution.contention;
        prop_assert!(c.gibson_gramoli_holds(),
            "τ_avg = {} > 2n = {} under {}", c.tau_avg(), 2 * n, kind);
        prop_assert!(c.lemma_6_4().holds);
        for k in [1, 2] {
            if let Some(audit) = c.lemma_6_2(k) {
                prop_assert!(audit.holds, "Lemma 6.2 K={} violated: {:?}", k, audit);
            }
        }
    }

    /// Determinism: identical configuration ⇒ identical fingerprint; and the
    /// per-thread coin streams are genuinely independent (different master
    /// seeds diverge).
    #[test]
    fn executions_are_deterministic(
        n in 1_usize..4,
        t in 1_u64..60,
        (kind, param) in arb_scheduler(),
        seed in 0_u64..1_000,
    ) {
        let a = run_cfg(n, 2, t, make_scheduler(&kind, param), seed);
        let b = run_cfg(n, 2, t, make_scheduler(&kind, param), seed);
        prop_assert_eq!(a.execution.fingerprint, b.execution.fingerprint);
        prop_assert_eq!(a.final_model.clone(), b.final_model.clone());
        let c = run_cfg(n, 2, t, make_scheduler(&kind, param), seed ^ 0xDEAD_BEEF);
        // Coin streams differ; with noise σ > 0 the trajectories must too.
        prop_assert_ne!(a.execution.fingerprint, c.execution.fingerprint);
    }

    /// The bounded-delay adversary manufactures contention roughly at its
    /// budget but never pathologically beyond it (release slack ≤ budget + 2n).
    #[test]
    fn delay_adversary_budget_adherence(
        n in 2_usize..5,
        budget in 2_u64..20,
        seed in 0_u64..1_000,
    ) {
        let t = 60 + 4 * budget;
        let run = run_cfg(n, 3, t, Box::new(BoundedDelayAdversary::new(budget)), seed);
        let tau_max = run.execution.contention.tau_max();
        prop_assert!(tau_max <= budget + 2 * n as u64 + 2,
            "τ_max = {} wildly exceeds budget {} (n = {})", tau_max, budget, n);
    }
}
