//! The serving subsystem's error type.

use asgd_driver::{BackendKind, DriverError};

/// Error starting or driving a serving workload.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The underlying training run failed to build or execute.
    Driver(DriverError),
    /// The training spec selects a backend without serving support (only
    /// the native `hogwild` backend exposes readers today).
    UnsupportedBackend(BackendKind),
    /// The serve spec itself is not executable (zero clients, bad duration
    /// or rate, zero probe, unknown label).
    InvalidSpec(String),
    /// The executor never attached a reader (the run ended or stalled
    /// before exposing one).
    AttachTimeout,
    /// A registry create collided with an existing model name.
    DuplicateModel(String),
    /// A registry lookup by name found no such model.
    NoSuchModel(String),
    /// A registry lookup by id found no such model (never created, or
    /// already dropped) — the error a query against a dropped model gets.
    NoSuchModelId(u32),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Driver(e) => write!(f, "training run: {e}"),
            Self::UnsupportedBackend(kind) => write!(
                f,
                "backend `{kind}` has no serving support (use the hogwild backend)"
            ),
            Self::InvalidSpec(msg) => write!(f, "invalid serve spec: {msg}"),
            Self::AttachTimeout => {
                write!(f, "the training run never attached a model reader")
            }
            Self::DuplicateModel(name) => {
                write!(f, "a model named `{name}` already exists")
            }
            Self::NoSuchModel(name) => write!(f, "no model named `{name}`"),
            Self::NoSuchModelId(id) => {
                write!(f, "no model with id {id} (never created, or dropped)")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Driver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DriverError> for ServeError {
    fn from(e: DriverError) -> Self {
        Self::Driver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_cause() {
        let e = ServeError::UnsupportedBackend(BackendKind::Locked);
        assert!(e.to_string().contains("locked"));
        let e = ServeError::from(DriverError::InvalidSpec("nope".to_string()));
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ServeError::AttachTimeout.to_string().contains("reader"));
        let e = ServeError::DuplicateModel("ranker".to_string());
        assert!(e.to_string().contains("ranker"));
        let e = ServeError::NoSuchModel("ghost".to_string());
        assert!(e.to_string().contains("ghost"));
        let e = ServeError::NoSuchModelId(17);
        assert!(e.to_string().contains("17"));
    }
}
