//! The chaos tier's contract, end to end: the bounded-preemption explorer
//! exhaustively verifies the shipped snapshot protocol (2 publishers × 1
//! reader, every ≤k-preemption schedule), catches a deliberately weakened
//! publish fence with a minimized counterexample whose trace replays to
//! the *identical* violation and round-trips through the shmem schedule
//! codec, and — property-tested — every counterexample any buggy model
//! configuration produces replays bit-for-bit. On the network side, a
//! served workload under chaotic fault injection (partial frames, short
//! reads, mid-frame disconnects on both ends of every connection) answers
//! with zero wrong bits: only retried successes or typed errors.

use asyncsgd::chaos::{
    replay, AddMode, AtomicAddModel, Explorer, FenceMode, NetChaosSpec, RegistryMode,
    RegistryModel, ReplayOutcome, SnapshotModel, Violation,
};
use asyncsgd::net::FaultPlan;
use asyncsgd::shmem::sched::decode_schedule;
use proptest::prelude::*;

// ------------------------------------------------------ explorer, exhaustive

/// The ISSUE's headline cell: `SnapshotCell`'s seqlock with 2 publishers
/// and 1 reader, exhaustively model-checked over every schedule within the
/// preemption bound — no torn snapshot, no version regression, bounded
/// reader retries, on *all* of them.
#[test]
fn snapshot_two_publishers_one_reader_verifies_exhaustively() {
    for bound in 0..=3 {
        let report = Explorer::with_bound(bound).explore(
            &SnapshotModel::two_publishers_one_reader(FenceMode::Correct),
        );
        assert!(
            report.verified(),
            "bound {bound}: {:?}",
            report.counterexample
        );
        assert!(!report.truncated, "bound {bound} must enumerate fully");
    }
}

/// The same cell under buffer reuse (each publisher publishes twice, so a
/// slot is overwritten while a reader may still be copying) — the regime
/// where a weak fence actually tears — still verifies with the correct
/// fence.
#[test]
fn snapshot_buffer_reuse_verifies_within_the_bound() {
    let report = Explorer::with_bound(2).explore(&SnapshotModel::buffer_reuse(FenceMode::Correct));
    assert!(report.verified(), "{:?}", report.counterexample);
    assert!(report.schedules > 100, "exhaustive run, not a single path");
}

/// The deliberately seeded ordering bug: announcing the write sequence
/// *after* filling the buffer lets a reader validate a torn copy. The
/// explorer must catch it, the counterexample must be minimal in
/// preemptions (iterative deepening), its trace must replay to the
/// bit-identical violation, and the artifact string must round-trip
/// through the shmem schedule codec it reuses.
#[test]
fn weakened_fence_yields_a_minimized_replayable_artifact() {
    let model = SnapshotModel::buffer_reuse(FenceMode::WeakPublish);
    let report = Explorer::with_bound(3).explore(&model);
    let cex = report.counterexample.expect("seeded bug must be caught");
    assert!(cex.violation.message.contains("torn snapshot"), "{cex:?}");
    assert!(
        cex.preemptions <= 2,
        "deepening finds few-preemption traces"
    );

    // Bit-for-bit replay: same message, same step.
    assert_eq!(
        replay(&model, &cex.trace),
        Err(ReplayOutcome::Violation(cex.violation.clone()))
    );

    // The artifact is a shmem schedule: decode, then replay the decoded
    // trace — still the identical violation.
    let decoded = decode_schedule(&cex.artifact()).expect("artifact decodes");
    assert_eq!(decoded, cex.trace);
    assert_eq!(
        replay(&model, &decoded),
        Err(ReplayOutcome::Violation(cex.violation.clone()))
    );
}

/// Conservation and lifecycle cells: the shipped implementations verify;
/// the seeded bugs are caught.
#[test]
fn conservation_and_lifecycle_cells_split_correct_from_buggy() {
    assert!(Explorer::with_bound(2)
        .explore(&AtomicAddModel::two_by_two(AddMode::Cas))
        .verified());
    assert!(Explorer::with_bound(2)
        .explore(&RegistryModel::name_race(RegistryMode::Locked))
        .verified());
    assert!(Explorer::with_bound(2)
        .explore(&AtomicAddModel::two_by_two(AddMode::BlindStore))
        .counterexample
        .is_some());
    assert!(Explorer::with_bound(2)
        .explore(&RegistryModel::name_race(RegistryMode::SplitCheck))
        .counterexample
        .is_some());
}

// -------------------------------------------------- replay fidelity (property)

/// Replays `cex` against `model` and asserts the identical violation plus
/// artifact round-trip — the shared body of the property tests.
fn assert_replays_identically<P: asyncsgd::chaos::Schedulable>(
    model: &P,
    cex: &asyncsgd::chaos::Counterexample,
) {
    let outcome = replay(model, &cex.trace);
    assert_eq!(
        outcome,
        Err(ReplayOutcome::Violation(Violation {
            message: cex.violation.message.clone(),
            step: cex.violation.step,
        })),
        "a counterexample must reproduce its own violation"
    );
    let decoded = decode_schedule(&cex.artifact()).expect("artifact decodes");
    assert_eq!(decoded, cex.trace, "artifact round-trips losslessly");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any counterexample the explorer finds — across buggy atomic-model
    /// shapes and preemption bounds — replays bit-for-bit.
    #[test]
    fn atomic_counterexamples_replay_bit_for_bit(
        threads in 2..4_usize,
        adds_each in 1..3_usize,
        bound in 1..3_usize,
    ) {
        let model = AtomicAddModel { threads, adds_each, mode: AddMode::BlindStore };
        let report = Explorer::with_bound(bound).explore(&model);
        if let Some(cex) = &report.counterexample {
            assert_replays_identically(&model, cex);
        }
    }

    /// Same property across the snapshot model's fence modes and bounds:
    /// whenever there is a counterexample at all, it replays identically.
    #[test]
    fn snapshot_counterexamples_replay_bit_for_bit(
        weak in any::<bool>(),
        bound in 1..3_usize,
    ) {
        let fence = if weak { FenceMode::WeakPublish } else { FenceMode::Correct };
        let model = SnapshotModel::buffer_reuse(fence);
        let report = Explorer::with_bound(bound).explore(&model);
        if let Some(cex) = &report.counterexample {
            assert_replays_identically(&model, cex);
        }
    }
}

// ------------------------------------------------------------- net campaign

/// The fault-injection campaign: chaotic plans on both sides of every
/// connection — partial writes, short reads, delays, and a budget of
/// mid-frame disconnects — against a live server. Zero wrong answers is
/// the whole point; retries/reconnects prove the churn was real rather
/// than the test passing vacuously.
#[test]
fn net_campaign_under_churn_has_zero_wrong_answers() {
    let mut spec = NetChaosSpec::new(0xD15C0);
    spec.clients = 3;
    spec.requests_per_client = 24;
    spec.dim = 16;
    let report = asyncsgd::chaos::run_net_chaos(&spec).expect("harness runs");
    assert_eq!(report.requests, 72);
    assert!(report.zero_wrong(), "{report:?}");
    assert!(report.exact > 0, "some requests must succeed: {report:?}");
    assert!(
        report.retries + report.reconnects > 0,
        "chaotic plans must actually cause churn: {report:?}"
    );
}

/// Determinism of the fault layer itself: the same campaign seed yields
/// the same fault decisions, so two identical campaigns agree on how much
/// churn they injected (the reports' retry/reconnect counters can shift
/// with thread timing, but the *plans* derived per connection must not).
#[test]
fn fault_plans_derive_deterministically_per_connection() {
    let plan = FaultPlan::chaotic(42);
    for salt in 0..8 {
        assert_eq!(plan.child(salt), plan.child(salt));
    }
    // distinct connections get decorrelated sequences
    assert_ne!(plan.child(0).seed, plan.child(1).seed);
}
