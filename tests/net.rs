//! The network tier's contract: the wire codec round-trips every frame —
//! including the v2 submit-observe opcode and its `Ingested` reply, NaN
//! payloads and all — and rejects malformed bytes, truncations, oversized
//! observations, and foreign protocol versions without panicking
//! (property-tested), the
//! multi-model registry survives concurrent create/query/drop races under
//! live socket load, dropped models answer with typed errors, cancellation
//! through `drop_model` stays inside the session latency bound even while
//! clients hammer the socket, and a 1-thread served run reads back
//! **bit-identically** to the sequential backend through the socket path —
//! the workspace's sequential-equivalence oracle extended across TCP.

use asyncsgd::net::{
    ErrorCode, FrameError, NetClient, NetConfig, NetServer, Priority, Request, RequestFrame,
    Response, StatsSelector, MAX_OBSERVE_LEN, MAX_PROBE_LEN, PROTOCOL_VERSION,
};
use asyncsgd::prelude::*;
use asyncsgd::serve::ModelRegistry;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ----------------------------------------------------------- wire codec

fn arb_priority() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::Low),
        Just(Priority::Normal),
        Just(Priority::High),
    ]
}

/// Arbitrary f64 *bit patterns* — including NaNs, infinities, and
/// subnormals. The protocol ships bits, so every pattern must survive.
fn arb_f64_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// ASCII strings of the wire's practical shapes (model names, messages).
fn arb_string(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(32_u8..127, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            any::<u32>(),
            proptest::collection::vec((any::<u32>(), arb_f64_bits()), 0..16),
        )
            .prop_map(|(model, probe)| Request::DotScore { model, probe }),
        any::<u32>().prop_map(|model| Request::Predict { model }),
        (any::<u32>(), any::<u32>(), 0..1024_u32)
            .prop_map(|(model, start, len)| { Request::FetchRange { model, start, len } }),
        any::<u32>().prop_map(|id| Request::ModelStats {
            selector: StatsSelector::ById(id),
        }),
        arb_string(64).prop_map(|name| Request::ModelStats {
            selector: StatsSelector::ByName(name),
        }),
        (
            any::<u32>(),
            proptest::collection::vec((any::<u32>(), arb_f64_bits()), 0..16),
            arb_f64_bits(),
        )
            .prop_map(|(model, features, label)| Request::SubmitObserve {
                model,
                features,
                label,
            }),
        Just(Request::StatsScrape),
    ]
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::NoSuchModel),
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::VersionMismatch),
        Just(ErrorCode::AdmissionDenied),
        Just(ErrorCode::Busy),
        Just(ErrorCode::Internal),
        Just(ErrorCode::Overloaded),
    ]
}

fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_stats() -> impl Strategy<Value = asyncsgd::serve::ModelStats> {
    (
        (any::<u32>(), arb_string(64), any::<u64>()),
        (any::<bool>(), any::<u64>(), any::<u64>(), any::<bool>()),
        (
            arb_opt_u64(),
            proptest::collection::vec(any::<u64>(), 0..16),
        ),
    )
        .prop_map(
            |(
                (id, name, dim),
                (live, iterations, snapshots, finished),
                (staleness, shard_updates),
            )| {
                asyncsgd::serve::ModelStats {
                    id,
                    name,
                    dim,
                    mode: if live {
                        ReadMode::Live
                    } else {
                        ReadMode::Snapshot
                    },
                    iterations,
                    snapshots,
                    finished,
                    staleness,
                    shard_updates,
                }
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (arb_f64_bits(), arb_opt_u64())
            .prop_map(|(value, staleness)| Response::Score { value, staleness }),
        (
            any::<u32>(),
            proptest::collection::vec(arb_f64_bits(), 0..64),
            arb_opt_u64(),
        )
            .prop_map(|(start, values, staleness)| Response::Values {
                start,
                values,
                staleness,
            }),
        arb_stats().prop_map(Response::Stats),
        (arb_error_code(), arb_string(80))
            .prop_map(|(code, message)| Response::Error { code, message }),
        (arb_priority(), any::<u64>(), any::<u64>()).prop_map(|(priority, p99_ns, slo_ns)| {
            Response::Shed {
                priority,
                p99_ns,
                slo_ns,
            }
        }),
        any::<u64>().prop_map(|depth| Response::Ingested { depth }),
        // Realistic exposition-text shapes: newlines, braces, quotes.
        proptest::collection::vec(
            prop_oneof![arb_string(40), Just("a_total{x=\"y\"} 1\n".to_string())],
            0..8,
        )
        .prop_map(|lines| Response::ScrapeText {
            text: lines.concat(),
        }),
    ]
}

proptest! {
    /// Every request frame round-trips exactly. Equality is on the
    /// re-encoded bytes, so NaN payloads are covered too.
    #[test]
    fn request_frames_round_trip(request in arb_request(), priority in arb_priority()) {
        let frame = RequestFrame::new(request).priority(priority);
        let bytes = frame.encode().expect("in-bounds frame encodes");
        let back = RequestFrame::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode().expect("re-encodes"), bytes);
    }

    /// Every response frame — values, stats, error, and shed alike —
    /// round-trips exactly.
    #[test]
    fn response_frames_round_trip(response in arb_response()) {
        let bytes = response.encode().expect("in-bounds frame encodes");
        let back = Response::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode().expect("re-encodes"), bytes);
    }

    /// Truncating a valid frame at *any* interior point is a typed decode
    /// error — never a panic, never a silent short read.
    #[test]
    fn truncated_request_frames_are_typed_errors(
        request in arb_request(),
        priority in arb_priority(),
        cut in any::<usize>(),
    ) {
        let bytes = RequestFrame::new(request).priority(priority).encode().expect("encodes");
        let cut = cut % bytes.len();
        prop_assert!(RequestFrame::decode(&bytes[..cut]).is_err());
    }

    /// Same for responses.
    #[test]
    fn truncated_response_frames_are_typed_errors(
        response in arb_response(),
        cut in any::<usize>(),
    ) {
        let bytes = response.encode().expect("encodes");
        let cut = cut % bytes.len();
        prop_assert!(Response::decode(&bytes[..cut]).is_err());
    }

    /// Arbitrary garbage never panics the decoders: each byte string is
    /// either a valid frame or a typed [`FrameError`].
    #[test]
    fn garbage_bytes_never_panic_the_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _: Result<RequestFrame, FrameError> = RequestFrame::decode(&bytes);
        let _: Result<Response, FrameError> = Response::decode(&bytes);
    }

    /// A forged probe count past the protocol cap is rejected by `encode`
    /// on the way out — oversized payloads never reach the wire.
    #[test]
    fn oversized_probes_are_rejected_on_encode(model in any::<u32>()) {
        let probe = vec![(0_u32, 1.0_f64); MAX_PROBE_LEN + 1];
        prop_assert!(RequestFrame::new(Request::DotScore { model, probe }).encode().is_err());
    }

    /// Oversized observations are refused the same way: a submit-observe
    /// past [`MAX_OBSERVE_LEN`] coordinates never reaches the wire.
    #[test]
    fn oversized_observations_are_rejected_on_encode(
        model in any::<u32>(),
        label in arb_f64_bits(),
        excess in 1..4_usize,
    ) {
        let features = vec![(0_u32, 1.0_f64); MAX_OBSERVE_LEN + excess];
        prop_assert!(
            RequestFrame::new(Request::SubmitObserve { model, features, label })
                .encode()
                .is_err()
        );
    }

    /// NaN payloads survive the v2 stream opcode bit-for-bit: labels and
    /// feature values travel as IEEE-754 bit patterns, never as text.
    #[test]
    fn submit_observe_round_trips_nan_payloads(
        model in any::<u32>(),
        nan_bits in (0..0x000F_FFFF_FFFF_FFFF_u64).prop_map(|m| 0x7FF0_0000_0000_0001 | m),
        priority in arb_priority(),
    ) {
        let label = f64::from_bits(nan_bits);
        prop_assert!(label.is_nan());
        let frame = RequestFrame::new(Request::SubmitObserve {
            model,
            features: vec![(3, label), (7, f64::NEG_INFINITY)],
            label,
        })
        .priority(priority);
        let bytes = frame.encode().expect("encodes");
        let back = RequestFrame::decode(&bytes).expect("decodes");
        match back.request {
            Request::SubmitObserve { features, label: got, .. } => {
                prop_assert_eq!(got.to_bits(), nan_bits);
                prop_assert_eq!(features[0].1.to_bits(), nan_bits);
                prop_assert_eq!(features[1].1.to_bits(), f64::NEG_INFINITY.to_bits());
            }
            other => prop_assert!(false, "decoded the wrong opcode: {other:?}"),
        }
    }

    /// A frame stamped with any version other than this build's is a typed
    /// mismatch, both directions — the v1→v2 bump is load-bearing because
    /// v1 peers cannot know opcode 5 or response tag 6.
    #[test]
    fn foreign_protocol_versions_are_typed_mismatches(
        request in arb_request(),
        response in arb_response(),
        version in any::<u8>()
            .prop_map(|v| if v == PROTOCOL_VERSION { v.wrapping_add(1) } else { v }),
    ) {
        let mut req = RequestFrame::new(request).encode().expect("encodes");
        req[0] = version;
        prop_assert_eq!(RequestFrame::decode(&req), Err(FrameError::BadVersion(version)));
        let mut resp = response.encode().expect("encodes");
        resp[0] = version;
        prop_assert_eq!(Response::decode(&resp), Err(FrameError::BadVersion(version)));
    }
}

/// The version byte this suite's frames carry is the v2 bump that
/// introduced the stream opcode: if someone reverts the constant, the
/// submit-observe strategy above would be encoding frames v1 peers
/// mis-parse silently.
#[test]
fn the_wire_speaks_version_two() {
    assert_eq!(PROTOCOL_VERSION, 2, "submit-observe shipped with v2");
    let frame = RequestFrame::new(Request::SubmitObserve {
        model: 0,
        features: vec![(0, 1.0)],
        label: -1.0,
    });
    assert_eq!(frame.encode().expect("encodes")[0], PROTOCOL_VERSION);
}

// ------------------------------------------------- registry under load

fn servable_spec(dim: usize, threads: usize, iterations: u64, seed: u64) -> RunSpec {
    RunSpec::new(
        OracleSpec::new("sparse-quadratic", dim).sigma(0.0),
        BackendKind::Hogwild,
    )
    .threads(threads)
    .iterations(iterations)
    .learning_rate(0.4 / dim as f64)
    .x0(vec![1.0; dim])
    .seed(seed)
}

#[test]
fn concurrent_create_query_drop_of_one_name_stays_coherent() {
    // Three parties race on the same model name while real socket traffic
    // flows: a creator re-creating it, a dropper cancelling it, and socket
    // clients querying it by name. Every outcome must be a typed success
    // or a typed error — no panics, no wedged locks, no malformed frames.
    let registry = Arc::new(ModelRegistry::new());
    let server =
        NetServer::serve(Arc::clone(&registry), NetConfig::default()).expect("server binds");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let creator = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut created = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    let spec = servable_spec(64, 1, u64::MAX / 2, 7);
                    match registry.create("contested", &spec, ReadMode::Snapshot, 512) {
                        Ok(_) => created += 1,
                        Err(ServeError::DuplicateModel(_)) => {}
                        Err(e) => panic!("unexpected create error: {e}"),
                    }
                }
                created
            })
        };
        let dropper = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut dropped = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    match registry.drop_model("contested") {
                        Ok(_) => dropped += 1,
                        Err(ServeError::NoSuchModel(_)) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("unexpected drop error: {e}"),
                    }
                }
                dropped
            })
        };
        let queriers: Vec<_> = (0..2)
            .map(|_| {
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("connects");
                    let (mut hits, mut misses) = (0_u64, 0_u64);
                    while !stop.load(Ordering::Relaxed) {
                        match client.stats_by_name("contested") {
                            Ok(stats) => {
                                assert_eq!(stats.name, "contested");
                                assert_eq!(stats.dim, 64);
                                hits += 1;
                            }
                            Err(asyncsgd::net::ClientError::Remote { code, .. }) => {
                                assert_eq!(code, ErrorCode::NoSuchModel, "only typed misses");
                                misses += 1;
                            }
                            Err(e) => panic!("transport failure mid-race: {e}"),
                        }
                    }
                    (hits, misses)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        let created = creator.join().expect("creator clean");
        let dropped = dropper.join().expect("dropper clean");
        assert!(created > 0, "creator never won the race");
        assert!(dropped > 0, "dropper never won the race");
        let mut answered = 0;
        for q in queriers {
            let (hits, misses) = q.join().expect("querier clean");
            answered += hits + misses;
            assert!(hits + misses > 0, "querier starved");
        }
        assert!(answered > 0);
    });
    assert_eq!(server.stats().bad_frames, 0, "races never corrupt framing");
    server.stop();
    registry.shutdown();
}

#[test]
fn dropped_models_answer_with_typed_errors_on_every_op() {
    let registry = Arc::new(ModelRegistry::new());
    let spec = servable_spec(32, 1, 50_000, 11);
    let id = registry
        .create("ephemeral", &spec, ReadMode::Snapshot, 1_000)
        .expect("creates")
        .0;
    let server =
        NetServer::serve(Arc::clone(&registry), NetConfig::default()).expect("server binds");
    let mut client = NetClient::connect(server.local_addr()).expect("connects");
    client.stats_by_id(id).expect("live model answers");
    registry.drop_model("ephemeral").expect("drops");

    let remote_code = |err: asyncsgd::net::ClientError| match err {
        asyncsgd::net::ClientError::Remote { code, .. } => code,
        other => panic!("wanted a typed remote error, got {other}"),
    };
    let err = client
        .dot_score(id, &[(0, 1.0)], Priority::Normal)
        .expect_err("dropped model must not score");
    assert_eq!(remote_code(err), ErrorCode::NoSuchModel);
    let err = client
        .predict(id, Priority::Normal)
        .expect_err("dropped model must not predict");
    assert_eq!(remote_code(err), ErrorCode::NoSuchModel);
    let err = client
        .fetch_range(id, 0, 4, Priority::Normal)
        .expect_err("dropped model must not serve values");
    assert_eq!(remote_code(err), ErrorCode::NoSuchModel);
    let err = client
        .stats_by_id(id)
        .expect_err("dropped model must not report stats");
    assert_eq!(remote_code(err), ErrorCode::NoSuchModel);
    // The connection itself survives all four misses.
    client.stats_by_name("nope").expect_err("still answering");
    server.stop();
    registry.shutdown();
}

#[test]
fn stats_scrape_serves_live_prometheus_text_consistent_with_model_stats() {
    // The observability front door: a `stats-scrape` over the socket must
    // return exposition text that (a) parses back into the exact snapshot
    // it rendered, (b) carries non-vacuous series from every tier that saw
    // traffic, and (c) agrees bit-for-bit with what `model-stats` reports
    // once training is quiescent.
    let iterations = 20_000;
    let spec = servable_spec(64, 2, iterations, 17).shards(ShardsSpec::Fixed(4));
    let registry = Arc::new(ModelRegistry::new());
    let id = registry
        .create("scraped", &spec, ReadMode::Snapshot, 1_024)
        .expect("creates")
        .0;
    let server =
        NetServer::serve(Arc::clone(&registry), NetConfig::default()).expect("server binds");
    let mut client = NetClient::connect(server.local_addr()).expect("connects");

    // Wait for the run to finish so counters are quiescent, then drive a
    // few reads so the serve-latency histogram is non-vacuous.
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let stats = client.stats_by_id(id).expect("stats answer");
        if stats.finished {
            break stats;
        }
        assert!(Instant::now() < deadline, "training never finished");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(stats.iterations, iterations);
    assert_eq!(stats.shard_updates.len(), 4, "fixed(4) topology reported");
    for _ in 0..4 {
        client.predict(id, Priority::Normal).expect("predicts");
    }

    let text = client.stats_scrape().expect("scrape answers");
    let snap = asyncsgd::telemetry::parse(&text).expect("scrape text parses");
    assert_eq!(
        asyncsgd::telemetry::render(&snap),
        text,
        "exposition text and snapshot are exact inverses"
    );

    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("series {name} missing from scrape"))
            .1
    };
    // Training-tier series agree with the model-stats view bit for bit.
    assert_eq!(
        counter("asgd_model_iterations_total{model=\"scraped\"}"),
        iterations
    );
    for (shard, &updates) in stats.shard_updates.iter().enumerate() {
        assert_eq!(
            counter(&format!(
                "asgd_shard_updates_total{{model=\"scraped\",shard=\"{shard}\"}}"
            )),
            updates,
            "shard {shard} τ counter disagrees with model-stats"
        );
    }
    // Quiescent run: every claimed iteration has been applied somewhere.
    assert_eq!(stats.shard_updates.iter().sum::<u64>(), iterations);
    // Net-tier series saw this connection's own traffic.
    assert!(counter("asgd_net_executed_total") >= 5);
    let (_, latency) = snap
        .histograms
        .iter()
        .find(|(k, _)| k == "asgd_net_serve_latency_ns")
        .expect("serve latency histogram present");
    assert!(latency.count >= 5, "latency histogram is vacuous");
    assert!(latency.sum > 0);
    // Scrapes are idempotent reads: a second one still answers and its
    // monotone series never run backwards.
    let again =
        asyncsgd::telemetry::parse(&client.stats_scrape().expect("second scrape")).expect("parses");
    for (name, v) in &snap.counters {
        if let Some((_, v2)) = again.counters.iter().find(|(k, _)| k == name) {
            assert!(v2 >= v, "counter {name} ran backwards: {v2} < {v}");
        }
    }
    server.stop();
    registry.shutdown();
}

#[test]
fn cancellation_under_socket_load_stays_inside_the_session_bound() {
    // The registry's drop cancels an effectively-unbounded training run
    // while socket clients are mid-flight. The ISSUE's bound: the whole
    // cancel-and-join completes within 250ms.
    let registry = Arc::new(ModelRegistry::new());
    let spec = servable_spec(256, 1, u64::MAX / 2, 13);
    let id = registry
        .create("long-haul", &spec, ReadMode::Snapshot, 2_048)
        .expect("creates")
        .0;
    let server =
        NetServer::serve(Arc::clone(&registry), NetConfig::default()).expect("server binds");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connects");
                while !stop.load(Ordering::Relaxed) {
                    // Hits and typed misses (after the drop) both fine.
                    let _ = client.dot_score(id, &[(0, 1.0), (5, -2.0)], Priority::Normal);
                }
            });
        }
        // Let traffic actually reach the serving path first.
        std::thread::sleep(Duration::from_millis(100));
        let started = Instant::now();
        let report = registry.drop_model("long-haul").expect("drops");
        let elapsed = started.elapsed();
        assert_eq!(report.stop.as_deref(), Some("cancelled"));
        assert!(
            elapsed < Duration::from_millis(250),
            "cancellation took {elapsed:?} under socket load"
        );
        stop.store(true, Ordering::Relaxed);
    });
    server.stop();
    registry.shutdown();
}

// ------------------------------------- sequential equivalence over TCP

#[test]
fn one_thread_served_run_is_bit_identical_to_sequential_through_the_socket() {
    // The workspace's equivalence oracle: a 1-thread hogwild run replays
    // the sequential trajectory exactly. Here the read side goes through
    // frame encode → TCP loopback → frame decode, and must still match
    // bit for bit — f64s travel as IEEE-754 bit patterns, never text.
    let dim = 48;
    let iterations = 30_000;
    let spec = servable_spec(dim, 1, iterations, 21);
    let sequential = run_spec(&spec.clone().backend(BackendKind::Sequential))
        .expect("sequential reference runs");
    assert_eq!(sequential.final_model.len(), dim);

    let registry = Arc::new(ModelRegistry::new());
    let id = registry
        .create("replica", &spec, ReadMode::Snapshot, 4_096)
        .expect("creates")
        .0;
    let server =
        NetServer::serve(Arc::clone(&registry), NetConfig::default()).expect("server binds");
    let mut client = NetClient::connect(server.local_addr()).expect("connects");

    // Wait (over the socket) for training to finish; the final snapshot
    // publication then holds the complete trajectory endpoint.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats_by_id(id).expect("stats answer");
        if stats.finished {
            assert_eq!(stats.iterations, iterations);
            break;
        }
        assert!(Instant::now() < deadline, "training never finished");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (served, staleness) = client
        .fetch_range(id, 0, dim as u32, Priority::Normal)
        .expect("full fetch");
    assert_eq!(served.len(), dim);
    assert_eq!(staleness, Some(0), "final publication is current");
    for (j, (got, want)) in served.iter().zip(&sequential.final_model).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "x[{j}] differs across the socket: {got} vs {want}"
        );
    }

    // A served dot-score equals the same reduction over the fetched
    // values — the compute happens on exactly the bits we read back.
    let probe: Vec<(u32, f64)> = (0..8).map(|k| (k * 5, 0.25 + k as f64)).collect();
    let (score, _) = client
        .dot_score(id, &probe, Priority::High)
        .expect("scores");
    let local: f64 = probe.iter().map(|&(j, w)| w * served[j as usize]).sum();
    assert_eq!(score.to_bits(), local.to_bits());
    server.stop();
    registry.shutdown();
}

// ------------------------------------------------- admission control

#[test]
fn over_budget_connections_get_an_explicit_denial_frame() {
    let registry = Arc::new(ModelRegistry::new());
    let id = registry
        .create(
            "solo",
            &servable_spec(16, 1, u64::MAX / 2, 3),
            ReadMode::Snapshot,
            1_024,
        )
        .expect("creates")
        .0;
    let config = NetConfig::default().max_connections(1);
    let server = NetServer::serve(Arc::clone(&registry), config).expect("server binds");
    let mut first = NetClient::connect(server.local_addr()).expect("first connects");
    first.stats_by_id(id).expect("admitted connection serves");
    let mut second = NetClient::connect(server.local_addr()).expect("TCP accept still happens");
    let err = second
        .stats_by_id(id)
        .expect_err("over-budget connection must be refused");
    match err {
        asyncsgd::net::ClientError::Remote { code, .. } => {
            assert_eq!(code, ErrorCode::AdmissionDenied);
        }
        // The denial frame may race the close; a clean disconnect is the
        // only other acceptable outcome — never a hang or a wrong answer.
        asyncsgd::net::ClientError::Io(_) => {}
        other => panic!("unexpected refusal shape: {other}"),
    }
    assert!(server.stats().denied >= 1);
    // The admitted connection is unaffected.
    first.stats_by_id(id).expect("still serving");
    registry.drop_model("solo").expect("drops");
    server.stop();
    registry.shutdown();
}
