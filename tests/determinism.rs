//! Determinism and replay: the simulator is a scientific instrument — equal
//! seeds must reproduce executions exactly, and recorded schedules must
//! replay to identical machines.

use asyncsgd::core::lockfree::{EpochSgdConfig, EpochSgdProcess};
use asyncsgd::prelude::*;
use asyncsgd::shmem::sched::{RecordingScheduler, ReplayScheduler};
use asyncsgd::shmem::Engine;
use std::sync::Arc;

fn build_engine(
    oracle: &Arc<NoisyQuadratic>,
    scheduler: impl Scheduler + 'static,
    seed: u64,
) -> Engine {
    Engine::builder()
        .memory(Memory::with_model(&[1.0, -1.0], 1))
        .process(EpochSgdProcess::new(
            Arc::clone(oracle),
            EpochSgdConfig::simple(0.05, 60),
        ))
        .process(EpochSgdProcess::new(
            Arc::clone(oracle),
            EpochSgdConfig::simple(0.05, 60),
        ))
        .scheduler(scheduler)
        .trace(TraceLevel::Events)
        .seed(seed)
        .build()
}

#[test]
fn recorded_schedule_replays_to_identical_execution() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.6).expect("valid"));
    let rec = RecordingScheduler::new(RandomScheduler::new(1234));
    let log = rec.log();
    let original = build_engine(&oracle, rec, 42).run();
    let replayed = build_engine(&oracle, ReplayScheduler::from_log(&log), 42).run();
    assert_eq!(original.fingerprint, replayed.fingerprint);
    assert_eq!(original.memory, replayed.memory);
    assert_eq!(original.steps, replayed.steps);
}

#[test]
fn fingerprint_is_stable_across_runs_and_sensitive_to_everything() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.6).expect("valid"));
    let base = build_engine(&oracle, RandomScheduler::new(7), 42)
        .run()
        .fingerprint;
    // Same everything → same fingerprint.
    assert_eq!(
        base,
        build_engine(&oracle, RandomScheduler::new(7), 42)
            .run()
            .fingerprint
    );
    // Different engine seed (coin streams) → different.
    assert_ne!(
        base,
        build_engine(&oracle, RandomScheduler::new(7), 43)
            .run()
            .fingerprint
    );
    // Different scheduler randomness → different.
    assert_ne!(
        base,
        build_engine(&oracle, RandomScheduler::new(8), 42)
            .run()
            .fingerprint
    );
}

#[test]
fn adversarial_runs_are_reproducible_too() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.4).expect("valid"));
    let run = |seed: u64| {
        LockFreeSgd::builder(Arc::clone(&oracle))
            .threads(3)
            .iterations(150)
            .learning_rate(0.05)
            .scheduler(BoundedDelayAdversary::new(6))
            .seed(seed)
            .run()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.execution.fingerprint, b.execution.fingerprint);
    assert_eq!(a.final_model, b.final_model);
    assert_eq!(
        a.execution.contention.tau_max(),
        b.execution.contention.tau_max()
    );
}

#[test]
fn full_sgd_simulated_is_deterministic() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 0.8).expect("valid"));
    let go = || {
        asyncsgd::core::full_sgd::run_simulated(
            Arc::clone(&oracle),
            asyncsgd::core::full_sgd::FullSgdConfig {
                alpha0: 0.2,
                epoch_iterations: 40,
                halving_epochs: 2,
            },
            3,
            &[1.0, 1.0],
            RandomScheduler::new(11),
            13,
            None,
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a.execution.fingerprint, b.execution.fingerprint);
    assert_eq!(a.r, b.r);
}
