//! Observable run sessions: runs as *jobs*.
//!
//! The paper's convergence statements are about trajectories — the hitting
//! time of the accumulator sequence `x_t` on the success region (§6.1) — not
//! just terminal states, and an SGD service at scale needs runs that are
//! observable while in flight, cancellable, and schedulable many at a time.
//! This module is that front door:
//!
//! * [`RunObserver`] — typed [`RunEvent`]s streamed live from every backend:
//!   `Started`, periodic [`Progress`], strided [`TrajectorySample`]s, and
//!   `Finished` with the full report;
//! * [`SessionCtx`] — the per-run wiring (observer + cancel flag) accepted
//!   by [`Backend::run_session`](crate::Backend) and
//!   [`run_spec_session`](crate::run_spec_session);
//! * [`Driver`] — `submit` a spec and get a [`RunHandle`] with `cancel()`,
//!   `wait()` and non-blocking `try_report()`; or execute whole sweeps
//!   concurrently on a bounded worker pool with [`Driver::run_many`].
//!
//! Observation is pure: attaching an observer never consumes RNG state or
//! reorders operations, so an observed run is bit-identical to an unobserved
//! one on every deterministic backend (and single-threaded native runs).

use crate::error::DriverError;
use crate::report::{RunReport, TrajectorySample};
use crate::spec::{BackendKind, RunSpec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Locks a mutex, recovering the inner value if a previous holder panicked.
///
/// Every mutex in this module guards plain data (an `Instant`, a sample
/// vector, a result slot) whose invariants cannot be broken mid-update, so
/// poisoning carries no information here — but propagating it would let one
/// panicking observer cascade-panic every later `observe`/`try_report` on
/// unrelated threads of the same pool.
fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a `catch_unwind` payload for [`DriverError::Panicked`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Progress stride used when an observer is attached but the spec did not
/// request trajectory collection.
pub const DEFAULT_PROGRESS_STRIDE: u64 = 1024;

/// A periodic progress snapshot streamed to observers.
#[derive(Debug, Clone, PartialEq)]
pub struct Progress {
    /// Updates reflected in the observed state (claim index on native
    /// backends, ordered iteration count on simulated/sequential ones).
    pub iterations: u64,
    /// Distance evaluations performed so far on behalf of this session.
    pub evaluations: u64,
    /// `‖x − x*‖²` at the observation point.
    pub dist_sq: f64,
    /// Seconds since the run started.
    pub elapsed_secs: f64,
}

/// A typed event in a run session's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// The spec validated and is about to execute.
    Started {
        /// Execution model.
        backend: BackendKind,
        /// Oracle kind.
        oracle: String,
        /// Thread count.
        threads: usize,
        /// Total iteration budget.
        iterations: u64,
        /// Master seed.
        seed: u64,
    },
    /// Periodic progress (every sample point).
    Progress(Progress),
    /// A strided trajectory sample (only when the spec enabled collection
    /// via `RunSpec::trajectory_every`).
    TrajectorySample(TrajectorySample),
    /// A model snapshot was published for serving (only when a
    /// [`ServeHook`](asgd_hogwild::ServeHook) is attached via
    /// [`SessionCtx::serve`]).
    SnapshotPublished {
        /// Publication version (1-based, strictly increasing).
        version: u64,
        /// Training claim index the snapshot was taken at.
        iteration: u64,
    },
    /// A drift scenario shifted the data stream's ground-truth minimizer
    /// mid-run. Emitted by the ingest tier (`asgd-ingest`), which owns the
    /// drift schedule, through the session's observer — backends never
    /// originate it.
    DriftInjected {
        /// Training iterations reflected at the injection point (0 when
        /// the injector could not observe a count).
        iteration: u64,
        /// Seconds since the run started.
        elapsed_secs: f64,
    },
    /// The serving front-end's load shedder moved to a new tier. Emitted by
    /// the net tier (`asgd-net`), which owns the shedder, through the
    /// observer it was configured with — backends never originate it.
    ShedTierChanged {
        /// The tier now in force: 0 healthy, 1 degraded (Low shed), 2
        /// overloaded (Low and Normal shed).
        tier: u8,
        /// The rolling p99 that drove the transition, in nanoseconds.
        p99_ns: u64,
        /// The latency objective, in nanoseconds.
        slo_ns: u64,
    },
    /// An ingest queue refused an observation because it was full (or the
    /// producer timed out waiting for room). Emitted by the net tier on
    /// behalf of the ingest tier.
    QueueSaturated {
        /// Queue depth at the refusal.
        depth: u64,
        /// The queue's configured capacity.
        capacity: u64,
    },
    /// The run finished; the same report the blocking call returns.
    Finished(Box<RunReport>),
}

/// A streaming observer of [`RunEvent`]s.
///
/// Implementations must be `Send + Sync`: native backends invoke the
/// observer from worker threads. Any `Fn(&RunEvent) + Send + Sync` closure
/// implements it.
pub trait RunObserver: Send + Sync {
    /// Receives one event. Called synchronously from the run's execution
    /// context — keep it fast (or hand off to a channel).
    fn on_event(&self, event: &RunEvent);
}

impl<F: Fn(&RunEvent) + Send + Sync> RunObserver for F {
    fn on_event(&self, event: &RunEvent) {
        self(event)
    }
}

/// Per-run session wiring passed to [`Backend::run_session`](crate::Backend).
///
/// The default is inert — `run_session(spec, &SessionCtx::default())` is
/// exactly `run(spec)`.
#[derive(Clone, Default)]
pub struct SessionCtx {
    /// Event sink, shared with the run (native backends call it from worker
    /// threads).
    pub observer: Option<Arc<dyn RunObserver>>,
    /// Cooperative cancel flag: raise it to stop the run early; the report
    /// then carries `stop: Some("cancelled")` and the iterations actually
    /// executed.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Serving attachment: the backend exposes a live
    /// [`ModelReader`](asgd_hogwild::ModelReader) through the hook and
    /// publishes coherent snapshots at the hook's stride (streamed to the
    /// observer as [`RunEvent::SnapshotPublished`]). Implemented by the
    /// `hogwild` backend; other backends accept and ignore the hook (it
    /// then never attaches). One hook serves one run.
    pub serve: Option<Arc<asgd_hogwild::ServeHook>>,
    /// Training-oracle override: when set, every backend trains on *this*
    /// oracle instead of building one from `spec.oracle` (whose kind then
    /// only labels the report; its `dim` must match the override's
    /// dimension). The ingest tier threads a
    /// [`StreamingOracle`](asgd_oracle::StreamingOracle) — whose ingress
    /// queue outlives the run — into sessions this way.
    pub oracle: Option<Arc<dyn asgd_oracle::GradientOracle>>,
}

impl std::fmt::Debug for SessionCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCtx")
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("serve", &self.serve.is_some())
            .field("oracle", &self.oracle.is_some())
            .finish()
    }
}

impl SessionCtx {
    /// A context with just an observer.
    #[must_use]
    pub fn observed(observer: Arc<dyn RunObserver>) -> Self {
        Self {
            observer: Some(observer),
            ..Self::default()
        }
    }

    /// Adds a cancel flag.
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Adds a serving hook (native `hogwild` backend only).
    #[must_use]
    pub fn with_serve(mut self, hook: Arc<asgd_hogwild::ServeHook>) -> Self {
        self.serve = Some(hook);
        self
    }

    /// Overrides the training oracle (see [`SessionCtx::oracle`]).
    #[must_use]
    pub fn with_oracle(mut self, oracle: Arc<dyn asgd_oracle::GradientOracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }
}

/// Internal sample fan-out shared by all backends: collects trajectory
/// samples (when the spec asked for them) and forwards progress/trajectory
/// events to the observer. Thread-safe — native workers call
/// [`SampleHub::observe`] concurrently.
pub(crate) struct SampleHub {
    observer: Option<Arc<dyn RunObserver>>,
    start: Mutex<Instant>,
    collect: bool,
    /// Exclusive upper bound on sample indices (the spec's iteration
    /// budget). Native claim loops sample indices `0..T` by construction;
    /// the simulated accumulator fold would additionally emit the terminal
    /// `index == T` state when `T` is a stride multiple — filtering here
    /// keeps sample indices aligned across backends.
    index_limit: u64,
    samples: Mutex<Vec<TrajectorySample>>,
    evaluations: AtomicU64,
}

impl SampleHub {
    /// Builds the hub for one run. `collect` mirrors
    /// `spec.trajectory_stride.is_some()`; `index_limit` is the spec's
    /// iteration budget.
    pub(crate) fn new(ctx: &SessionCtx, collect: bool, index_limit: u64) -> Self {
        Self {
            observer: ctx.observer.clone(),
            start: Mutex::new(Instant::now()),
            collect,
            index_limit,
            samples: Mutex::new(Vec::new()),
            evaluations: AtomicU64::new(0),
        }
    }

    /// True if any sink wants samples (otherwise backends skip sampling
    /// entirely).
    pub(crate) fn active(&self) -> bool {
        self.collect || self.observer.is_some()
    }

    /// Re-anchors the elapsed clock. Backends call this at the same point
    /// they start their own wall-time measurement, so `elapsed_secs` in
    /// samples and `wall_time_secs` in the report share one origin (oracle
    /// construction and model allocation are excluded from both).
    pub(crate) fn start_now(&self) {
        *lock_recovered(&self.start) = Instant::now();
    }

    /// Records one sample: `index` updates applied, observed `dist²`.
    pub(crate) fn observe(&self, index: u64, dist_sq: f64) {
        if index >= self.index_limit {
            return;
        }
        let elapsed_secs = lock_recovered(&self.start).elapsed().as_secs_f64();
        let evaluations = self.evaluations.fetch_add(1, Ordering::Relaxed) + 1;
        let sample = TrajectorySample {
            index,
            dist_sq,
            elapsed_secs,
        };
        if self.collect {
            lock_recovered(&self.samples).push(sample.clone());
        }
        if let Some(obs) = &self.observer {
            if self.collect {
                obs.on_event(&RunEvent::TrajectorySample(sample));
            }
            obs.on_event(&RunEvent::Progress(Progress {
                iterations: index,
                evaluations,
                dist_sq,
                elapsed_secs,
            }));
        }
    }

    /// Drains the collected trajectory, ordered by index (`None` when
    /// collection was not requested). Native workers sample concurrently, so
    /// arrival order is not index order.
    pub(crate) fn take_trajectory(&self) -> Option<Vec<TrajectorySample>> {
        self.collect.then(|| {
            let mut samples = std::mem::take(&mut *lock_recovered(&self.samples));
            samples.sort_by_key(|s| s.index);
            samples
        })
    }
}

/// The session front door: submits specs as cancellable background jobs and
/// executes sweeps on a bounded worker pool.
///
/// Sweep results are deterministic wherever the backends are: every spec
/// carries its own master seed, so concurrent execution order cannot leak
/// into any run's coin streams, and `run_many` returns reports in spec
/// order, equal (modulo wall-time fields) to serial `run` calls of the same
/// specs.
#[derive(Debug, Clone)]
pub struct Driver {
    workers: usize,
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

impl Driver {
    /// A driver with one pool worker per available core.
    #[must_use]
    pub fn new() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
        }
    }

    /// Overrides the pool width for [`Driver::run_many`] (clamped to ≥ 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Submits a spec as a background job.
    #[must_use]
    pub fn submit(&self, spec: RunSpec) -> RunHandle {
        self.spawn(spec, SessionCtx::default())
    }

    /// Submits a spec as a background job with an observer attached.
    #[must_use]
    pub fn submit_observed(&self, spec: RunSpec, observer: Arc<dyn RunObserver>) -> RunHandle {
        self.spawn(
            spec,
            SessionCtx {
                observer: Some(observer),
                ..SessionCtx::default()
            },
        )
    }

    /// Submits a spec as a background job under a caller-built context
    /// (observer and/or serving hook). The handle's cancel flag is the
    /// context's one when set, or a fresh flag otherwise — either way
    /// [`RunHandle::cancel`] stops the run.
    #[must_use]
    pub fn submit_with(&self, spec: RunSpec, ctx: SessionCtx) -> RunHandle {
        self.spawn(spec, ctx)
    }

    fn spawn(&self, spec: RunSpec, mut ctx: SessionCtx) -> RunHandle {
        let cancel = ctx
            .cancel
            .get_or_insert_with(|| Arc::new(AtomicBool::new(false)))
            .clone();
        let slot: Arc<Mutex<Option<Result<RunReport, DriverError>>>> = Arc::new(Mutex::new(None));
        let worker_slot = Arc::clone(&slot);
        let join = std::thread::spawn(move || {
            // Contain panics (a throwing observer, a worker-thread unwind):
            // the handle then reports `DriverError::Panicked` instead of
            // propagating the unwind through `wait()`.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::run_spec_session(&spec, &ctx)
            }))
            .unwrap_or_else(|payload| Err(DriverError::Panicked(panic_message(&*payload))));
            *lock_recovered(&worker_slot) = Some(result);
        });
        RunHandle {
            cancel,
            slot,
            join: Some(join),
        }
    }

    /// Executes every spec concurrently on a bounded worker pool and returns
    /// per-spec results **in spec order**.
    #[must_use]
    pub fn run_many(&self, specs: &[RunSpec]) -> Vec<Result<RunReport, DriverError>> {
        self.run_many_with(specs, crate::run_spec)
    }

    /// Generalised sweep: runs `f` over every spec on the pool, in spec
    /// order. Used by experiments that need more than a [`RunReport`] per
    /// run (e.g. the detailed simulated entry point).
    #[must_use]
    pub fn run_many_with<T, F>(&self, specs: &[RunSpec], f: F) -> Vec<Result<T, DriverError>>
    where
        T: Send,
        F: Fn(&RunSpec) -> Result<T, DriverError> + Sync,
    {
        let slots: Vec<Mutex<Option<Result<T, DriverError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicU64::new(0);
        let workers = self.workers.min(specs.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst) as usize;
                    let Some(spec) = specs.get(i) else {
                        return;
                    };
                    // One panicking run (e.g. a throwing observer) becomes
                    // that spec's `Err(Panicked)`; the pool worker survives
                    // to execute the remaining, unrelated jobs.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(spec)))
                        .unwrap_or_else(|payload| {
                            Err(DriverError::Panicked(panic_message(&*payload)))
                        });
                    *lock_recovered(&slots[i]) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every claimed spec stores a result")
            })
            .collect()
    }
}

/// Handle to a run submitted via [`Driver::submit`]: cancel it, poll it, or
/// block for its report.
///
/// Dropping the handle without [`RunHandle::wait`] detaches the job — it
/// keeps running to completion (or until cancelled) in the background.
#[derive(Debug)]
pub struct RunHandle {
    cancel: Arc<AtomicBool>,
    slot: Arc<Mutex<Option<Result<RunReport, DriverError>>>>,
    join: Option<JoinHandle<()>>,
}

impl RunHandle {
    /// Requests cancellation. Executors honour the flag within one
    /// success-check stride (simulated backends: one engine step); the run
    /// then finishes with `stop: Some("cancelled")` and partial iterations.
    /// Idempotent; racing a natural finish is harmless.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// True once [`RunHandle::cancel`] has been called.
    #[must_use]
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// True once the run has finished and a report is available.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        lock_recovered(&self.slot).is_some()
    }

    /// Non-blocking result check: `None` while the run is still in flight,
    /// the (cloned) outcome once it finished.
    #[must_use]
    pub fn try_report(&self) -> Option<Result<RunReport, DriverError>> {
        lock_recovered(&self.slot).clone()
    }

    /// Blocks until the run finishes and returns its outcome.
    ///
    /// # Errors
    ///
    /// Returns whatever [`crate::run_spec`] would for the same spec, plus
    /// [`DriverError::Panicked`] if the run (or an attached observer)
    /// panicked. Cancelled runs are **not** errors — they return `Ok` with
    /// `stop: Some("cancelled")`.
    ///
    /// # Panics
    ///
    /// Panics only if the contained run thread failed to store any result —
    /// unreachable through this module's spawn path.
    pub fn wait(mut self) -> Result<RunReport, DriverError> {
        if let Some(join) = self.join.take() {
            // The worker contains its own panics; a join error would mean
            // the containment itself unwound, which catch_unwind precludes.
            let _ = join.join();
        }
        lock_recovered(&self.slot)
            .take()
            .expect("joined run always stores a result")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SchedulerSpec;
    use asgd_oracle::OracleSpec;

    fn quick_spec(seed: u64) -> RunSpec {
        RunSpec::new(
            OracleSpec::new("noisy-quadratic", 2).sigma(0.1),
            BackendKind::Sequential,
        )
        .threads(1)
        .iterations(300)
        .learning_rate(0.05)
        .x0(vec![1.0, -1.0])
        .scheduler(SchedulerSpec::Serial)
        .seed(seed)
    }

    #[test]
    fn submit_wait_returns_the_blocking_result() {
        let handle = Driver::new().submit(quick_spec(3));
        let report = handle.wait().expect("valid spec");
        let serial = crate::run_spec(&quick_spec(3)).unwrap();
        assert_eq!(report.final_model, serial.final_model);
        assert_eq!(report.iterations, 300);
    }

    #[test]
    fn try_report_is_none_until_finished_then_some() {
        let handle = Driver::new().submit(quick_spec(4));
        let report = loop {
            if let Some(result) = handle.try_report() {
                break result.expect("valid spec");
            }
            std::thread::yield_now();
        };
        assert!(handle.is_finished());
        assert_eq!(report.iterations, 300);
        // try_report clones: still available, and wait() agrees.
        let again = handle.try_report().unwrap().unwrap();
        assert_eq!(again, report);
        assert_eq!(handle.wait().unwrap(), report);
    }

    #[test]
    fn run_many_preserves_spec_order_with_more_specs_than_workers() {
        let specs: Vec<RunSpec> = (0..9).map(quick_spec).collect();
        let reports = Driver::new().workers(2).run_many(&specs);
        assert_eq!(reports.len(), 9);
        for (i, (spec, report)) in specs.iter().zip(&reports).enumerate() {
            let report = report.as_ref().expect("valid spec");
            assert_eq!(report.seed, spec.seed, "slot {i} out of order");
        }
    }

    #[test]
    fn run_many_reports_per_spec_errors_without_aborting_the_sweep() {
        let mut bad = quick_spec(1);
        bad.oracle.kind = "no-such-oracle".to_string();
        let specs = vec![quick_spec(0), bad, quick_spec(2)];
        let results = Driver::new().run_many(&specs);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(DriverError::Oracle(_))));
        assert!(results[2].is_ok());
    }

    #[test]
    fn poisoned_sample_clock_recovers_instead_of_cascading() {
        // Regression: the clock/sink mutexes used `.expect("poisoned")`, so
        // one panic while a guard was alive turned every later observe()
        // from other worker threads into a second panic.
        let hub = Arc::new(SampleHub::new(&SessionCtx::default(), true, 1_000));
        let poisoner = Arc::clone(&hub);
        let _ = std::thread::spawn(move || {
            let _clock = poisoner.start.lock().unwrap();
            let _sink = poisoner.samples.lock().unwrap();
            panic!("observer exploded while sampling");
        })
        .join();
        assert!(hub.start.is_poisoned(), "precondition: clock poisoned");
        // All hub operations must keep working on the recovered values.
        hub.start_now();
        hub.observe(7, 0.25);
        let trajectory = hub.take_trajectory().expect("collection stays on");
        assert_eq!(trajectory.len(), 1);
        assert_eq!(trajectory[0].index, 7);
    }

    #[test]
    fn panicking_observer_fails_only_its_own_pooled_job() {
        // One pooled run whose observer throws must come back as
        // Err(Panicked) while unrelated jobs in the same run_many sweep
        // complete normally.
        let specs = vec![quick_spec(0), quick_spec(13), quick_spec(2)];
        let results = Driver::new().workers(2).run_many_with(&specs, |spec| {
            if spec.seed == 13 {
                let observer = Arc::new(|_: &RunEvent| panic!("observer exploded"));
                crate::run_spec_session(spec, &SessionCtx::observed(observer))
            } else {
                crate::run_spec(spec)
            }
        });
        assert!(results[0].is_ok(), "{:?}", results[0]);
        assert!(results[2].is_ok(), "{:?}", results[2]);
        match &results[1] {
            Err(DriverError::Panicked(msg)) => {
                assert!(msg.contains("observer exploded"), "{msg}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn submitted_run_with_panicking_observer_reports_panicked() {
        let observer = Arc::new(|_: &RunEvent| panic!("observer exploded"));
        let handle = Driver::new().submit_observed(quick_spec(5), observer);
        match handle.wait() {
            Err(DriverError::Panicked(msg)) => {
                assert!(msg.contains("observer exploded"), "{msg}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn observer_closures_receive_lifecycle_events() {
        let events: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let observer = Arc::new(move |ev: &RunEvent| {
            let label = match ev {
                RunEvent::Started { .. } => "started",
                RunEvent::Progress(_) => "progress",
                RunEvent::TrajectorySample(_) => "sample",
                RunEvent::SnapshotPublished { .. } => "snapshot",
                RunEvent::DriftInjected { .. } => "drift",
                RunEvent::ShedTierChanged { .. } => "shed-tier",
                RunEvent::QueueSaturated { .. } => "queue-saturated",
                RunEvent::Finished(_) => "finished",
            };
            sink.lock().unwrap().push(label.to_string());
        });
        let spec = quick_spec(7).trajectory_every(100);
        let report = Driver::new()
            .submit_observed(spec, observer)
            .wait()
            .expect("valid spec");
        let events = events.lock().unwrap();
        assert_eq!(events.first().map(String::as_str), Some("started"));
        assert_eq!(events.last().map(String::as_str), Some("finished"));
        assert!(events.iter().any(|e| e == "progress"));
        assert!(events.iter().any(|e| e == "sample"));
        assert_eq!(
            report.trajectory.as_ref().map(Vec::len),
            Some(3),
            "samples at 0, 100, 200"
        );
    }
}
