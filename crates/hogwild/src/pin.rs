//! Best-effort worker-thread CPU pinning.
//!
//! Sharded stores only pay off when a worker keeps hitting the same arenas
//! from the same core; the OS migrating workers mid-run defeats the
//! locality. This crate forbids `unsafe`, so there is no direct
//! `sched_setaffinity` path — instead the current thread's kernel TID is
//! read from `/proc/thread-self` and handed to the `taskset(1)` binary
//! (util-linux, present on every mainstream distribution) exactly once per
//! worker at spawn. Pinning is strictly best effort: any failure (no
//! procfs, no `taskset`, containerised affinity masks) returns `false` and
//! the run proceeds unpinned — affinity is a performance hint, never a
//! correctness requirement.

/// Number of cores available to this process (≥ 1).
#[must_use]
pub fn core_count() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Pins the *calling* thread to `core` (modulo [`core_count`]). Returns
/// `true` when the affinity call reported success, `false` on any failure.
///
/// Call once at thread start, before the hot loop — the cost is one small
/// subprocess, amortised over the whole run.
#[must_use]
pub fn pin_current_thread(core: usize) -> bool {
    pin_impl(core % core_count())
}

#[cfg(target_os = "linux")]
fn pin_impl(core: usize) -> bool {
    // /proc/thread-self is a symlink to <pid>/task/<tid>; the final path
    // component is this thread's kernel TID, which taskset -p accepts.
    let Ok(target) = std::fs::read_link("/proc/thread-self") else {
        return false;
    };
    let Some(tid) = target
        .file_name()
        .and_then(|s| s.to_str())
        .filter(|s| s.bytes().all(|b| b.is_ascii_digit()))
    else {
        return false;
    };
    std::process::Command::new("taskset")
        .args(["-p", "-c", &core.to_string(), tid])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .is_ok_and(|s| s.success())
}

#[cfg(not(target_os = "linux"))]
fn pin_impl(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_count_is_positive() {
        assert!(core_count() >= 1);
    }

    #[test]
    fn pinning_is_best_effort_and_never_panics() {
        // Success depends on the environment (procfs + taskset); both
        // outcomes are valid — the contract is "bool, no panic".
        let _ = pin_current_thread(0);
        let _ = pin_current_thread(core_count() + 7); // wraps via modulo
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn thread_self_resolves_to_a_tid() {
        if let Ok(target) = std::fs::read_link("/proc/thread-self") {
            let tid = target.file_name().and_then(|s| s.to_str()).unwrap_or("");
            assert!(
                tid.bytes().all(|b| b.is_ascii_digit()) && !tid.is_empty(),
                "unexpected thread-self target: {target:?}"
            );
        }
    }
}
