//! The driver's error type.

use asgd_core::runner::RunnerError;
use asgd_oracle::OracleSpecError;

/// Error running a [`RunSpec`](crate::RunSpec).
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// The oracle spec could not be built.
    Oracle(OracleSpecError),
    /// The spec is not executable on the selected backend (e.g. a halving
    /// step schedule on a constant-step backend).
    InvalidSpec(String),
    /// The simulated runner rejected the configuration.
    Runner(RunnerError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Oracle(e) => write!(f, "oracle: {e}"),
            Self::InvalidSpec(msg) => write!(f, "invalid spec: {msg}"),
            Self::Runner(e) => write!(f, "runner: {e}"),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Oracle(e) => Some(e),
            Self::Runner(e) => Some(e),
            Self::InvalidSpec(_) => None,
        }
    }
}

impl From<OracleSpecError> for DriverError {
    fn from(e: OracleSpecError) -> Self {
        Self::Oracle(e)
    }
}

impl From<RunnerError> for DriverError {
    fn from(e: RunnerError) -> Self {
        Self::Runner(e)
    }
}
