//! §8 — complementarity of the lower and upper bounds.
//!
//! The lower bound (Theorem 5.1) needs the adversary to afford a delay
//! `τ ≥ τ*(α) = log(α/2)/log(1−α)`; the upper bound (Theorem 6.5) needs
//! `2·α²·H·L·M·√d·√(τ·n) < 1`. The paper observes these preconditions are
//! incompatible: for any fixed `α`, delays large enough to make SGD stall
//! violate the regime in which the upper bound promises fast convergence,
//! and vice versa. This module computes both frontiers so the `regimes`
//! experiment can tabulate them.

use crate::bounds::theorem_6_5_precondition;
use crate::lower_bound::required_delay;
use crate::martingale::RateSupermartingale;
use asgd_oracle::Constants;

/// Classification of a parameter point `(α, τ, n, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// The Theorem 6.5 precondition holds: fast convergence is guaranteed.
    UpperBoundApplies,
    /// The Theorem 5.1 construction applies: the adversary can force an
    /// `Ω(τ)` slowdown.
    LowerBoundApplies,
    /// Neither precondition holds at this point (the theory is silent).
    Neither,
}

/// The analysis of one parameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimePoint {
    /// Step size.
    pub alpha: f64,
    /// Delay bound examined.
    pub tau: u64,
    /// The Theorem 6.5 precondition value `α²HLMC√d` (needs `< 1`).
    pub upper_precondition: f64,
    /// The minimal delay `τ*(α)` Theorem 5.1 requires.
    pub required_delay: u64,
    /// Classification.
    pub regime: Regime,
}

/// Classifies a parameter point.
///
/// A step size violating even the *sequential* stability condition
/// `α < 2cε/M²` makes the martingale machinery inapplicable; such points
/// report an infinite upper-bound precondition (the upper bound certainly
/// does not apply there).
#[must_use]
pub fn classify(
    alpha: f64,
    consts: &Constants,
    eps: f64,
    tau: u64,
    n: usize,
    d: usize,
) -> RegimePoint {
    let pre = match RateSupermartingale::try_new(alpha, consts, eps) {
        Ok(w) => theorem_6_5_precondition(alpha, w.lipschitz_h(), consts, tau, n, d),
        Err(_) => f64::INFINITY,
    };
    let tau_star = required_delay(alpha);
    let regime = if pre < 1.0 {
        Regime::UpperBoundApplies
    } else if tau >= tau_star {
        Regime::LowerBoundApplies
    } else {
        Regime::Neither
    };
    RegimePoint {
        alpha,
        tau,
        upper_precondition: pre,
        required_delay: tau_star,
        regime,
    }
}

/// Verifies the paper's §8 claim at a point: if the adversary has enough
/// delay budget for the lower bound (`τ ≥ τ*(α)`), then the upper bound's
/// precondition must fail — the regimes never overlap.
#[must_use]
pub fn preconditions_incompatible(
    alpha: f64,
    consts: &Constants,
    eps: f64,
    tau: u64,
    n: usize,
    d: usize,
) -> bool {
    let p = classify(alpha, consts, eps, tau, n, d);
    !(tau >= p.required_delay && p.upper_precondition < 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn consts() -> Constants {
        Constants::new(1.0, 1.0, 4.0, 10.0)
    }

    #[test]
    fn small_tau_small_alpha_is_upper_regime() {
        // α = 0.001 < 2cε/M² = 0.005: stable, and the precondition is small.
        let p = classify(0.001, &consts(), 0.01, 4, 2, 2);
        assert_eq!(p.regime, Regime::UpperBoundApplies);
        assert!(p.upper_precondition < 1.0);
    }

    #[test]
    fn sequentially_unstable_alpha_reports_infinite_precondition() {
        let p = classify(0.3, &consts(), 0.01, 1, 2, 2);
        assert_eq!(p.upper_precondition, f64::INFINITY);
        assert_ne!(p.regime, Regime::UpperBoundApplies);
    }

    #[test]
    fn huge_tau_is_lower_regime() {
        let alpha = 0.05;
        let tau_star = required_delay(alpha);
        let p = classify(alpha, &consts(), 0.01, tau_star * 100, 8, 16);
        assert_eq!(p.regime, Regime::LowerBoundApplies);
        assert!(
            p.upper_precondition >= 1.0,
            "pre = {}",
            p.upper_precondition
        );
    }

    #[test]
    fn classification_is_exhaustive_and_consistent() {
        for &alpha in &[0.001, 0.01, 0.05, 0.1, 0.3] {
            for &tau in &[1u64, 10, 100, 10_000, 1_000_000] {
                let p = classify(alpha, &consts(), 0.01, tau, 4, 8);
                match p.regime {
                    Regime::UpperBoundApplies => assert!(p.upper_precondition < 1.0),
                    Regime::LowerBoundApplies => {
                        assert!(p.upper_precondition >= 1.0 && tau >= p.required_delay);
                    }
                    Regime::Neither => {
                        assert!(p.upper_precondition >= 1.0 && tau < p.required_delay);
                    }
                }
            }
        }
    }

    proptest! {
        /// The §8 claim: the two preconditions never hold simultaneously, for
        /// any step size, delay, thread count and dimension we probe
        /// (sequentially unstable α counts as "upper bound inapplicable").
        #[test]
        fn regimes_never_overlap(
            alpha in 0.0001_f64..0.9,
            tau in 1_u64..10_000_000,
            n in 1_usize..64,
            d in 1_usize..512,
        ) {
            prop_assert!(preconditions_incompatible(alpha, &consts(), 0.01, tau, n, d),
                "overlap at α={} τ={} n={} d={}", alpha, tau, n, d);
        }
    }
}
