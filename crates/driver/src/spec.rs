//! [`RunSpec`] — one value describing an SGD run end to end.

use crate::error::DriverError;
use asgd_oracle::OracleSpec;
use asgd_shmem::sched::{
    BoundedDelayAdversary, IterationSerial, RandomScheduler, Scheduler, SerialScheduler,
    StaleGradientAdversary, StepRoundRobin,
};

/// The execution models a [`RunSpec`] can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BackendKind {
    /// The classic sequential iteration (Eq. 1), single coin stream.
    Sequential,
    /// Algorithm 1 in the simulator under a [`SchedulerSpec`] adversary.
    SimulatedLockFree,
    /// Algorithm 2 (epoch halving) in the simulator.
    SimulatedFullSgd,
    /// Algorithm 1 on OS threads (Hogwild-style, lock-free).
    Hogwild,
    /// The coarse-grained-locking baseline on OS threads.
    Locked,
    /// Epoch-guarded SGD on OS threads (single-word-CAS DCAS rendition).
    GuardedEpoch,
    /// Algorithm 2 on OS threads.
    NativeFullSgd,
}

impl BackendKind {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Sequential => "sequential",
            Self::SimulatedLockFree => "simulated-lockfree",
            Self::SimulatedFullSgd => "simulated-fullsgd",
            Self::Hogwild => "hogwild",
            Self::Locked => "locked",
            Self::GuardedEpoch => "guarded-epoch",
            Self::NativeFullSgd => "native-fullsgd",
        }
    }

    /// Every backend, in documentation order.
    #[must_use]
    pub fn all() -> &'static [BackendKind] {
        &[
            Self::Sequential,
            Self::SimulatedLockFree,
            Self::SimulatedFullSgd,
            Self::Hogwild,
            Self::Locked,
            Self::GuardedEpoch,
            Self::NativeFullSgd,
        ]
    }

    /// True if executions on this backend are deterministic given the spec
    /// (the simulator and the single-stream sequential baseline are; native
    /// thread interleavings are not).
    #[must_use]
    pub fn deterministic(self) -> bool {
        matches!(
            self,
            Self::Sequential | Self::SimulatedLockFree | Self::SimulatedFullSgd
        )
    }
}

impl std::str::FromStr for BackendKind {
    type Err = DriverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendKind::all()
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                DriverError::InvalidSpec(format!(
                    "unknown backend `{s}` (known: {})",
                    BackendKind::all()
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared-model memory layout for the native backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModelLayoutSpec {
    /// Entries packed contiguously — the default.
    #[default]
    Compact,
    /// One entry per 64-byte cache line (kills false sharing at small d).
    Padded,
}

impl ModelLayoutSpec {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Compact => "compact",
            Self::Padded => "padded",
        }
    }
}

impl std::str::FromStr for ModelLayoutSpec {
    type Err = DriverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "compact" => Ok(Self::Compact),
            "padded" => Ok(Self::Padded),
            other => Err(DriverError::InvalidSpec(format!(
                "unknown layout `{other}` (known: compact, padded)"
            ))),
        }
    }
}

/// Memory ordering of the native shared model's reads and `fetch&add`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum UpdateOrderSpec {
    /// Sequentially consistent — the §2 model, paper-faithful. The default.
    #[default]
    SeqCst,
    /// Relaxed loads / AcqRel CAS: same per-entry atomicity and update
    /// conservation, no total order across entries.
    Relaxed,
}

impl UpdateOrderSpec {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::SeqCst => "seqcst",
            Self::Relaxed => "relaxed",
        }
    }
}

impl std::str::FromStr for UpdateOrderSpec {
    type Err = DriverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "seqcst" => Ok(Self::SeqCst),
            "relaxed" => Ok(Self::Relaxed),
            other => Err(DriverError::InvalidSpec(format!(
                "unknown order `{other}` (known: seqcst, relaxed)"
            ))),
        }
    }
}

/// Dense-vs-sparse gradient path selection.
///
/// Native backends interpret `Auto` as "sparse iff the oracle's support
/// bound Δ satisfies 4·Δ ≤ d". The simulated lock-free backend treats the
/// dense op scan as paper-faithful and only declares sparse ops under
/// `Sparse` (for oracles with the two-phase decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SparsePathSpec {
    /// Let each backend pick (native: by Δ vs d; simulated: dense).
    #[default]
    Auto,
    /// Force the dense O(d) path everywhere.
    Dense,
    /// Force the O(Δ) path wherever the oracle supports it.
    Sparse,
}

impl SparsePathSpec {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Dense => "dense",
            Self::Sparse => "sparse",
        }
    }
}

impl std::str::FromStr for SparsePathSpec {
    type Err = DriverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::Auto),
            "dense" => Ok(Self::Dense),
            "sparse" => Ok(Self::Sparse),
            other => Err(DriverError::InvalidSpec(format!(
                "unknown sparse path `{other}` (known: auto, dense, sparse)"
            ))),
        }
    }
}

/// Parameter-store sharding for the native backends (simulated registers
/// have no arenas; ignored there, as is the serializing locked baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ShardsSpec {
    /// One flat arena — the default.
    #[default]
    Flat,
    /// Derive the shard count from the detected topology.
    Auto,
    /// Exactly this many balanced contiguous shards (clamped to `1..=d`).
    Fixed(usize),
}

impl ShardsSpec {
    /// Canonical CLI/JSON rendering (`flat`, `auto`, or the count).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Self::Flat => "flat".to_string(),
            Self::Auto => "auto".to_string(),
            Self::Fixed(n) => n.to_string(),
        }
    }
}

impl std::str::FromStr for ShardsSpec {
    type Err = DriverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flat" => Ok(Self::Flat),
            "auto" => Ok(Self::Auto),
            other => other
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Self::Fixed)
                .ok_or_else(|| {
                    DriverError::InvalidSpec(format!(
                        "unknown shards `{other}` (known: flat, auto, or a count >= 1)"
                    ))
                }),
        }
    }
}

/// Worker-to-core pinning for the native backends (best effort; the
/// simulator has no OS threads to pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PinSpec {
    /// Do not pin — the default.
    #[default]
    Off,
    /// Pin workers round-robin to cores at spawn.
    On,
}

impl PinSpec {
    /// Canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::On => "on",
        }
    }
}

impl std::str::FromStr for PinSpec {
    type Err = DriverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Self::Off),
            "on" => Ok(Self::On),
            other => Err(DriverError::InvalidSpec(format!(
                "unknown pin `{other}` (known: on, off)"
            ))),
        }
    }
}

/// Step-size schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StepSize {
    /// Constant learning rate `α`.
    Constant {
        /// The learning rate.
        alpha: f64,
    },
    /// Algorithm 2's halving schedule: `α₀ / 2^e` across
    /// `halving_epochs + 1` epochs of equal share of the iteration budget.
    Halving {
        /// Initial learning rate `α₀`.
        alpha0: f64,
        /// Halving epochs after the first.
        halving_epochs: usize,
    },
}

impl StepSize {
    /// The epoch-0 learning rate.
    #[must_use]
    pub fn initial_alpha(self) -> f64 {
        match self {
            Self::Constant { alpha } => alpha,
            Self::Halving { alpha0, .. } => alpha0,
        }
    }

    /// Halving epochs (0 for a constant schedule).
    #[must_use]
    pub fn halving_epochs(self) -> usize {
        match self {
            Self::Constant { .. } => 0,
            Self::Halving { halving_epochs, .. } => halving_epochs,
        }
    }

    /// The constant rate, or an error for epoch schedules — used by
    /// single-epoch backends.
    pub(crate) fn constant_alpha(self, backend: BackendKind) -> Result<f64, DriverError> {
        match self {
            Self::Constant { alpha } => Ok(alpha),
            Self::Halving { .. } => Err(DriverError::InvalidSpec(format!(
                "backend `{backend}` runs a constant step size; use simulated-fullsgd, \
                 native-fullsgd or guarded-epoch for halving schedules"
            ))),
        }
    }
}

/// Scheduler (adversary) selection for the simulated backends. Native
/// backends ignore it — the OS is their scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulerSpec {
    /// Thread 0 runs to completion, then thread 1, …
    Serial,
    /// One step per thread, cyclically.
    RoundRobin,
    /// Serial iterations, rotating the executing thread per iteration.
    IterationSerial,
    /// Uniformly random runnable thread (oblivious stochastic scheduler).
    Random {
        /// Scheduler seed (independent of the run seed).
        seed: u64,
    },
    /// Adaptive adversary manufacturing interval contention up to `budget`.
    BoundedDelay {
        /// Contention budget `τ`.
        budget: u64,
    },
    /// The §5 lower-bound adversary: freeze a victim's gradient for `delay`
    /// iterations, then merge it stale.
    StaleGradient {
        /// Thread executing the foreground iterations.
        runner: usize,
        /// Thread whose gradient is frozen.
        victim: usize,
        /// Delay `τ` before the stale merge.
        delay: u64,
    },
}

impl SchedulerSpec {
    /// Builds the scheduler.
    #[must_use]
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            Self::Serial => Box::new(SerialScheduler::new()),
            Self::RoundRobin => Box::new(StepRoundRobin::new()),
            Self::IterationSerial => Box::new(IterationSerial::new()),
            Self::Random { seed } => Box::new(RandomScheduler::new(seed)),
            Self::BoundedDelay { budget } => Box::new(BoundedDelayAdversary::new(budget)),
            Self::StaleGradient {
                runner,
                victim,
                delay,
            } => Box::new(StaleGradientAdversary::new(runner, victim, delay)),
        }
    }

    /// Canonical CLI/JSON rendering (`kind` or `kind:param`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Self::Serial => "serial".to_string(),
            Self::RoundRobin => "round-robin".to_string(),
            Self::IterationSerial => "iteration-serial".to_string(),
            Self::Random { seed } => format!("random:{seed}"),
            Self::BoundedDelay { budget } => format!("delay:{budget}"),
            Self::StaleGradient { delay, .. } => format!("stale:{delay}"),
        }
    }
}

impl std::str::FromStr for SchedulerSpec {
    type Err = DriverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, param) = match s.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (s, None),
        };
        let num = |what: &str| -> Result<u64, DriverError> {
            param
                .ok_or_else(|| {
                    DriverError::InvalidSpec(format!("scheduler `{kind}` needs `:{what}`"))
                })?
                .parse()
                .map_err(|_| DriverError::InvalidSpec(format!("scheduler `{s}`: bad {what} value")))
        };
        match kind {
            "serial" => Ok(Self::Serial),
            "rr" | "round-robin" => Ok(Self::RoundRobin),
            "iteration-serial" => Ok(Self::IterationSerial),
            "random" => Ok(Self::Random { seed: num("seed")? }),
            "delay" => Ok(Self::BoundedDelay {
                budget: num("budget")?,
            }),
            "stale" => Ok(Self::StaleGradient {
                runner: 0,
                victim: 1,
                delay: num("delay")?,
            }),
            other => Err(DriverError::InvalidSpec(format!(
                "unknown scheduler `{other}` (known: serial, round-robin, \
                 iteration-serial, random:SEED, delay:BUDGET, stale:DELAY)"
            ))),
        }
    }
}

/// One value describing an SGD run: workload, execution model, concurrency,
/// schedule, success region and seed. The same spec runs unchanged on every
/// compatible [`BackendKind`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunSpec {
    /// Workload, built by name through the oracle registry.
    pub oracle: OracleSpec,
    /// Execution model.
    pub backend: BackendKind,
    /// Thread count `n` (the sequential backend runs one stream regardless).
    pub threads: usize,
    /// Total iteration budget `T` (shared across epochs for the FullSGD
    /// backends).
    pub iterations: u64,
    /// Step-size schedule.
    pub step: StepSize,
    /// Initial point (defaults to the origin).
    pub x0: Option<Vec<f64>>,
    /// Success region threshold `ε` on `‖x − x*‖²`, enabling hitting-time
    /// tracking where the backend supports it.
    pub success_radius_sq: Option<f64>,
    /// Master seed for all coin streams.
    pub seed: u64,
    /// Scheduler/adversary for simulated backends (ignored natively).
    pub scheduler: SchedulerSpec,
    /// Step cap for simulated backends (needed with starving adversaries).
    pub max_steps: Option<u64>,
    /// Shared-model layout for native backends (simulated registers have no
    /// cache lines; ignored there).
    pub layout: ModelLayoutSpec,
    /// Memory ordering for native backends (the simulator is sequentially
    /// consistent by construction; ignored there).
    pub order: UpdateOrderSpec,
    /// Dense-vs-sparse gradient path.
    pub sparse: SparsePathSpec,
    /// Parameter-store sharding for native backends (ignored by the
    /// simulator and by the serializing locked baseline).
    pub shards: ShardsSpec,
    /// Worker-to-core pinning for native backends (best effort).
    pub pin: PinSpec,
    /// Trajectory collection stride: `Some(k)` records a
    /// [`TrajectorySample`](crate::TrajectorySample) roughly every `k`
    /// iterations into [`RunReport::trajectory`](crate::RunReport) (and
    /// streams it to any attached observer). `None` (the default) collects
    /// nothing; observers then still receive progress at a default stride.
    /// Sampling is pure observation — it never changes a run's trajectory.
    pub trajectory_stride: Option<u64>,
}

impl RunSpec {
    /// A spec with defaults: 2 threads, `T = 1000`, constant `α = 0.05`,
    /// origin start, no success region, seed 0, round-robin scheduler.
    #[must_use]
    pub fn new(oracle: OracleSpec, backend: BackendKind) -> Self {
        Self {
            oracle,
            backend,
            threads: 2,
            iterations: 1000,
            step: StepSize::Constant { alpha: 0.05 },
            x0: None,
            success_radius_sq: None,
            seed: 0,
            scheduler: SchedulerSpec::RoundRobin,
            max_steps: None,
            layout: ModelLayoutSpec::Compact,
            order: UpdateOrderSpec::SeqCst,
            sparse: SparsePathSpec::Auto,
            shards: ShardsSpec::Flat,
            pin: PinSpec::Off,
            trajectory_stride: None,
        }
    }

    /// Selects a different backend (the cheap way to run one spec
    /// everywhere).
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the thread count.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets the total iteration budget.
    #[must_use]
    pub fn iterations(mut self, t: u64) -> Self {
        self.iterations = t;
        self
    }

    /// Sets a constant learning rate.
    #[must_use]
    pub fn learning_rate(mut self, alpha: f64) -> Self {
        self.step = StepSize::Constant { alpha };
        self
    }

    /// Sets a halving (Algorithm 2) schedule.
    #[must_use]
    pub fn halving(mut self, alpha0: f64, halving_epochs: usize) -> Self {
        self.step = StepSize::Halving {
            alpha0,
            halving_epochs,
        };
        self
    }

    /// Sets the initial point.
    #[must_use]
    pub fn x0(mut self, x0: Vec<f64>) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// Enables success-region tracking with threshold `ε`.
    #[must_use]
    pub fn success_radius_sq(mut self, eps: f64) -> Self {
        self.success_radius_sq = Some(eps);
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the simulated scheduler/adversary.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Caps simulated steps.
    #[must_use]
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Selects the native shared-model layout.
    #[must_use]
    pub fn layout(mut self, layout: ModelLayoutSpec) -> Self {
        self.layout = layout;
        self
    }

    /// Selects the native memory ordering.
    #[must_use]
    pub fn order(mut self, order: UpdateOrderSpec) -> Self {
        self.order = order;
        self
    }

    /// Selects the dense-vs-sparse gradient path.
    #[must_use]
    pub fn sparse(mut self, sparse: SparsePathSpec) -> Self {
        self.sparse = sparse;
        self
    }

    /// Selects the native parameter-store sharding.
    #[must_use]
    pub fn shards(mut self, shards: ShardsSpec) -> Self {
        self.shards = shards;
        self
    }

    /// Selects native worker-to-core pinning.
    #[must_use]
    pub fn pin(mut self, pin: PinSpec) -> Self {
        self.pin = pin;
        self
    }

    /// Enables trajectory collection: one sample roughly every `stride`
    /// iterations lands in `RunReport::trajectory`. A zero stride is
    /// rejected at validation time.
    #[must_use]
    pub fn trajectory_every(mut self, stride: u64) -> Self {
        self.trajectory_stride = Some(stride);
        self
    }

    /// Executes the spec on its backend.
    ///
    /// # Errors
    ///
    /// See [`crate::run_spec`].
    pub fn run(&self) -> Result<crate::RunReport, DriverError> {
        crate::run_spec(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for &kind in BackendKind::all() {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("warp-drive".parse::<BackendKind>().is_err());
    }

    #[test]
    fn scheduler_labels_parse_back() {
        for spec in [
            SchedulerSpec::Serial,
            SchedulerSpec::RoundRobin,
            SchedulerSpec::IterationSerial,
            SchedulerSpec::Random { seed: 7 },
            SchedulerSpec::BoundedDelay { budget: 16 },
            SchedulerSpec::StaleGradient {
                runner: 0,
                victim: 1,
                delay: 30,
            },
        ] {
            assert_eq!(spec.label().parse::<SchedulerSpec>().unwrap(), spec);
            let _ = spec.build(); // constructible
        }
        assert!("random".parse::<SchedulerSpec>().is_err(), "missing seed");
        assert!("bogus".parse::<SchedulerSpec>().is_err());
    }

    #[test]
    fn tuning_labels_parse_back() {
        for layout in [ModelLayoutSpec::Compact, ModelLayoutSpec::Padded] {
            assert_eq!(layout.label().parse::<ModelLayoutSpec>().unwrap(), layout);
        }
        for order in [UpdateOrderSpec::SeqCst, UpdateOrderSpec::Relaxed] {
            assert_eq!(order.label().parse::<UpdateOrderSpec>().unwrap(), order);
        }
        for sparse in [
            SparsePathSpec::Auto,
            SparsePathSpec::Dense,
            SparsePathSpec::Sparse,
        ] {
            assert_eq!(sparse.label().parse::<SparsePathSpec>().unwrap(), sparse);
        }
        for shards in [ShardsSpec::Flat, ShardsSpec::Auto, ShardsSpec::Fixed(12)] {
            assert_eq!(shards.label().parse::<ShardsSpec>().unwrap(), shards);
        }
        for pin in [PinSpec::Off, PinSpec::On] {
            assert_eq!(pin.label().parse::<PinSpec>().unwrap(), pin);
        }
        assert!("banana".parse::<ModelLayoutSpec>().is_err());
        assert!("banana".parse::<UpdateOrderSpec>().is_err());
        assert!("banana".parse::<SparsePathSpec>().is_err());
        assert!("banana".parse::<ShardsSpec>().is_err());
        assert!("0".parse::<ShardsSpec>().is_err(), "zero shards rejected");
        assert!("banana".parse::<PinSpec>().is_err());
    }

    #[test]
    fn tuning_builders_apply_and_default_is_paper_faithful() {
        let spec = RunSpec::new(OracleSpec::new("noisy-quadratic", 2), BackendKind::Hogwild);
        assert_eq!(spec.layout, ModelLayoutSpec::Compact);
        assert_eq!(spec.order, UpdateOrderSpec::SeqCst);
        assert_eq!(spec.sparse, SparsePathSpec::Auto);
        assert_eq!(spec.shards, ShardsSpec::Flat);
        assert_eq!(spec.pin, PinSpec::Off);
        let spec = spec
            .layout(ModelLayoutSpec::Padded)
            .order(UpdateOrderSpec::Relaxed)
            .sparse(SparsePathSpec::Sparse)
            .shards(ShardsSpec::Fixed(4))
            .pin(PinSpec::On);
        assert_eq!(spec.layout, ModelLayoutSpec::Padded);
        assert_eq!(spec.order, UpdateOrderSpec::Relaxed);
        assert_eq!(spec.sparse, SparsePathSpec::Sparse);
        assert_eq!(spec.shards, ShardsSpec::Fixed(4));
        assert_eq!(spec.pin, PinSpec::On);
    }

    #[test]
    fn step_size_accessors() {
        let c = StepSize::Constant { alpha: 0.1 };
        assert_eq!(c.initial_alpha(), 0.1);
        assert_eq!(c.halving_epochs(), 0);
        assert_eq!(c.constant_alpha(BackendKind::Hogwild).unwrap(), 0.1);
        let h = StepSize::Halving {
            alpha0: 0.4,
            halving_epochs: 3,
        };
        assert_eq!(h.initial_alpha(), 0.4);
        assert_eq!(h.halving_epochs(), 3);
        assert!(h.constant_alpha(BackendKind::Hogwild).is_err());
    }
}
