//! The shared register file.
//!
//! Two banks of atomic registers: `f64` *model* registers (the shared
//! parameter vector `X` of Algorithm 1, plus any additional arrays a program
//! lays out, e.g. one model per epoch for Algorithm 2) and `u64` *counter*
//! registers (the iteration counter `C`, one per epoch).
//!
//! The engine applies exactly one [`MemOp`] per global step, so the register
//! file never needs interior synchronisation — atomicity and sequential
//! consistency hold by construction.

use crate::op::{MemOp, OpResult};

/// The shared register file of a simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    floats: Vec<f64>,
    counters: Vec<u64>,
}

impl Memory {
    /// Creates a register file with `float_regs` model registers (all `0.0`,
    /// matching Algorithm 1's `X = (0, …, 0)` initialisation) and
    /// `counter_regs` counter registers (all `0`).
    #[must_use]
    pub fn new(float_regs: usize, counter_regs: usize) -> Self {
        Self {
            floats: vec![0.0; float_regs],
            counters: vec![0; counter_regs],
        }
    }

    /// Creates a register file whose model registers are initialised to `x0`.
    #[must_use]
    pub fn with_model(x0: &[f64], counter_regs: usize) -> Self {
        Self {
            floats: x0.to_vec(),
            counters: vec![0; counter_regs],
        }
    }

    /// All model registers.
    #[must_use]
    pub fn floats(&self) -> &[f64] {
        &self.floats
    }

    /// All counter registers.
    #[must_use]
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Reads model register `idx` without consuming a simulation step (for
    /// schedulers and post-run inspection; simulated threads must go through
    /// [`MemOp`]s).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn float(&self, idx: usize) -> f64 {
        self.floats[idx]
    }

    /// Reads counter register `idx` without consuming a simulation step.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn counter(&self, idx: usize) -> u64 {
        self.counters[idx]
    }

    /// Applies `op` atomically and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the op addresses a register out of bounds; programs declare
    /// their memory layout up front, so this is a programming error.
    pub fn apply(&mut self, op: &MemOp) -> OpResult {
        match *op {
            MemOp::ReadF64 { idx } => OpResult::F64(self.floats[idx]),
            MemOp::WriteF64 { idx, value } => {
                self.floats[idx] = value;
                OpResult::Unit
            }
            MemOp::FaaF64 { idx, delta } => {
                let prior = self.floats[idx];
                self.floats[idx] = prior + delta;
                OpResult::F64(prior)
            }
            MemOp::CasF64 { idx, expected, new } => {
                let observed = self.floats[idx];
                let success = observed.to_bits() == expected.to_bits();
                if success {
                    self.floats[idx] = new;
                }
                OpResult::CasF64 { success, observed }
            }
            MemOp::ReadU64 { idx } => OpResult::U64(self.counters[idx]),
            MemOp::WriteU64 { idx, value } => {
                self.counters[idx] = value;
                OpResult::Unit
            }
            MemOp::FaaU64 { idx, delta } => {
                let prior = self.counters[idx];
                self.counters[idx] = prior.wrapping_add(delta);
                OpResult::U64(prior)
            }
            MemOp::CasU64 { idx, expected, new } => {
                let observed = self.counters[idx];
                let success = observed == expected;
                if success {
                    self.counters[idx] = new;
                }
                OpResult::CasU64 { success, observed }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new(3, 2);
        assert_eq!(m.floats(), &[0.0, 0.0, 0.0]);
        assert_eq!(m.counters(), &[0, 0]);
    }

    #[test]
    fn with_model_copies_x0() {
        let m = Memory::with_model(&[1.0, -2.0], 1);
        assert_eq!(m.float(0), 1.0);
        assert_eq!(m.float(1), -2.0);
        assert_eq!(m.counter(0), 0);
    }

    #[test]
    fn faa_f64_returns_prior() {
        let mut m = Memory::new(1, 0);
        assert_eq!(
            m.apply(&MemOp::FaaF64 { idx: 0, delta: 2.5 }),
            OpResult::F64(0.0)
        );
        assert_eq!(
            m.apply(&MemOp::FaaF64 {
                idx: 0,
                delta: -1.0
            }),
            OpResult::F64(2.5)
        );
        assert_eq!(m.float(0), 1.5);
    }

    #[test]
    fn faa_u64_returns_prior_and_wraps() {
        let mut m = Memory::new(0, 1);
        assert_eq!(
            m.apply(&MemOp::FaaU64 { idx: 0, delta: 1 }),
            OpResult::U64(0)
        );
        assert_eq!(
            m.apply(&MemOp::FaaU64 { idx: 0, delta: 1 }),
            OpResult::U64(1)
        );
        assert_eq!(m.counter(0), 2);
        m.apply(&MemOp::WriteU64 {
            idx: 0,
            value: u64::MAX,
        });
        assert_eq!(
            m.apply(&MemOp::FaaU64 { idx: 0, delta: 2 }),
            OpResult::U64(u64::MAX)
        );
        assert_eq!(m.counter(0), 1);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new(2, 1);
        m.apply(&MemOp::WriteF64 { idx: 1, value: 7.0 });
        assert_eq!(m.apply(&MemOp::ReadF64 { idx: 1 }), OpResult::F64(7.0));
        m.apply(&MemOp::WriteU64 { idx: 0, value: 42 });
        assert_eq!(m.apply(&MemOp::ReadU64 { idx: 0 }), OpResult::U64(42));
    }

    #[test]
    fn cas_u64_success_and_failure() {
        let mut m = Memory::new(0, 1);
        assert_eq!(
            m.apply(&MemOp::CasU64 {
                idx: 0,
                expected: 0,
                new: 5
            }),
            OpResult::CasU64 {
                success: true,
                observed: 0
            }
        );
        assert_eq!(
            m.apply(&MemOp::CasU64 {
                idx: 0,
                expected: 0,
                new: 9
            }),
            OpResult::CasU64 {
                success: false,
                observed: 5
            }
        );
        assert_eq!(m.counter(0), 5);
    }

    #[test]
    fn cas_f64_uses_bitwise_equality() {
        let mut m = Memory::new(1, 0);
        m.apply(&MemOp::WriteF64 { idx: 0, value: 0.1 });
        // 0.1 + 0.2 - 0.2 != 0.1 bitwise? Use exact bits to be sure.
        let ok = m.apply(&MemOp::CasF64 {
            idx: 0,
            expected: 0.1,
            new: 1.0,
        });
        assert_eq!(
            ok,
            OpResult::CasF64 {
                success: true,
                observed: 0.1
            }
        );
        let fail = m.apply(&MemOp::CasF64 {
            idx: 0,
            expected: 0.5,
            new: 2.0,
        });
        assert!(matches!(fail, OpResult::CasF64 { success: false, .. }));
        assert_eq!(m.float(0), 1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mut m = Memory::new(1, 1);
        m.apply(&MemOp::ReadF64 { idx: 5 });
    }
}
