//! Execution tuning knobs shared by all native executors.

use crate::model::{ModelLayout, UpdateOrder};

/// When to take the O(Δ) sparse gradient path instead of the O(d) dense one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparsePolicy {
    /// Sparse iff the oracle declares a support bound Δ with `4·Δ ≤ d` — the
    /// regime where skipping the dense view scan clearly pays. The default.
    #[default]
    Auto,
    /// Always run the dense path (the paper-faithful full view scan).
    ForceDense,
    /// Run the sparse path whenever the oracle declares *any* support bound
    /// (oracles without one fall back to dense — the sparse machinery needs
    /// a bound to be meaningful).
    ForceSparse,
}

impl SparsePolicy {
    /// Decides the path for a model of dimension `d` and an oracle reporting
    /// `max_support`.
    #[must_use]
    pub fn use_sparse(self, d: usize, max_support: Option<usize>) -> bool {
        match self {
            Self::ForceDense => false,
            Self::ForceSparse => max_support.is_some(),
            Self::Auto => max_support.is_some_and(|s| s.saturating_mul(4) <= d),
        }
    }
}

/// How to shard the parameter store across per-range arenas.
///
/// Resolution to an actual shard count (and router) lives in
/// `crate::shard::ShardPolicy::resolve`; the flat store remains the default
/// because at small `d` the padded flat layout already solves false sharing
/// and the router would be pure overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardPolicy {
    /// One flat arena (`SharedModel`) — the default.
    #[default]
    Flat,
    /// Derive the shard count from the detected topology (cores and
    /// coherency-line size).
    Auto,
    /// Exactly this many balanced contiguous shards (clamped to `1..=d`).
    Fixed(usize),
}

/// Tuning of a native executor's hot loop, orthogonal to the algorithmic
/// configuration (`threads`, `iterations`, `alpha`, …).
///
/// The defaults reproduce the paper-faithful execution on dense oracles and
/// switch Δ-sparse oracles onto the O(Δ) path automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecTuning {
    /// Shared-model memory layout (false-sharing avoidance at small d).
    /// Applies to the flat store; sharded stores are always compact within
    /// each arena (the arenas themselves provide the separation).
    pub layout: ModelLayout,
    /// Memory ordering of model reads and `fetch&add`s.
    pub order: UpdateOrder,
    /// Dense-vs-sparse path selection.
    pub sparse: SparsePolicy,
    /// Parameter-store sharding (flat, topology-derived, or fixed count).
    pub shards: ShardPolicy,
    /// Pin worker threads round-robin to cores at spawn (best effort; a
    /// failed pin is ignored). Off by default.
    pub pin: bool,
    /// On the sparse path, the success-region check needs a full O(d)
    /// distance accumulation; it is sampled every this many claims instead
    /// of every claim (the dense path, which has the view anyway, keeps
    /// checking every claim). Clamped to ≥ 1.
    pub success_check_stride: u64,
}

impl Default for ExecTuning {
    fn default() -> Self {
        Self {
            layout: ModelLayout::Compact,
            order: UpdateOrder::SeqCst,
            sparse: SparsePolicy::Auto,
            shards: ShardPolicy::Flat,
            pin: false,
            success_check_stride: 16,
        }
    }
}

impl ExecTuning {
    /// The stride, clamped to ≥ 1.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.success_check_stride.max(1)
    }
}

/// Allocates the dense O(d) scratch vector a claim loop needs — and asserts
/// (in debug builds) that the sparse path never asks for one.
///
/// Every executor routes its view/accumulator allocations through here with
/// `use_sparse` from its path decision and `needed` from its own logic, so
/// the "sparse path materialises no dense scratch" invariant is *checked* at
/// every allocation site rather than promised in a comment. Returns an empty
/// vector when `needed` is false.
#[must_use]
pub fn dense_scratch(d: usize, use_sparse: bool, needed: bool) -> Vec<f64> {
    debug_assert!(
        !(use_sparse && needed),
        "sparse path must not materialise a dense O(d) scratch vector"
    );
    if needed {
        vec![0.0; d]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_policy_requires_headroom() {
        let p = SparsePolicy::Auto;
        assert!(p.use_sparse(16, Some(1)), "Δ=1, d=16");
        assert!(p.use_sparse(4, Some(1)), "Δ=1, d=4 is the boundary");
        assert!(!p.use_sparse(3, Some(1)), "Δ=1, d=3: too dense to pay off");
        assert!(!p.use_sparse(1 << 20, None), "dense oracle stays dense");
    }

    #[test]
    fn force_policies() {
        assert!(!SparsePolicy::ForceDense.use_sparse(1 << 20, Some(1)));
        assert!(SparsePolicy::ForceSparse.use_sparse(2, Some(1)));
        assert!(
            !SparsePolicy::ForceSparse.use_sparse(2, None),
            "no support bound ⇒ no sparse path even when forced"
        );
    }

    #[test]
    fn default_tuning_is_paper_faithful_with_auto_sparse() {
        let t = ExecTuning::default();
        assert_eq!(t.layout, ModelLayout::Compact);
        assert_eq!(t.order, UpdateOrder::SeqCst);
        assert_eq!(t.sparse, SparsePolicy::Auto);
        assert_eq!(t.shards, ShardPolicy::Flat, "flat store is the default");
        assert!(!t.pin, "pinning defaults off");
        assert!(t.stride() >= 1);
        let zero = ExecTuning {
            success_check_stride: 0,
            ..ExecTuning::default()
        };
        assert_eq!(zero.stride(), 1, "stride clamps to 1");
    }

    #[test]
    fn dense_scratch_allocates_only_when_needed() {
        assert_eq!(dense_scratch(8, false, true), vec![0.0; 8]);
        assert!(dense_scratch(8, false, false).is_empty());
        assert!(dense_scratch(8, true, false).is_empty());
    }

    #[test]
    #[should_panic(expected = "sparse path must not materialise")]
    #[cfg(debug_assertions)]
    fn dense_scratch_rejects_sparse_path_allocations() {
        let _ = dense_scratch(8, true, true);
    }
}
