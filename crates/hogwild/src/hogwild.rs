//! The native lock-free executor — Algorithm 1 on OS threads.

use crate::control::RunControl;
use crate::shard::{ParamStore, StoreWriter};
use crate::snapshot::{ModelReader, SnapshotCell};
use crate::tuning::{dense_scratch, ExecTuning};
use asgd_math::rng::SeedSequence;
use asgd_oracle::{apply_dense_chunk, GradientOracle, SparseGrad};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a native Hogwild run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HogwildConfig {
    /// Worker thread count `n ≥ 1`.
    pub threads: usize,
    /// Total iteration budget `T` (shared claim counter).
    pub iterations: u64,
    /// Constant learning rate `α > 0`.
    pub alpha: f64,
    /// Master seed; thread `i` derives coin stream `i`.
    pub seed: u64,
    /// Optional `ε`: threads record the first claim index at which a freshly
    /// read view satisfied `‖v − x*‖² ≤ ε` (a native proxy for the hitting
    /// time; exact accumulator-order tracking is a simulator-only facility).
    pub success_radius_sq: Option<f64>,
}

/// Outcome of a native Hogwild run.
#[derive(Debug, Clone, PartialEq)]
pub struct HogwildReport {
    /// Final shared model (read after all threads joined — consistent).
    pub final_model: Vec<f64>,
    /// `‖X_final − x*‖²`.
    pub final_dist_sq: f64,
    /// Iterations actually executed (= `T`, or fewer if cancelled).
    pub iterations: u64,
    /// Per-thread completed iteration counts (sums to `iterations`).
    pub per_thread_iterations: Vec<u64>,
    /// Smallest claim index whose view was inside the success region, if
    /// tracking was enabled and any view qualified. On the sparse path the
    /// check is *sampled* (every [`ExecTuning::success_check_stride`]
    /// claims), so this is an upper bound on the first qualifying claim.
    pub first_success_claim: Option<u64>,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// Whether the run took the O(Δ) sparse gradient path.
    pub used_sparse: bool,
    /// Whether the run was ended early by [`RunControl::stop`] (workers stop
    /// within one success-check stride of the flag being raised).
    pub cancelled: bool,
}

impl HogwildReport {
    /// Iteration throughput in iterations per second.
    #[must_use]
    pub fn iterations_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            f64::INFINITY
        } else {
            self.iterations as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// The lock-free executor.
///
/// Shares one [`GradientOracle`] and one [`ParamStore`] across `n` threads;
/// each thread loops: claim a slot via `fetch&add` on the iteration counter,
/// read an (inconsistent) view, sample a gradient, apply nonzero entries via
/// per-entry `fetch&add`. No locks, no barriers.
///
/// For Δ-sparse oracles ([`GradientOracle::max_support`]) the hot loop takes
/// the O(Δ) path: no full view scan, per-entry atomic reads of just the
/// gradient's support, Δ `fetch&add`s — the d/Δ cost factor the paper's
/// sparsity parameterisation promises. [`Hogwild::tuning`] selects the path
/// and the shared model's layout/ordering.
#[derive(Debug)]
pub struct Hogwild<O> {
    oracle: O,
    cfg: HogwildConfig,
    tuning: ExecTuning,
}

impl<O: GradientOracle> Hogwild<O> {
    /// Creates the executor with default [`ExecTuning`] (paper-faithful
    /// ordering, compact layout, automatic sparse-path selection).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `alpha` is not finite and positive.
    #[must_use]
    pub fn new(oracle: O, cfg: HogwildConfig) -> Self {
        assert!(cfg.threads >= 1, "at least one thread required");
        assert!(
            cfg.alpha.is_finite() && cfg.alpha > 0.0,
            "alpha must be positive"
        );
        Self {
            oracle,
            cfg,
            tuning: ExecTuning::default(),
        }
    }

    /// Overrides the execution tuning (layout, ordering, sparse policy).
    #[must_use]
    pub fn tuning(mut self, tuning: ExecTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Runs Algorithm 1 to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run(&self, x0: &[f64]) -> HogwildReport {
        self.run_controlled(x0, RunControl::default())
    }

    /// Like [`Hogwild::run`], with a [`RunControl`] for cancellation and
    /// strided metrics. Both hooks fire when a claim index is a multiple of
    /// [`ExecTuning::success_check_stride`], so their cost and the
    /// cancellation latency are bounded regardless of `d`.
    ///
    /// # Panics
    ///
    /// Panics if `x0`'s dimension differs from the oracle's.
    #[must_use]
    pub fn run_controlled(&self, x0: &[f64], ctrl: RunControl<'_>) -> HogwildReport {
        let d = self.oracle.dimension();
        assert_eq!(x0.len(), d, "x0 dimension mismatch");
        // The store and claim counter live in `Arc`s so a serving attachment
        // can keep reading them after this call returns (one allocation per
        // run — irrelevant next to the model itself). The store is flat or
        // sharded per `ExecTuning::shards`; the claim loop is oblivious.
        let model = Arc::new(ParamStore::with_tuning(x0, &self.tuning));
        let counter = Arc::new(AtomicU64::new(0));
        // Snapshot storage, only when a serving hook is attached.
        let cell = ctrl.serve.map(|_| Arc::new(SnapshotCell::new(d)));
        if let (Some(hook), Some(cell)) = (ctrl.serve, &cell) {
            hook.attach(ModelReader::new(
                Arc::clone(&model),
                Arc::clone(cell),
                Arc::clone(&counter),
                self.cfg.iterations,
            ));
        }
        let first_success = AtomicU64::new(u64::MAX);
        let interrupted = AtomicBool::new(false);
        let seeds = SeedSequence::new(self.cfg.seed);
        let mut per_thread = vec![0u64; self.cfg.threads];
        let use_sparse = self.tuning.sparse.use_sparse(d, self.oracle.max_support());
        let stride = self.tuning.stride();
        // The minimizer slice and the gradient capacity are loop-invariant;
        // resolve the virtual calls once, outside the claim loop.
        let minimizer = self.oracle.minimizer();
        let grad_cap = self.oracle.max_support().unwrap_or(1);

        let start = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.cfg.threads)
                .map(|tid| {
                    let model = &*model;
                    let counter = &*counter;
                    let cell = cell.as_deref();
                    let first_success = &first_success;
                    let interrupted = &interrupted;
                    let oracle = &self.oracle;
                    let cfg = self.cfg;
                    let mut rng = seeds.child_rng(tid as u64);
                    let pin = self.tuning.pin;
                    scope.spawn(move || {
                        if pin {
                            let _ = crate::pin::pin_current_thread(tid);
                        }
                        let mut done = 0u64;
                        // Step-timing state: one Instant read per stride
                        // window (never per claim), so the sink costs the
                        // same O(1)-per-stride as the stop check.
                        let timing_on = ctrl.timing.is_some();
                        let mut last_tick = Instant::now();
                        let mut last_done = 0u64;
                        // Batched shard-counter accounting: one RMW per
                        // COUNTER_FLUSH updates instead of one per entry.
                        let mut writer = StoreWriter::new(model);
                        if use_sparse {
                            let mut grad = SparseGrad::with_capacity(grad_cap);
                            loop {
                                let claim = counter.fetch_add(1, Ordering::SeqCst);
                                if claim >= cfg.iterations {
                                    return done;
                                }
                                if claim.is_multiple_of(stride) {
                                    if ctrl.is_stopped() {
                                        interrupted.store(true, Ordering::SeqCst);
                                        return done;
                                    }
                                    if timing_on && done > last_done {
                                        let now = Instant::now();
                                        let ns = now.duration_since(last_tick).as_nanos();
                                        ctrl.emit_timing(
                                            claim,
                                            ns.min(u128::from(u64::MAX)) as u64,
                                            done - last_done,
                                        );
                                        last_tick = now;
                                        last_done = done;
                                    }
                                }
                                if let (Some(hook), Some(cell)) = (ctrl.serve, cell) {
                                    if hook.publishes_at(claim) {
                                        // Tag with the global claim counter at copy
                                        // start (not this worker's own claim index,
                                        // which can be arbitrarily stale if the
                                        // worker was descheduled after claiming).
                                        // Single-threaded, the two coincide: x_claim
                                        // exactly.
                                        let progress = (counter.load(Ordering::SeqCst) - 1)
                                            .min(cfg.iterations);
                                        // Notify inside the publish critical
                                        // section: versions reach the listener
                                        // in strictly increasing order.
                                        let _ =
                                            cell.try_publish_notify(model, progress, |v, tag| {
                                                hook.notify_published(v, tag)
                                            });
                                    }
                                }
                                let at_success =
                                    cfg.success_radius_sq.is_some() && claim.is_multiple_of(stride);
                                let at_metrics = ctrl.metrics_at(claim);
                                if at_success || at_metrics {
                                    // Streaming per-entry distance: identical
                                    // read order and arithmetic to a view scan
                                    // + `l2_dist_sq`, with no O(d) scratch.
                                    let dist_sq = model.dist_sq_to(minimizer);
                                    if at_success
                                        && cfg.success_radius_sq.is_some_and(|eps| dist_sq <= eps)
                                    {
                                        first_success.fetch_min(claim, Ordering::SeqCst);
                                    }
                                    if at_metrics {
                                        ctrl.emit_metrics(claim, dist_sq);
                                    }
                                }
                                oracle.sample_gradient_sparse(model, &mut rng, &mut grad);
                                for &(j, gj) in grad.entries() {
                                    if gj != 0.0 {
                                        writer.fetch_add(j, -cfg.alpha * gj);
                                    }
                                }
                                done += 1;
                            }
                        } else {
                            let mut view = dense_scratch(d, use_sparse, true);
                            let mut grad = dense_scratch(d, use_sparse, true);
                            loop {
                                let claim = counter.fetch_add(1, Ordering::SeqCst);
                                if claim >= cfg.iterations {
                                    return done;
                                }
                                if claim.is_multiple_of(stride) {
                                    if ctrl.is_stopped() {
                                        interrupted.store(true, Ordering::SeqCst);
                                        return done;
                                    }
                                    if timing_on && done > last_done {
                                        let now = Instant::now();
                                        let ns = now.duration_since(last_tick).as_nanos();
                                        ctrl.emit_timing(
                                            claim,
                                            ns.min(u128::from(u64::MAX)) as u64,
                                            done - last_done,
                                        );
                                        last_tick = now;
                                        last_done = done;
                                    }
                                }
                                if let (Some(hook), Some(cell)) = (ctrl.serve, cell) {
                                    if hook.publishes_at(claim) {
                                        // See the sparse loop: counter-based tag,
                                        // exact for one thread.
                                        let progress = (counter.load(Ordering::SeqCst) - 1)
                                            .min(cfg.iterations);
                                        // Notify inside the publish critical
                                        // section: versions reach the listener
                                        // in strictly increasing order.
                                        let _ =
                                            cell.try_publish_notify(model, progress, |v, tag| {
                                                hook.notify_published(v, tag)
                                            });
                                    }
                                }
                                model.read_view(&mut view);
                                let at_metrics = ctrl.metrics_at(claim);
                                if cfg.success_radius_sq.is_some() || at_metrics {
                                    let dist_sq = asgd_math::vec::l2_dist_sq(&view, minimizer);
                                    if let Some(eps) = cfg.success_radius_sq {
                                        if dist_sq <= eps {
                                            first_success.fetch_min(claim, Ordering::SeqCst);
                                        }
                                    }
                                    if at_metrics {
                                        ctrl.emit_metrics(claim, dist_sq);
                                    }
                                }
                                oracle.sample_gradient(&view, &mut rng, &mut grad);
                                // Chunked delta computation; same products,
                                // same order, same skip-zero contract as the
                                // scalar loop (bit-identical).
                                apply_dense_chunk(&grad, -cfg.alpha, |j, delta| {
                                    writer.fetch_add(j, delta);
                                });
                                done += 1;
                            }
                        }
                    })
                })
                .collect();
            for (tid, h) in handles.into_iter().enumerate() {
                per_thread[tid] = h.join().expect("worker thread panicked");
            }
        });
        let elapsed = start.elapsed();

        let executed: u64 = per_thread.iter().sum();
        // Publish the quiescent final state (also on cancellation): the last
        // snapshot a reader sees always reflects the reported final model.
        // The cell keeps tags monotone, so a cancelled run whose last
        // strided tag counted aborted claims reports that (≤ executed + n)
        // tag rather than regressing.
        if let (Some(hook), Some(cell)) = (ctrl.serve, &cell) {
            let _ = cell.try_publish_notify(&model, executed, |version, tag| {
                hook.notify_published(version, tag);
            });
        }
        let final_model = model.snapshot();
        let final_dist_sq = asgd_math::vec::l2_dist_sq(&final_model, self.oracle.minimizer());
        let hit = first_success.load(Ordering::SeqCst);
        HogwildReport {
            final_model,
            final_dist_sq,
            iterations: executed,
            per_thread_iterations: per_thread,
            first_success_claim: (hit != u64::MAX).then_some(hit),
            elapsed,
            used_sparse: use_sparse,
            cancelled: interrupted.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgd_oracle::{LinearRegression, NoisyQuadratic, SparseQuadratic};
    use std::sync::Arc;

    #[test]
    fn iterations_partition_exactly() {
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.5).unwrap());
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 4,
                iterations: 1_000,
                alpha: 0.01,
                seed: 1,
                success_radius_sq: None,
            },
        )
        .run(&[1.0, 1.0]);
        assert_eq!(report.per_thread_iterations.iter().sum::<u64>(), 1_000);
        assert_eq!(report.iterations, 1_000);
        assert!(report.iterations_per_sec() > 0.0);
    }

    #[test]
    fn converges_on_quadratic_multithreaded() {
        let oracle = Arc::new(NoisyQuadratic::new(4, 0.1).unwrap());
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 4,
                iterations: 20_000,
                alpha: 0.02,
                seed: 3,
                success_radius_sq: Some(0.05),
            },
        )
        .run(&[2.0, -2.0, 1.0, -1.0]);
        assert!(
            report.final_dist_sq < 0.05,
            "final dist² {}",
            report.final_dist_sq
        );
        assert!(report.first_success_claim.is_some());
    }

    #[test]
    fn converges_on_linear_regression() {
        let oracle = Arc::new(LinearRegression::synthetic(200, 6, 0.05, 5).unwrap());
        let report = Hogwild::new(
            Arc::clone(&oracle),
            HogwildConfig {
                threads: 3,
                iterations: 40_000,
                alpha: 0.01,
                seed: 9,
                success_radius_sq: None,
            },
        )
        .run(&[0.0; 6]);
        assert!(
            report.final_dist_sq < 0.05,
            "final dist² {}",
            report.final_dist_sq
        );
    }

    #[test]
    fn sparse_gradients_native() {
        let oracle = Arc::new(SparseQuadratic::uniform(8, 1.0, 0.0).unwrap());
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 4,
                iterations: 30_000,
                alpha: 0.02,
                seed: 4,
                success_radius_sq: None,
            },
        )
        .run(&[1.0; 8]);
        assert!(
            report.used_sparse,
            "Auto selects the sparse path at Δ=1,d=8"
        );
        assert!(
            report.final_dist_sq < 0.01,
            "final dist² {}",
            report.final_dist_sq
        );
    }

    #[test]
    fn sparse_and_dense_paths_agree_bitwise_single_threaded() {
        use crate::tuning::{ExecTuning, SparsePolicy};
        let oracle = Arc::new(SparseQuadratic::uniform(16, 1.0, 0.4).unwrap());
        let cfg = HogwildConfig {
            threads: 1,
            iterations: 2_000,
            alpha: 0.01,
            seed: 77,
            success_radius_sq: None,
        };
        let x0 = vec![1.0; 16];
        let dense = Hogwild::new(Arc::clone(&oracle), cfg)
            .tuning(ExecTuning {
                sparse: SparsePolicy::ForceDense,
                ..ExecTuning::default()
            })
            .run(&x0);
        let sparse = Hogwild::new(Arc::clone(&oracle), cfg)
            .tuning(ExecTuning {
                sparse: SparsePolicy::ForceSparse,
                ..ExecTuning::default()
            })
            .run(&x0);
        assert!(!dense.used_sparse);
        assert!(sparse.used_sparse);
        for (j, (a, b)) in dense
            .final_model
            .iter()
            .zip(&sparse.final_model)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "entry {j}: dense {a} sparse {b}");
        }
    }

    #[test]
    fn tuned_variants_converge_multithreaded() {
        use crate::model::{ModelLayout, UpdateOrder};
        use crate::tuning::ExecTuning;
        let oracle = Arc::new(NoisyQuadratic::new(4, 0.1).unwrap());
        for layout in [ModelLayout::Compact, ModelLayout::Padded] {
            for order in [UpdateOrder::SeqCst, UpdateOrder::Relaxed] {
                let report = Hogwild::new(
                    Arc::clone(&oracle),
                    HogwildConfig {
                        threads: 4,
                        iterations: 20_000,
                        alpha: 0.02,
                        seed: 3,
                        success_radius_sq: None,
                    },
                )
                .tuning(ExecTuning {
                    layout,
                    order,
                    ..ExecTuning::default()
                })
                .run(&[2.0, -2.0, 1.0, -1.0]);
                assert!(
                    report.final_dist_sq < 0.05,
                    "{layout:?}/{order:?}: dist² {}",
                    report.final_dist_sq
                );
            }
        }
    }

    #[test]
    fn single_thread_matches_iteration_count() {
        let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).unwrap());
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 1,
                iterations: 64,
                alpha: 0.1,
                seed: 0,
                success_radius_sq: None,
            },
        )
        .run(&[1.0]);
        assert_eq!(report.per_thread_iterations, vec![64]);
        // Single-threaded noiseless run is exactly (1−α)^T.
        assert!((report.final_model[0] - 0.9_f64.powi(64)).abs() < 1e-12);
    }

    #[test]
    fn pre_raised_stop_flag_cancels_within_one_stride() {
        use std::sync::atomic::AtomicBool;
        let oracle = Arc::new(NoisyQuadratic::new(2, 0.1).unwrap());
        let flag = AtomicBool::new(true);
        let report = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 4,
                iterations: u64::MAX / 2, // effectively unbounded
                alpha: 0.01,
                seed: 1,
                success_radius_sq: None,
            },
        )
        .run_controlled(
            &[1.0, 1.0],
            RunControl {
                stop: Some(&flag),
                ..RunControl::default()
            },
        );
        assert!(report.cancelled);
        let stride = ExecTuning::default().stride();
        assert!(
            report.iterations <= 4 * stride,
            "each worker stops within one stride: {} claims",
            report.iterations
        );
    }

    #[test]
    fn metrics_callback_fires_at_stride_multiples_on_both_paths() {
        use crate::tuning::SparsePolicy;
        use std::sync::Mutex;
        let oracle = Arc::new(SparseQuadratic::uniform(16, 1.0, 0.0).unwrap());
        for sparse in [SparsePolicy::ForceDense, SparsePolicy::ForceSparse] {
            let samples: Mutex<Vec<(u64, f64)>> = Mutex::new(Vec::new());
            let sink = |claim: u64, dist_sq: f64| {
                samples.lock().unwrap().push((claim, dist_sq));
            };
            let report = Hogwild::new(
                Arc::clone(&oracle),
                HogwildConfig {
                    threads: 2,
                    iterations: 200,
                    alpha: 0.01,
                    seed: 5,
                    success_radius_sq: None,
                },
            )
            .tuning(ExecTuning {
                sparse,
                ..ExecTuning::default()
            })
            .run_controlled(
                &[1.0; 16],
                RunControl {
                    metrics: Some(crate::control::MetricsSink {
                        stride: 50,
                        f: &sink,
                    }),
                    ..RunControl::default()
                },
            );
            assert!(!report.cancelled);
            let got = samples.into_inner().unwrap();
            let mut claims: Vec<u64> = got.iter().map(|&(c, _)| c).collect();
            claims.sort_unstable();
            assert_eq!(claims, vec![0, 50, 100, 150], "{sparse:?}");
            assert!(got.iter().all(|&(_, d)| d.is_finite() && d >= 0.0));
        }
    }

    #[test]
    fn timing_sink_accounts_for_every_step_on_both_paths() {
        use crate::tuning::SparsePolicy;
        use std::sync::atomic::AtomicU64;
        let oracle = Arc::new(SparseQuadratic::uniform(16, 1.0, 0.0).unwrap());
        for sparse in [SparsePolicy::ForceDense, SparsePolicy::ForceSparse] {
            let observed_steps = AtomicU64::new(0);
            let observed_ns = AtomicU64::new(0);
            let sink = |_claim: u64, ns: u64, steps: u64| {
                observed_ns.fetch_add(ns, Ordering::Relaxed);
                observed_steps.fetch_add(steps, Ordering::Relaxed);
            };
            let iterations = 10_000;
            let report = Hogwild::new(
                Arc::clone(&oracle),
                HogwildConfig {
                    threads: 2,
                    iterations,
                    alpha: 0.01,
                    seed: 5,
                    success_radius_sq: None,
                },
            )
            .tuning(ExecTuning {
                sparse,
                ..ExecTuning::default()
            })
            .run_controlled(
                &[1.0; 16],
                RunControl {
                    timing: Some(crate::control::TimingSink { f: &sink }),
                    ..RunControl::default()
                },
            );
            assert_eq!(report.iterations, iterations);
            let steps = observed_steps.load(Ordering::Relaxed);
            // Each worker's last partial stride window is never flushed, so
            // the sink sees all but at most (threads × stride) steps.
            let stride = ExecTuning::default().stride();
            assert!(
                steps >= iterations.saturating_sub(2 * stride),
                "{sparse:?}: observed only {steps} of {iterations} steps"
            );
            assert!(steps <= iterations);
            assert!(observed_ns.load(Ordering::Relaxed) > 0, "{sparse:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let oracle = Arc::new(NoisyQuadratic::new(1, 0.0).unwrap());
        let _ = Hogwild::new(
            oracle,
            HogwildConfig {
                threads: 0,
                iterations: 1,
                alpha: 0.1,
                seed: 0,
                success_radius_sq: None,
            },
        );
    }
}
