//! Audit the paper's contention lemmas on live executions: interval
//! contention ρ(θ), τ_max / τ_avg ≤ 2n, Lemma 6.2's bad-iteration windows
//! and Lemma 6.4's √(τ_max·n) indicator sum.
//!
//! ```text
//! cargo run --release --example contention_audit
//! ```

use asyncsgd::core::runner::LockFreeSgd;
use asyncsgd::metrics::Histogram;
use asyncsgd::prelude::*;
use std::sync::Arc;

fn audit(name: &str, scheduler: Box<dyn Scheduler>, n: usize) {
    let oracle = Arc::new(NoisyQuadratic::new(4, 1.0).expect("valid"));
    let run = LockFreeSgd::builder(oracle)
        .threads(n)
        .iterations(1_000)
        .learning_rate(0.02)
        .initial_point(vec![1.0; 4])
        .scheduler(scheduler)
        .seed(0xA0D17)
        .run();
    let c = &run.execution.contention;
    println!("--- {name} (n = {n}) ---");
    println!(
        "iterations: {}   τ_max = {}   τ_avg = {:.2}  (2n = {})   Gibson–Gramoli holds: {}",
        c.iterations(),
        c.tau_max(),
        c.tau_avg(),
        2 * n,
        c.gibson_gramoli_holds()
    );
    if let Some(a) = c.lemma_6_2(2) {
        println!(
            "Lemma 6.2 (K=2): max bad completions per window = {} < n = {}: {}",
            a.max_bad_completions, a.bound, a.holds
        );
    }
    let a64 = c.lemma_6_4();
    println!(
        "Lemma 6.4: max_t Σ 1{{τ_t+m ≥ m}} = {} ≤ 2√(τ_max·n) = {:.2}: {}",
        a64.max_sum, a64.bound, a64.holds
    );
    let hist: Histogram = c.rho_values().iter().copied().collect();
    println!("interval-contention histogram (ρ(θ)):");
    print!("{}", hist.render(40));
    println!();
}

fn main() {
    audit("round-robin", Box::new(StepRoundRobin::new()), 4);
    audit("random", Box::new(RandomScheduler::new(5)), 4);
    audit(
        "bounded-delay adversary (budget 16)",
        Box::new(BoundedDelayAdversary::new(16)),
        4,
    );
    audit(
        "crash adversary (3 of 4 threads crash)",
        Box::new(CrashAdversary::new(
            RandomScheduler::new(9),
            vec![(2_000, 1), (4_000, 2), (6_000, 3)],
        )),
        4,
    );
}
