//! Wire-protocol serving front-end for asynchronous SGD — the network
//! tier above `asgd-serve`: real TCP clients querying live training runs.
//!
//! Everything below `asgd-serve` shares one address space; this crate
//! puts a socket boundary in front of it, dependency-free on std:
//!
//! * [`protocol`] — the length-prefixed, versioned binary protocol:
//!   `dot-score`, `predict`, `fetch-range`, `model-stats`, and (v2)
//!   `submit-observe` requests (each carrying a [`Priority`]) and
//!   value/error/shed/ingested responses. `f64`s travel as IEEE-754 bit
//!   patterns, so a served model reads **bit-identically** through the
//!   socket path (the workspace's sequential-equivalence oracle extends
//!   across the wire; see `tests/net.rs`). Malformed, truncated, or
//!   oversized frames are typed errors, never panics.
//! * [`NetServer`] — a thread-per-connection front-end over a shared
//!   [`ModelRegistry`](asgd_serve::ModelRegistry) (multi-model tenancy:
//!   many named concurrent training runs, addressed by id). Robustness is
//!   explicit: connection-budget **admission control** (`AdmissionDenied`
//!   frames), a bounded in-flight window (`Busy` frames as
//!   backpressure), per-connection idle/write timeouts, and **SLO load
//!   shedding**.
//! * [`LoadShedder`] — tracks the rolling p99 of executed requests in a
//!   count-rotated [`SlidingHistogram`](asgd_metrics::SlidingHistogram)
//!   and, past the objective, sheds lowest-priority traffic first with
//!   explicit [`Response::Shed`] frames. Shed requests skip their compute
//!   entirely — that reclaimed CPU is what holds the admitted p99.
//! * [`NetClient`] — a blocking client; [`run_net_workload`] — an
//!   **open-loop** socket fleet (fixed tick schedule, latency charged
//!   from the scheduled send instant) whose per-priority [`NetReport`]
//!   is how the bench demonstrates shedding under deliberate overload.
//! * [`fault`] — deterministic fault injection under the framing layer:
//!   [`FaultyStream`] perturbs delivery (partial writes, short reads,
//!   delays, mid-frame disconnects) per a seeded [`FaultPlan`], on both
//!   the server ([`NetConfig::fault`]) and the client side.
//!   [`RetryingClient`] is the survival strategy: every [`ClientError`]
//!   carries a [`RetryClass`], and retryable failures are replayed with
//!   capped exponential backoff, jitter, and reconnect-on-broken-pipe.
//!   Replay is gated per operation on [`Request::idempotent`]: the read
//!   ops replay freely, but `submit-observe` — the protocol's one write —
//!   is never re-sent after an indeterminate mid-call transport failure
//!   (at-most-once; a duplicate observation would silently skew the live
//!   gradient stream). The `asgd-chaos` crate drives this pair as a
//!   campaign and asserts zero wrong answers under churn.
//! * `submit-observe` routes through the
//!   [`ModelRegistry`](asgd_serve::ModelRegistry) into a streaming
//!   model's bounded ingress queue (`ModelRegistry::create_streaming`) —
//!   the continual-learning write path `asgd-ingest` builds on. Queue
//!   refusals come back as typed [`ErrorCode::Overloaded`] frames, which
//!   guarantee the observation was not enqueued and are therefore always
//!   safe to retry.
//!
//! # Example
//!
//! ```
//! use asgd_driver::{BackendKind, RunSpec};
//! use asgd_net::{NetClient, NetConfig, NetServer, Priority};
//! use asgd_oracle::OracleSpec;
//! use asgd_serve::{ModelRegistry, ReadMode};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let train = RunSpec::new(
//!     OracleSpec::new("sparse-quadratic", 32).sigma(0.0),
//!     BackendKind::Hogwild,
//! )
//! .threads(1)
//! .iterations(100_000)
//! .learning_rate(0.002)
//! .x0(vec![1.0; 32])
//! .seed(7);
//! let id = registry
//!     .create("ranker", &train, ReadMode::Snapshot, 1_000)
//!     .expect("creates");
//!
//! let server = NetServer::serve(Arc::clone(&registry), NetConfig::default()).expect("binds");
//! let mut client = NetClient::connect(server.local_addr()).expect("connects");
//! let (score, _staleness) = client
//!     .dot_score(id.0, &[(0, 1.0), (3, -0.5)], Priority::Normal)
//!     .expect("scores");
//! assert!(score.is_finite());
//! server.stop();
//! registry.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod protocol;
pub mod server;
pub mod shed;
pub mod workload;

pub use client::{ClientError, NetClient, RetryClass, RetryPolicy, RetryingClient};
pub use fault::{FaultPlan, FaultyStream};
pub use protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Priority, Request, RequestFrame, Response,
    StatsSelector, MAX_FRAME_LEN, MAX_OBSERVE_LEN, MAX_PROBE_LEN, PROTOCOL_VERSION,
};
pub use server::{NetConfig, NetServer, ServerStats};
pub use shed::{LoadShedder, SloPolicy, Verdict};
pub use workload::{
    run_net_workload, ClassReport, NetOp, NetReport, NetWorkloadSpec, WorkloadError,
};
