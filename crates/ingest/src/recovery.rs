//! Time-to-recover-after-drift: how long the live trainer takes to get
//! back inside the success region once the world moves.
//!
//! A [`RecoveryMonitor`] polls the served model through its
//! [`asgd_driver::ModelReader`] at a fixed interval and
//! records `‖x − θ*‖²` against the *current* [`GroundTruth`] — so the
//! trace jumps the instant drift fires (the target moved, the model did
//! not) and then decays as streamed observations re-teach the trainer.
//!
//! The success region is self-normalizing: rather than a fixed ε (which
//! depends on how much prior-fallback traffic dilutes the stream), the
//! monitor takes the last pre-drift distance as the *baseline*, the first
//! post-drift distance as the *jump*, and declares recovery at the first
//! sample that closes a configured fraction of that gap. This is the
//! stream-side analogue of the paper's success-region hitting time: the
//! first trajectory sample back inside the region after the adversary
//! (here: the world) perturbs the process.

use crate::drift::GroundTruth;
use asgd_driver::ModelReader;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One recovery-monitor sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoverySample {
    /// Seconds since the monitor started.
    pub elapsed_secs: f64,
    /// `‖x − θ*‖²` against the ground truth current at sample time.
    pub dist_sq: f64,
    /// Ground-truth version the sample measured against (drift count).
    pub target_version: u64,
}

/// The full sampled trace, with the recovery computation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    /// Samples in time order.
    pub samples: Vec<RecoverySample>,
}

impl RecoveryLog {
    /// Time from `drift_at_secs` to the first sample that closed at least
    /// `frac` of the drift-induced distance gap:
    /// `dist ≤ baseline + (1 − frac)·(jump − baseline)`, where `baseline`
    /// is the last pre-drift distance and `jump` the first post-drift one.
    ///
    /// Returns `None` when there is no post-drift sample or none recovered
    /// (the trainer never made it back). A drift that produced no visible
    /// jump recovers at its first post-drift sample.
    #[must_use]
    pub fn time_to_recover(&self, drift_at_secs: f64, frac: f64) -> Option<f64> {
        let frac = frac.clamp(0.0, 1.0);
        let baseline = self
            .samples
            .iter()
            .take_while(|s| s.elapsed_secs < drift_at_secs)
            .last()
            .map(|s| s.dist_sq);
        let mut post = self
            .samples
            .iter()
            .skip_while(|s| s.elapsed_secs < drift_at_secs);
        let jump = post.clone().next()?.dist_sq;
        let baseline = baseline.unwrap_or(0.0).min(jump);
        let threshold = baseline + (1.0 - frac) * (jump - baseline);
        post.find(|s| s.dist_sq <= threshold)
            .map(|s| s.elapsed_secs - drift_at_secs)
    }

    /// Time from `drift_at_secs` to the first post-drift sample with
    /// `dist_sq ≤ eps` — the absolute-ε variant, for workloads where the
    /// stream fully determines the optimum.
    #[must_use]
    pub fn time_to_recover_within(&self, drift_at_secs: f64, eps: f64) -> Option<f64> {
        self.samples
            .iter()
            .skip_while(|s| s.elapsed_secs < drift_at_secs)
            .find(|s| s.dist_sq <= eps)
            .map(|s| s.elapsed_secs - drift_at_secs)
    }

    /// The minimum distance observed at or after `at_secs`.
    #[must_use]
    pub fn min_dist_sq_after(&self, at_secs: f64) -> Option<f64> {
        self.samples
            .iter()
            .skip_while(|s| s.elapsed_secs < at_secs)
            .map(|s| s.dist_sq)
            .min_by(f64::total_cmp)
    }
}

/// A background thread polling the live model against the drifting ground
/// truth. Stop it to collect the [`RecoveryLog`].
#[derive(Debug)]
pub struct RecoveryMonitor {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<RecoveryLog>,
    started: Instant,
}

impl RecoveryMonitor {
    /// Starts polling `reader` every `interval` against `ground`.
    #[must_use]
    pub fn spawn(reader: ModelReader, ground: Arc<GroundTruth>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("asgd-ingest-recovery".to_string())
            .spawn(move || {
                let mut log = RecoveryLog::default();
                let mut x = vec![0.0; reader.dimension()];
                while !stop_flag.load(Ordering::SeqCst) {
                    reader.read_live(&mut x);
                    log.samples.push(RecoverySample {
                        elapsed_secs: started.elapsed().as_secs_f64(),
                        dist_sq: ground.dist_sq(&x),
                        target_version: ground.version(),
                    });
                    std::thread::sleep(interval);
                }
                // One final sample so the post-stop state is recorded.
                reader.read_live(&mut x);
                log.samples.push(RecoverySample {
                    elapsed_secs: started.elapsed().as_secs_f64(),
                    dist_sq: ground.dist_sq(&x),
                    target_version: ground.version(),
                });
                log
            })
            .expect("spawn recovery monitor");
        Self {
            stop,
            handle,
            started,
        }
    }

    /// Seconds since the monitor started (the clock recovery samples and
    /// drift timestamps share).
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Stops polling and returns the collected trace.
    #[must_use]
    pub fn stop(self) -> RecoveryLog {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_from(pairs: &[(f64, f64)]) -> RecoveryLog {
        RecoveryLog {
            samples: pairs
                .iter()
                .map(|&(t, d)| RecoverySample {
                    elapsed_secs: t,
                    dist_sq: d,
                    target_version: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn recovery_closes_the_configured_gap_fraction() {
        // Baseline 1.0, jump to 9.0 at t=1.0, decay back down.
        let log = log_from(&[
            (0.5, 1.0),
            (1.0, 9.0),
            (1.5, 6.0),
            (2.0, 4.9), // closes 50% of the 8.0 gap (threshold 5.0)
            (2.5, 1.7), // closes 90% (threshold 1.8)
            (3.0, 1.1),
        ]);
        let half = log.time_to_recover(1.0, 0.5).expect("recovers");
        assert!((half - 1.0).abs() < 1e-12, "50% closed at t=2.0: {half}");
        let ninety = log.time_to_recover(1.0, 0.9).expect("recovers");
        assert!(
            (ninety - 1.5).abs() < 1e-12,
            "90% closed at t=2.5: {ninety}"
        );
        // Absolute variant.
        let abs = log.time_to_recover_within(1.0, 1.2).expect("recovers");
        assert!((abs - 2.0).abs() < 1e-12);
        assert_eq!(log.min_dist_sq_after(1.0), Some(1.1));
    }

    #[test]
    fn unrecovered_and_empty_traces_are_none() {
        let log = log_from(&[(0.5, 1.0), (1.0, 9.0), (2.0, 8.5)]);
        assert_eq!(log.time_to_recover(1.0, 0.9), None, "never closed 90%");
        assert_eq!(RecoveryLog::default().time_to_recover(0.0, 0.5), None);
        assert_eq!(log.time_to_recover_within(1.0, 0.1), None);
    }

    #[test]
    fn invisible_drift_recovers_immediately() {
        // No jump: the first post-drift sample already qualifies.
        let log = log_from(&[(0.5, 1.0), (1.0, 1.0), (1.5, 1.0)]);
        let t = log.time_to_recover(0.75, 0.9).expect("recovers");
        assert!((t - 0.25).abs() < 1e-12);
    }

    #[test]
    fn a_pre_drift_baseline_above_the_jump_is_clamped() {
        // Transient spike before drift must not poison the threshold:
        // baseline clamps to the jump, so the gap is zero and the first
        // post-drift sample (the jump itself) counts as recovered.
        let log = log_from(&[(0.5, 12.0), (1.0, 9.0), (1.5, 0.5)]);
        let t = log.time_to_recover(1.0, 0.9).expect("recovers");
        assert!(t.abs() < 1e-12, "gapless drift recovers at the jump: {t}");
    }
}
