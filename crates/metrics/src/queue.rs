//! Lock-free counters for bounded ingress queues.
//!
//! The ingest tier (`asgd-ingest`) moves labeled observations from socket
//! producers into training runs through bounded queues; every queue owns a
//! [`QueueCounters`] so backpressure behaviour is *observable*, not
//! inferred. All counters are monotone `u64`s updated with relaxed atomics
//! — they are telemetry, never synchronization — and the current depth is
//! derived (`pushed − popped − dropped`), so a torn multi-counter read can
//! momentarily disagree by a few events but each individual counter never
//! runs backwards. The chaos model for the queue
//! (`asgd-chaos::IngestQueueModel`) checks exactly these monotonicity
//! invariants under adversarial schedules.
//!
//! Consumer **lag** is recorded per pop: the number of observations that
//! were pushed after the one being consumed — the queue-side analogue of
//! the paper's delay parameter τ (how stale the consumed sample is
//! relative to the newest arrival).
//!
//! The serving tier's stats-scrape mirrors every hosted queue's counters
//! into the process-wide telemetry registry (`asgd-telemetry`) as
//! `asgd_ingest_{pushed,popped,dropped,rejected,starved}_total` counters
//! plus `asgd_ingest_queue_depth` and `asgd_ingest_lag_mean` gauges, so a
//! Prometheus scraper sees backpressure with the same per-counter
//! monotonicity this module guarantees locally.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone per-queue counters: pushes, pops, drops, rejects, starvation,
/// and consumer lag. Shared by producers, the consumer, and observers.
#[derive(Debug, Default)]
pub struct QueueCounters {
    pushed: AtomicU64,
    popped: AtomicU64,
    dropped: AtomicU64,
    rejected: AtomicU64,
    starved: AtomicU64,
    lag_sum: AtomicU64,
    lag_max: AtomicU64,
}

/// A point-in-time snapshot of a queue's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Observations successfully enqueued.
    pub pushed: u64,
    /// Observations consumed.
    pub popped: u64,
    /// Observations evicted to make room (DropOldest policy).
    pub dropped: u64,
    /// Push attempts refused outright (Reject policy).
    pub rejected: u64,
    /// Pop attempts that found the queue empty (consumer fell back to its
    /// prior oracle).
    pub starved: u64,
    /// Current depth, derived: `pushed − popped − dropped`.
    pub depth: u64,
    /// Sum of per-pop consumer lags (observations pushed after the
    /// consumed one).
    pub lag_sum: u64,
    /// Largest single-pop consumer lag observed.
    pub lag_max: u64,
}

impl QueueStats {
    /// Mean consumer lag per pop (0 when nothing was popped).
    #[must_use]
    pub fn lag_mean(&self) -> f64 {
        if self.popped == 0 {
            0.0
        } else {
            self.lag_sum as f64 / self.popped as f64
        }
    }
}

impl QueueCounters {
    /// Fresh counters, all zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one successful enqueue.
    pub fn record_push(&self) {
        self.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dequeue whose consumed observation lagged the newest
    /// arrival by `lag` pushes.
    pub fn record_pop(&self, lag: u64) {
        self.popped.fetch_add(1, Ordering::Relaxed);
        self.lag_sum.fetch_add(lag, Ordering::Relaxed);
        self.lag_max.fetch_max(lag, Ordering::Relaxed);
    }

    /// Records one observation evicted by the DropOldest policy.
    pub fn record_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one push refused by the Reject policy.
    pub fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one empty-queue pop (the consumer starved).
    pub fn record_starved(&self) {
        self.starved.fetch_add(1, Ordering::Relaxed);
    }

    /// Total successful enqueues so far.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Total dequeues so far.
    #[must_use]
    pub fn popped(&self) -> u64 {
        self.popped.load(Ordering::Relaxed)
    }

    /// Total DropOldest evictions so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total Reject refusals so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Total starved pops so far.
    #[must_use]
    pub fn starved(&self) -> u64 {
        self.starved.load(Ordering::Relaxed)
    }

    /// Current depth, derived from the monotone counters.
    #[must_use]
    pub fn depth(&self) -> u64 {
        let pushed = self.pushed.load(Ordering::Relaxed);
        let gone = self
            .popped
            .load(Ordering::Relaxed)
            .saturating_add(self.dropped.load(Ordering::Relaxed));
        pushed.saturating_sub(gone)
    }

    /// A point-in-time snapshot (relaxed reads; individual counters are
    /// exact and monotone, cross-counter consistency is best-effort).
    #[must_use]
    pub fn snapshot(&self) -> QueueStats {
        let pushed = self.pushed.load(Ordering::Relaxed);
        let popped = self.popped.load(Ordering::Relaxed);
        let dropped = self.dropped.load(Ordering::Relaxed);
        QueueStats {
            pushed,
            popped,
            dropped,
            rejected: self.rejected.load(Ordering::Relaxed),
            starved: self.starved.load(Ordering::Relaxed),
            depth: pushed.saturating_sub(popped.saturating_add(dropped)),
            lag_sum: self.lag_sum.load(Ordering::Relaxed),
            lag_max: self.lag_max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_pushes_minus_pops_minus_drops() {
        let c = QueueCounters::new();
        for _ in 0..5 {
            c.record_push();
        }
        c.record_pop(0);
        c.record_drop();
        assert_eq!(c.depth(), 3);
        let s = c.snapshot();
        assert_eq!((s.pushed, s.popped, s.dropped, s.depth), (5, 1, 1, 3));
    }

    #[test]
    fn lag_statistics_track_sum_and_max() {
        let c = QueueCounters::new();
        for lag in [0, 4, 2] {
            c.record_push();
            c.record_pop(lag);
        }
        let s = c.snapshot();
        assert_eq!(s.lag_sum, 6);
        assert_eq!(s.lag_max, 4);
        assert!((s.lag_mean() - 2.0).abs() < 1e-12);
        assert_eq!(QueueStats::default().lag_mean(), 0.0);
    }

    #[test]
    fn reject_and_starve_do_not_move_depth() {
        let c = QueueCounters::new();
        c.record_push();
        c.record_reject();
        c.record_starved();
        assert_eq!(c.depth(), 1);
        assert_eq!(c.rejected(), 1);
        assert_eq!(c.starved(), 1);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(QueueCounters::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record_push();
                    }
                });
            }
        });
        assert_eq!(c.pushed(), 4000);
    }
}
