//! The lock-free [`MetricsRegistry`]: monotone counters, gauges, and
//! bucketed histograms with cache-line-padded per-thread cells.
//!
//! Hot-path updates never take a lock: every thread is assigned a stripe
//! once (a process-wide monotone id, folded modulo [`STRIPES`]) and bumps
//! its own cache-line-padded `AtomicU64` cell with relaxed ordering, so
//! concurrent writers on different cores never bounce a line — the same
//! layout discipline as `ShardedModel`'s per-shard update counters.
//! Registration (the first `counter("name")` call for a name) takes a short
//! mutex; the returned handles are `Arc`s callers keep, so steady state is
//! lock-free.
//!
//! Collection is *validated*: [`MetricsRegistry::snapshot`] double-collects
//! every monotone progress cell (counter stripes and histogram counts) and
//! only flags the snapshot `coherent` when two consecutive collects agree —
//! the registry-wide generalisation of
//! `ShardedModel::coherent_update_counts`, model-checked in `asgd-chaos`
//! (`TelemetryCellModel`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of padded cells each counter/histogram stripes its updates over.
/// Threads beyond this many share cells (correctness is unaffected — cells
/// are atomic — only isolation degrades).
pub const STRIPES: usize = 16;

/// How many times a validated collect re-reads before settling for the
/// (possibly torn) last collect — mirrors `ShardedModel`'s retry bound.
const COHERENT_RETRIES: usize = 16;

/// One cache line of its own for every stripe cell: concurrent writers on
/// different stripes never share a coherency line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// Process-wide monotone thread ids, folded into stripe indices.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// The calling thread's stripe index (assigned once per thread, stable for
/// the thread's lifetime).
#[must_use]
pub fn thread_stripe() -> usize {
    STRIPE.with(|s| *s)
}

/// A monotone counter striped over [`STRIPES`] padded cells. `add` is one
/// relaxed `fetch_add` on the caller's own cell; `value` sums the stripes
/// (each read atomic, the sum monotone but not an instantaneous cut — use
/// [`MetricsRegistry::snapshot`] for a validated cut).
#[derive(Debug, Default)]
pub struct Counter {
    cells: [PaddedCell; STRIPES],
}

impl Counter {
    /// Adds `n` to the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_stripe()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the calling thread's stripe.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes (monotone; relaxed per-cell reads).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Acquire)).sum()
    }

    /// Overwrites the total: the calling thread's stripe absorbs the
    /// difference to `v` when `v` is ahead of the current sum (a *set* that
    /// would run the counter backwards is ignored — counters are monotone).
    /// Used to mirror externally-maintained monotone counters (e.g. shedder
    /// totals) into the registry at scrape time.
    pub fn record_total(&self, v: u64) {
        let now = self.value();
        if v > now {
            self.add(v - now);
        }
    }

    /// Appends every stripe cell's value to `out` (the monotone progress
    /// cells a validated registry collect re-reads).
    fn collect_cells(&self, out: &mut Vec<u64>) {
        out.extend(self.cells.iter().map(|c| c.0.load(Ordering::Acquire)));
    }
}

/// A last-write-wins gauge holding one `f64` (stored as IEEE-754 bits in an
/// `AtomicU64`). Gauges move both ways, so they carry no stripes and take
/// no part in coherence validation.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Power-of-two bucket upper bounds: `1, 2, 4, …, 2^(BUCKET_COUNT-1)`, with
/// an implicit `+Inf` overflow bucket. 48 doublings cover 1 ns to ~3.3 days
/// in nanoseconds — every latency this runtime can plausibly record.
pub const BUCKET_COUNT: usize = 48;

/// Per-stripe histogram cells: bucket counts plus sum/count, each stripe a
/// separate allocation so writers never share lines.
#[derive(Debug)]
struct HistStripe {
    buckets: Box<[AtomicU64; BUCKET_COUNT + 1]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistStripe {
    fn default() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A lock-free bucketed histogram over `u64` observations (latencies in
/// nanoseconds, staleness in iterations). Buckets are fixed powers of two
/// ([`BUCKET_COUNT`] of them plus overflow), so `record` is a
/// `leading_zeros` and three relaxed adds on the caller's stripe.
#[derive(Debug)]
pub struct TelemetryHistogram {
    stripes: [HistStripe; STRIPES],
}

impl Default for TelemetryHistogram {
    fn default() -> Self {
        Self {
            stripes: std::array::from_fn(|_| HistStripe::default()),
        }
    }
}

/// The bucket index observing `v`: smallest `b` with `v ≤ 2^b`, or the
/// overflow bucket.
#[must_use]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let b = (64 - (v - 1).leading_zeros()) as usize;
    b.min(BUCKET_COUNT)
}

impl TelemetryHistogram {
    /// Records one observation on the calling thread's stripe.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.stripes[thread_stripe()];
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations across all stripes.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.count.load(Ordering::Acquire))
            .sum()
    }

    /// Sum of all observations across all stripes (wrapping, like the
    /// underlying atomic adds).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.stripes.iter().fold(0u64, |acc, s| {
            acc.wrapping_add(s.sum.load(Ordering::Acquire))
        })
    }

    /// A point-in-time snapshot (per-cell atomic reads, not validated).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut per_bucket = [0u64; BUCKET_COUNT + 1];
        for s in &self.stripes {
            for (acc, cell) in per_bucket.iter_mut().zip(s.buckets.iter()) {
                *acc += cell.load(Ordering::Acquire);
            }
        }
        // Cumulative `le` counts over the non-empty prefix plus overflow.
        let mut buckets = Vec::new();
        let mut acc = 0;
        for (b, &n) in per_bucket.iter().enumerate().take(BUCKET_COUNT) {
            acc += n;
            if n > 0 {
                buckets.push((1u64 << b, acc));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }

    fn collect_cells(&self, out: &mut Vec<u64>) {
        out.extend(self.stripes.iter().map(|s| s.count.load(Ordering::Acquire)));
    }
}

/// A histogram's point-in-time state: cumulative `(le, count)` pairs for
/// every non-empty power-of-two bucket (observations above the last bound
/// appear only in `count`), plus the total count and sum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `(upper bound, cumulative count ≤ bound)` in increasing bound order.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The smallest bucket bound with cumulative count ≥ `q · count` — a
    /// conservative (upper-bounded) quantile estimate from bucketed data.
    #[must_use]
    pub fn quantile_le(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        for &(le, cum) in &self.buckets {
            if cum >= target {
                return Some(le);
            }
        }
        self.buckets.last().map(|&(le, _)| le)
    }
}

/// A validated point-in-time view of every registered metric, renderable to
/// (and parseable back from) the Prometheus text exposition format.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// True when the double-collect validated: no monotone cell moved
    /// between the two collects, so the counters and histogram counts are
    /// an instantaneous cross-metric state. Gauges are always last-write.
    pub coherent: bool,
    /// `(name, total)` per counter, in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, in name order.
    pub gauges: Vec<(String, f64)>,
    /// `(name, state)` per histogram, in name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The metric maps behind one registration mutex. Updates never touch the
/// mutex — handles are `Arc`s handed out at registration.
#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<TelemetryHistogram>>,
}

/// A registry of named metrics with lock-free updates and validated
/// coherent collection.
///
/// Metric names may carry a Prometheus label block
/// (`asgd_shard_updates{model="m",shard="3"}`); the registry treats the
/// whole string as the key and the exposition renderer emits it verbatim.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// Recovers a poisoned registration lock (metric maps are always valid —
/// a panicking registrant leaves them registered, never torn).
fn lock_inner(m: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            lock_inner(&self.inner)
                .counters
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            lock_inner(&self.inner)
                .gauges
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<TelemetryHistogram> {
        Arc::clone(
            lock_inner(&self.inner)
                .histograms
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// A validated snapshot of every registered metric.
    ///
    /// Collects every monotone progress cell (counter stripes, histogram
    /// counts), then re-collects: equal collects mean no metric moved
    /// between the two passes, so the snapshot is an instantaneous state the
    /// registry actually passed through (`coherent = true`). Under churn the
    /// collect retries a bounded number of times and then returns the last
    /// (per-cell-atomic, possibly torn) collect flagged `coherent = false`.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Handles cloned under the lock; the collects below are lock-free.
        let (counters, gauges, histograms) = {
            let inner = lock_inner(&self.inner);
            (
                inner
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect::<Vec<_>>(),
                inner
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect::<Vec<_>>(),
                inner
                    .histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect::<Vec<_>>(),
            )
        };
        let collect = |out: &mut Vec<u64>| {
            out.clear();
            for (_, c) in &counters {
                c.collect_cells(out);
            }
            for (_, h) in &histograms {
                h.collect_cells(out);
            }
        };
        let mut seen = Vec::new();
        let mut again = Vec::new();
        collect(&mut seen);
        let mut coherent = false;
        for _ in 0..COHERENT_RETRIES {
            collect(&mut again);
            if seen == again {
                coherent = true;
                break;
            }
            std::mem::swap(&mut seen, &mut again);
        }
        // Counter totals and histogram counts are derived from the
        // *validated* collect, never re-read — re-reading after validation
        // would let movement slip between the validated instant and the
        // published values, silently un-pinning a coherent-flagged
        // snapshot (the torn-read twin `asgd-chaos` catches).
        let mut cells = seen.chunks_exact(STRIPES);
        let counters = counters
            .iter()
            .map(|(k, _)| {
                let total = cells.next().map_or(0, |c| c.iter().sum());
                (k.clone(), total)
            })
            .collect();
        let histograms = histograms
            .iter()
            .map(|(k, h)| {
                let count = cells.next().map_or(0, |c| c.iter().sum());
                let mut snap = h.snapshot();
                snap.count = count;
                (k.clone(), snap)
            })
            .collect();
        MetricsSnapshot {
            coherent,
            counters,
            gauges: gauges.iter().map(|(k, g)| (k.clone(), g.value())).collect(),
            histograms,
        }
    }
}

/// The process-wide registry every instrumented tier records into; scrapes
/// render this one.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_stripe_and_sum() {
        let c = Counter::default();
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
        c.record_total(10);
        assert_eq!(c.value(), 10);
        c.record_total(5); // backwards set ignored: counters are monotone
        assert_eq!(c.value(), 10);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let c = std::sync::Arc::new(Counter::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauges_hold_the_last_write() {
        let g = Gauge::default();
        assert_eq!(g.value(), 0.0);
        g.set(2.5);
        assert_eq!(g.value(), 2.5);
        g.set(-1.0);
        assert_eq!(g.value(), -1.0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT);
        let h = TelemetryHistogram::default();
        for v in [1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006_u64.wrapping_add(u64::MAX));
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        // The overflow observation is in count but under no finite bound.
        let last_cum = snap.buckets.last().unwrap().1;
        assert_eq!(last_cum, 4);
        // Bounds increase and cumulative counts are monotone.
        for w in snap.buckets.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
        // Median target is the 3rd observation (value 3), bucketed ≤ 4.
        assert_eq!(snap.quantile_le(0.5), Some(4));
        assert_eq!(HistogramSnapshot::default().quantile_le(0.5), None);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.value(), 1);
        r.gauge("g").set(7.0);
        r.histogram("h").record(42);
        let snap = r.snapshot();
        assert!(snap.coherent, "quiescent registry collects coherently");
        assert_eq!(snap.counters, vec![("x".to_string(), 1)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 7.0)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn snapshot_stays_sane_under_churn() {
        let r = MetricsRegistry::new();
        let c = r.counter("churn");
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                }
            });
            for _ in 0..100 {
                let snap = r.snapshot();
                // Coherent or not, the per-metric totals are monotone.
                assert!(snap.counters[0].1 <= c.value());
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("asgd_test_global_total").add(2);
        let snap = global().snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(k, v)| k == "asgd_test_global_total" && *v >= 2));
    }
}
