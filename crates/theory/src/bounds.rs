//! Failure-probability bounds and learning rates (Theorems 3.1, 6.3, 6.5;
//! Corollary 6.7).
//!
//! All bounds concern the event `F_T` that the iterate sequence never enters
//! the success region `S = {x : ‖x − x*‖² ≤ ε}` within `T` iterations. They
//! are *upper bounds on a probability*: values above 1 are legitimate (the
//! bound is then vacuous) and are returned unclamped, with a `min(1)`
//! convenience in [`clamp_prob`].

use asgd_math::plog;
use asgd_oracle::Constants;

/// Clamps a probability bound into `[0, 1]` for display.
#[must_use]
pub fn clamp_prob(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

/// The contention coefficient `C = 2√(τ_max·n)` of Lemma 6.4.
///
/// The product is taken in `f64` so extreme `τ_max·n` combinations widen
/// instead of wrapping `u64` multiplication (exact for all realistic
/// magnitudes: both factors are exact in `f64` up to 2⁵³).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn contention_coefficient(tau_max: u64, n: usize) -> f64 {
    assert!(n > 0, "at least one thread");
    2.0 * (tau_max.max(1) as f64 * n as f64).sqrt()
}

/// **Theorem 3.1** learning rate: `α = c·ε·ϑ / M²`.
///
/// # Panics
///
/// Panics if `eps` or `theta` is not in a valid range (`ε > 0`,
/// `ϑ ∈ (0, 1]`).
#[must_use]
pub fn theorem_3_1_learning_rate(consts: &Constants, eps: f64, theta: f64) -> f64 {
    validate_eps_theta(eps, theta);
    consts.c * eps * theta / consts.m_sq
}

/// **Theorem 3.1**: sequential SGD failure bound
/// `P(F_T) ≤ M²/(c²·ε·ϑ·T) · plog(e·‖x₀−x*‖²/ε)`.
///
/// # Panics
///
/// Panics if `eps ≤ 0`, `theta ∉ (0,1]`, or `t == 0`.
#[must_use]
pub fn theorem_3_1(consts: &Constants, eps: f64, theta: f64, t: u64, x0_dist_sq: f64) -> f64 {
    validate_eps_theta(eps, theta);
    assert!(t > 0, "horizon T must be positive");
    consts.m_sq / (consts.c * consts.c * eps * theta * t as f64)
        * plog(std::f64::consts::E * x0_dist_sq / eps)
}

/// **Theorem 6.3** (De Sa et al. \[10\]) learning rate:
/// `α = c·ε·ϑ / (M² + 2·L·M·τ·√ε)` — the prior art with *linear* `τ`
/// dependence, implemented for side-by-side comparison tables.
#[must_use]
pub fn theorem_6_3_learning_rate(consts: &Constants, eps: f64, theta: f64, tau: u64) -> f64 {
    validate_eps_theta(eps, theta);
    consts.c * eps * theta / (consts.m_sq + 2.0 * consts.l * consts.m() * tau as f64 * eps.sqrt())
}

/// **Theorem 6.3** (De Sa et al. \[10\]): failure bound
/// `P(F_T) ≤ (M² + 2LMτ√ε)/(c²εϑT) · plog(e‖x₀−x*‖²/ε)`.
///
/// # Panics
///
/// Panics if `eps ≤ 0`, `theta ∉ (0,1]`, or `t == 0`.
#[must_use]
pub fn theorem_6_3(
    consts: &Constants,
    eps: f64,
    theta: f64,
    tau: u64,
    t: u64,
    x0_dist_sq: f64,
) -> f64 {
    validate_eps_theta(eps, theta);
    assert!(t > 0, "horizon T must be positive");
    (consts.m_sq + 2.0 * consts.l * consts.m() * tau as f64 * eps.sqrt())
        / (consts.c * consts.c * eps * theta * t as f64)
        * plog(std::f64::consts::E * x0_dist_sq / eps)
}

/// The **Theorem 6.5** precondition `α²·H·L·M·C·√d < 1`, with
/// `C = 2√(τ_max·n)` and `H` the martingale Lipschitz constant.
///
/// Returns the left-hand side; convergence is guaranteed when it is `< 1`.
#[must_use]
pub fn theorem_6_5_precondition(
    alpha: f64,
    h: f64,
    consts: &Constants,
    tau_max: u64,
    n: usize,
    d: usize,
) -> f64 {
    alpha
        * alpha
        * h
        * consts.l
        * consts.m()
        * contention_coefficient(tau_max, n)
        * (d as f64).sqrt()
}

/// **Theorem 6.5**: the main failure bound
/// `P(F_T) ≤ E[W₀(x₀)] / ((1 − α²HLMC√d)·T)`.
///
/// Returns `f64::INFINITY` when the precondition `α²HLMC√d < 1` fails (the
/// theorem is then inapplicable).
///
/// # Panics
///
/// Panics if `t == 0`.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the theorem's parameter list
pub fn theorem_6_5(
    e_w0: f64,
    alpha: f64,
    h: f64,
    consts: &Constants,
    tau_max: u64,
    n: usize,
    d: usize,
    t: u64,
) -> f64 {
    assert!(t > 0, "horizon T must be positive");
    let pre = theorem_6_5_precondition(alpha, h, consts, tau_max, n, d);
    if pre >= 1.0 {
        return f64::INFINITY;
    }
    e_w0 / ((1.0 - pre) * t as f64)
}

/// **Corollary 6.7 / Eq. 12** learning rate:
/// `α = c·ε·ϑ / (M² + 4·√ε·L·M·√(τ_max·n)·√d)`.
///
/// # Panics
///
/// Panics if `eps ≤ 0` or `theta ∉ (0,1]`.
#[must_use]
pub fn corollary_6_7_learning_rate(
    consts: &Constants,
    eps: f64,
    tau_max: u64,
    n: usize,
    d: usize,
    theta: f64,
) -> f64 {
    validate_eps_theta(eps, theta);
    let c_coeff = contention_coefficient(tau_max, n);
    consts.c * eps * theta
        / (consts.m_sq + 2.0 * eps.sqrt() * consts.l * consts.m() * c_coeff * (d as f64).sqrt())
}

/// **Corollary 6.7 / Eq. 13**: with the Eq. 12 learning rate,
/// `P(F_T) ≤ (M² + 4√ε·L·M·√(τ_max·n)·√d)/(c²εϑT) · plog(e‖x₀−x*‖²/ε)`.
///
/// # Panics
///
/// Panics if `eps ≤ 0`, `theta ∉ (0,1]`, or `t == 0`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn corollary_6_7(
    consts: &Constants,
    eps: f64,
    tau_max: u64,
    n: usize,
    d: usize,
    theta: f64,
    t: u64,
    x0_dist_sq: f64,
) -> f64 {
    validate_eps_theta(eps, theta);
    assert!(t > 0, "horizon T must be positive");
    let c_coeff = contention_coefficient(tau_max, n);
    (consts.m_sq + 2.0 * eps.sqrt() * consts.l * consts.m() * c_coeff * (d as f64).sqrt())
        / (consts.c * consts.c * eps * theta * t as f64)
        * plog(std::f64::consts::E * x0_dist_sq / eps)
}

/// Horizon `T` needed for the Corollary 6.7 bound to drop below `target`
/// failure probability (inverting Eq. 13).
///
/// Always returns at least 1. A ratio too large for `u64` saturates at
/// `u64::MAX` (float→int `as` casts saturate; they never wrap) — "longer
/// than any runnable horizon", not a small wrapped number.
///
/// # Panics
///
/// Panics if `target ∉ (0, 1)` (NaN targets fail the range check),
/// `x0_dist_sq` is not finite and non-negative, or other arguments are
/// invalid for [`corollary_6_7`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn corollary_6_7_horizon(
    consts: &Constants,
    eps: f64,
    tau_max: u64,
    n: usize,
    d: usize,
    theta: f64,
    target: f64,
    x0_dist_sq: f64,
) -> u64 {
    assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
    assert!(
        x0_dist_sq.is_finite() && x0_dist_sq >= 0.0,
        "x0_dist_sq must be finite and non-negative"
    );
    let bound_at_1 = corollary_6_7(consts, eps, tau_max, n, d, theta, 1, x0_dist_sq);
    // With the inputs validated, bound_at_1 ∈ (0, ∞] — never NaN — so the
    // ratio is positive (possibly ∞); `.max(1.0)` pins the floor and the
    // saturating cast maps anything beyond u64::MAX (including ∞) to
    // u64::MAX.
    (bound_at_1 / target).ceil().max(1.0) as u64
}

fn validate_eps_theta(eps: f64, theta: f64) {
    assert!(eps.is_finite() && eps > 0.0, "eps must be positive");
    assert!(
        theta.is_finite() && theta > 0.0 && theta <= 1.0,
        "theta must be in (0, 1]"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn consts() -> Constants {
        Constants::new(1.0, 1.0, 4.0, 10.0)
    }

    #[test]
    fn contention_coefficient_matches_lemma_6_4() {
        assert_eq!(contention_coefficient(4, 4), 8.0); // 2√16
        assert_eq!(contention_coefficient(1, 1), 2.0);
        // τ_max = 0 clamps to 1 (an iteration is concurrent with itself).
        assert_eq!(contention_coefficient(0, 4), 4.0);
    }

    #[test]
    fn theorem_3_1_learning_rate_formula() {
        // α = cεϑ/M² = 1·0.01·0.5/4.
        let a = theorem_3_1_learning_rate(&consts(), 0.01, 0.5);
        assert!((a - 0.00125).abs() < 1e-12);
    }

    #[test]
    fn theorem_3_1_decays_linearly_in_t() {
        let k = consts();
        let b1 = theorem_3_1(&k, 0.01, 1.0, 1000, 1.0);
        let b2 = theorem_3_1(&k, 0.01, 1.0, 2000, 1.0);
        assert!((b1 / b2 - 2.0).abs() < 1e-9, "halves when T doubles");
    }

    #[test]
    fn theorem_6_3_reduces_to_3_1_at_tau_zero() {
        let k = consts();
        let a = theorem_6_3(&k, 0.01, 1.0, 0, 500, 1.0);
        let b = theorem_3_1(&k, 0.01, 1.0, 500, 1.0);
        assert!((a - b).abs() < 1e-12);
        let lr_a = theorem_6_3_learning_rate(&k, 0.01, 1.0, 0);
        let lr_b = theorem_3_1_learning_rate(&k, 0.01, 1.0);
        assert!((lr_a - lr_b).abs() < 1e-15);
    }

    #[test]
    fn theorem_6_3_grows_linearly_in_tau() {
        let k = consts();
        // For large τ the additive term dominates: bound ≈ linear in τ.
        let b1 = theorem_6_3(&k, 0.01, 1.0, 1000, 100, 1.0);
        let b2 = theorem_6_3(&k, 0.01, 1.0, 2000, 100, 1.0);
        assert!(b2 / b1 > 1.8, "ratio {} should approach 2", b2 / b1);
    }

    #[test]
    fn corollary_6_7_grows_like_sqrt_tau() {
        let k = consts();
        // For large τ the √τ term dominates: quadrupling τ doubles the bound.
        let b1 = corollary_6_7(&k, 0.01, 10_000, 4, 16, 1.0, 100, 1.0);
        let b2 = corollary_6_7(&k, 0.01, 40_000, 4, 16, 1.0, 100, 1.0);
        let ratio = b2 / b1;
        assert!(
            (1.8..2.1).contains(&ratio),
            "√τ scaling violated: ratio {ratio}"
        );
    }

    #[test]
    fn corollary_6_7_beats_theorem_6_3_at_large_tau() {
        // The paper's headline: √(τ·n) ≪ τ for τ ≫ n.
        let k = consts();
        let tau = 100_000;
        let ours = corollary_6_7(&k, 0.01, tau, 4, 4, 1.0, 1000, 1.0);
        let prior = theorem_6_3(&k, 0.01, 1.0, tau, 1000, 1.0);
        assert!(
            ours < prior / 10.0,
            "new bound {ours} should be ≪ prior bound {prior}"
        );
    }

    #[test]
    fn theorem_6_5_vacuous_when_precondition_fails() {
        let k = consts();
        let b = theorem_6_5(1.0, 10.0, 100.0, &k, 1000, 8, 64, 100);
        assert_eq!(b, f64::INFINITY);
    }

    #[test]
    fn theorem_6_5_bound_positive_and_decaying() {
        let k = consts();
        let alpha = 1e-3;
        let h = 1.0;
        let pre = theorem_6_5_precondition(alpha, h, &k, 16, 4, 4);
        assert!(pre < 1.0, "precondition {pre}");
        let b1 = theorem_6_5(5.0, alpha, h, &k, 16, 4, 4, 100);
        let b2 = theorem_6_5(5.0, alpha, h, &k, 16, 4, 4, 200);
        assert!(b1 > 0.0 && b2 > 0.0);
        assert!((b1 / b2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_inverts_bound() {
        let k = consts();
        let t = corollary_6_7_horizon(&k, 0.01, 16, 4, 8, 1.0, 0.1, 1.0);
        let bound = corollary_6_7(&k, 0.01, 16, 4, 8, 1.0, t, 1.0);
        assert!(bound <= 0.1 + 1e-9, "bound at derived horizon: {bound}");
        // One fewer iteration must not satisfy the target (tightness).
        if t > 1 {
            let bound_prev = corollary_6_7(&k, 0.01, 16, 4, 8, 1.0, t - 1, 1.0);
            assert!(bound_prev > 0.1 - 1e-6);
        }
    }

    #[test]
    fn clamp_prob_clamps() {
        assert_eq!(clamp_prob(3.7), 1.0);
        assert_eq!(clamp_prob(-0.2), 0.0);
        assert_eq!(clamp_prob(0.4), 0.4);
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1]")]
    fn rejects_bad_theta() {
        let _ = theorem_3_1(&consts(), 0.01, 1.5, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_bad_eps() {
        let _ = corollary_6_7_learning_rate(&consts(), -0.01, 4, 2, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "horizon T must be positive")]
    fn rejects_zero_horizon() {
        let _ = theorem_3_1(&consts(), 0.01, 1.0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "x0_dist_sq must be finite")]
    fn horizon_rejects_nan_start_instead_of_casting_it() {
        // A NaN start distance used to flow through `.ceil() as u64` and
        // silently become horizon 0.
        let _ = corollary_6_7_horizon(&consts(), 0.01, 16, 4, 8, 1.0, 0.1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "target must be in (0,1)")]
    fn horizon_rejects_nan_target() {
        let _ = corollary_6_7_horizon(&consts(), 0.01, 16, 4, 8, 1.0, f64::NAN, 1.0);
    }

    #[test]
    fn horizon_saturates_on_overflowing_ratio() {
        // An astronomically large bound (huge M², tiny ε·target) must clamp
        // to u64::MAX rather than wrapping or going through UB.
        let k = Constants::new(1e-6, 1e6, 1e18, 10.0);
        let t = corollary_6_7_horizon(&k, 1e-18, u64::MAX, 1_000_000, 65_536, 1e-9, 1e-9, 1e12);
        assert_eq!(t, u64::MAX);
    }

    proptest! {
        /// The Eq. 12 learning rate is monotone decreasing in τ_max and in d
        /// (more asynchrony / dimension ⇒ smaller safe step).
        #[test]
        fn lr_monotone_in_tau_and_d(
            tau1 in 1_u64..1000, tau2 in 1_u64..1000,
            d1 in 1_usize..256, d2 in 1_usize..256,
        ) {
            let k = consts();
            let (tlo, thi) = if tau1 <= tau2 { (tau1, tau2) } else { (tau2, tau1) };
            let (dlo, dhi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let base = corollary_6_7_learning_rate(&k, 0.01, tlo, 4, dlo, 1.0);
            prop_assert!(corollary_6_7_learning_rate(&k, 0.01, thi, 4, dlo, 1.0) <= base + 1e-15);
            prop_assert!(corollary_6_7_learning_rate(&k, 0.01, tlo, 4, dhi, 1.0) <= base + 1e-15);
        }

        /// Bounds are non-negative and decrease in T.
        #[test]
        fn bounds_positive_and_monotone_in_t(t1 in 1_u64..10_000, t2 in 1_u64..10_000) {
            let k = consts();
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let b_lo = corollary_6_7(&k, 0.01, 8, 4, 4, 1.0, lo, 1.0);
            let b_hi = corollary_6_7(&k, 0.01, 8, 4, 4, 1.0, hi, 1.0);
            prop_assert!(b_lo >= 0.0 && b_hi >= 0.0);
            prop_assert!(b_hi <= b_lo + 1e-12);
        }

        /// Hardening: across wide valid inputs the derived horizon never
        /// panics, is at least 1, and actually meets the target (or
        /// saturated).
        #[test]
        fn horizon_is_total_and_meets_target(
            eps in 1e-9_f64..1e3,
            tau in 0_u64..u64::MAX,
            n in 1_usize..1_000_000,
            d in 1_usize..1_000_000,
            target in 1e-9_f64..0.999,
            x0 in 0.0_f64..1e9,
        ) {
            let k = consts();
            let t = corollary_6_7_horizon(&k, eps, tau, n, d, 1.0, target, x0);
            prop_assert!(t >= 1);
            if t < u64::MAX {
                let bound = corollary_6_7(&k, eps, tau, n, d, 1.0, t, x0);
                prop_assert!(bound <= target * (1.0 + 1e-9),
                    "bound {} at derived horizon {} misses target {}", bound, t, target);
            }
        }

        /// The new bound never exceeds the prior bound at equal τ when
        /// τ ≥ 4n·d (the asymptotic-regime comparison from the abstract);
        /// √(τ n d) ≤ τ there.
        #[test]
        fn new_bound_dominated_by_prior_in_asymptotic_regime(
            n in 1_usize..8, d in 1_usize..16, extra in 1_u64..100,
        ) {
            let k = consts();
            let tau = (4 * n as u64 * d as u64) * extra;
            let ours = corollary_6_7(&k, 0.01, tau, n, d, 1.0, 100, 1.0);
            let prior = theorem_6_3(&k, 0.01, 1.0, tau, 100, 1.0);
            prop_assert!(ours <= prior * 1.0001,
                "ours {} prior {} at tau={} n={} d={}", ours, prior, tau, n, d);
        }
    }
}
