//! The inert oracle: `f ≡ 0`, every gradient zero.
//!
//! This exists for one purpose — as the *prior* behind a
//! [`StreamingOracle`](crate::StreamingOracle) when starvation should mean
//! **hold position** rather than optimize a synthetic objective. A trainer
//! whose fallback oracle actively pulls toward the prior's minimizer will,
//! at native iteration rates (millions of starved steps per second against
//! thousands of streamed observations), erase everything the stream
//! teaches between arrivals; a flat prior makes starved steps true no-ops,
//! so the model state is shaped by live data alone.
//!
//! `f ≡ 0` is **not** strongly convex, so this oracle sits outside the
//! paper's §3 assumptions: [`Flat::constants`] reports the unit record
//! `(c, L, M²) = (1, 1, 1)` purely to satisfy the interface (`L` and `M²`
//! are valid upper bounds for the zero gradient; `c` is not a valid
//! strong-convexity modulus). Do not feed it to theory predictions —
//! they are meaningless here. It is registered as kind `"flat"`.

use crate::constants::Constants;
use crate::oracle::GradientOracle;
use rand::RngCore;

/// The zero-gradient oracle (`f ≡ 0`, minimizer pinned at the origin).
#[derive(Debug, Clone)]
pub struct Flat {
    minimizer: Vec<f64>,
}

impl Flat {
    /// A flat oracle of dimension `d`.
    ///
    /// # Errors
    ///
    /// Returns an error string when `d` is zero.
    pub fn new(d: usize) -> Result<Self, String> {
        if d == 0 {
            return Err("dimension must be at least 1".to_string());
        }
        Ok(Self {
            minimizer: vec![0.0; d],
        })
    }
}

impl GradientOracle for Flat {
    fn dimension(&self) -> usize {
        self.minimizer.len()
    }

    fn sample_gradient(&self, x: &[f64], _rng: &mut dyn RngCore, out: &mut [f64]) {
        assert_eq!(x.len(), self.minimizer.len(), "x dimension mismatch");
        assert_eq!(out.len(), self.minimizer.len(), "out dimension mismatch");
        out.fill(0.0);
    }

    fn full_gradient(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.minimizer.len(), "x dimension mismatch");
        out.fill(0.0);
    }

    fn objective(&self, _x: &[f64]) -> f64 {
        0.0
    }

    fn minimizer(&self) -> &[f64] {
        &self.minimizer
    }

    fn constants(&self, radius: f64) -> Constants {
        // Interface placeholder; see the module docs. `L` and `M²` are
        // honest (if loose) upper bounds, `c` is not a real modulus.
        Constants::new(1.0, 1.0, 1.0, radius.max(f64::MIN_POSITIVE))
    }

    fn name(&self) -> &str {
        "flat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradients_are_zero_and_consume_no_rng() {
        let o = Flat::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let before = rng.next_u64();
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = vec![9.0; 3];
        o.sample_gradient(&[1.0, -2.0, 3.0], &mut rng, &mut g);
        assert_eq!(g, vec![0.0; 3]);
        o.full_gradient(&[1.0, -2.0, 3.0], &mut g);
        assert_eq!(g, vec![0.0; 3]);
        // The RNG stream is untouched: starved fallback steps through a
        // flat prior cannot perturb a run's determinism.
        assert_eq!(rng.next_u64(), before);
        assert_eq!(o.objective(&[7.0, 7.0, 7.0]), 0.0);
        assert_eq!(o.minimizer(), &[0.0; 3]);
        assert!(o.max_support().is_none(), "flat stays on the dense path");
        assert_eq!(o.name(), "flat");
    }

    #[test]
    fn zero_dimension_is_rejected() {
        assert!(Flat::new(0).is_err());
    }
}
