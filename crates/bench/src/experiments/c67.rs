//! **Corollary 6.7** — failure probability vs the Eq. 13 bound under
//! adversarial contention.
//!
//! Paper claim: with the Eq. 12 learning rate,
//! `P(F_T) ≤ (M² + 4√ε·LM√(τ_max·n)·√d)/(c²εϑT)·plog(e‖x₀−x*‖²/ε)`.
//!
//! Measured: `P̂(F_T)` over trials of lock-free SGD under the bounded-delay
//! adversary, at the horizon `T` where the bound predicts ½; sweeping both
//! the dimension `d` and the delay budget `τ`. The bound must dominate the
//! measured upper CI in every cell.

use crate::ExperimentOutput;
use asgd_core::runner::LockFreeSgd;
use asgd_metrics::table::fmt_f;
use asgd_metrics::{estimate_probability, Table};
use asgd_oracle::GradientOracle;
use asgd_shmem::sched::BoundedDelayAdversary;
use asgd_theory::bounds;
use std::sync::Arc;

/// One cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Model dimension.
    pub d: usize,
    /// Adversary contention budget (stands in for `τ_max`).
    pub tau: u64,
    /// Eq. 12 learning rate.
    pub alpha: f64,
    /// Horizon at which the Eq. 13 bound equals the target.
    pub horizon: u64,
    /// Measured failure probability.
    pub measured: f64,
    /// Upper end of the measurement's 95% CI.
    pub measured_ci_upper: f64,
    /// The Eq. 13 bound at the horizon.
    pub bound: f64,
    /// Whether the bound is consistent with the measurement.
    pub holds: bool,
}

fn cell(d: usize, tau: u64, n: usize, trials: u64, target: f64) -> Cell {
    let sigma = 0.5;
    let oracle = super::quad(d, sigma);
    let radius = 2.0;
    let consts = oracle.constants(radius);
    let eps = 0.04;
    let theta = 1.0;
    let x0_dist_sq = 1.0;
    let alpha = bounds::corollary_6_7_learning_rate(&consts, eps, tau, n, d, theta);
    let horizon = bounds::corollary_6_7_horizon(&consts, eps, tau, n, d, theta, target, x0_dist_sq);
    let bound = bounds::corollary_6_7(&consts, eps, tau, n, d, theta, horizon, x0_dist_sq);
    let est = estimate_probability(trials, 0xC67 ^ (d as u64) ^ (tau << 8), |seed| {
        let x0 = vec![1.0 / (d as f64).sqrt(); d];
        let run = LockFreeSgd::builder(Arc::clone(&oracle))
            .threads(n)
            .iterations(horizon)
            .learning_rate(alpha)
            .initial_point(x0)
            .success_radius_sq(eps)
            .scheduler(BoundedDelayAdversary::new(tau))
            .seed(seed)
            .run();
        run.hit_iteration.is_none()
    });
    Cell {
        d,
        tau,
        alpha,
        horizon,
        measured: est.estimate(),
        measured_ci_upper: est.interval.upper,
        bound,
        holds: est.consistent_with_upper_bound(bound),
    }
}

/// Runs the sweep; returns all cells.
#[must_use]
pub fn sweep(quick: bool) -> Vec<Cell> {
    let n = 4;
    let target = 0.5;
    let (cells, trials): (Vec<(usize, u64)>, u64) = if quick {
        (vec![(2, 8), (8, 8), (4, 32)], 10)
    } else {
        (
            vec![
                (2, 8),
                (4, 8),
                (8, 8),
                (16, 8),
                (4, 4),
                (4, 16),
                (4, 64),
                (4, 256),
            ],
            60,
        )
    };
    cells
        .into_iter()
        .map(|(d, tau)| cell(d, tau, n, trials, target))
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("c67");
    let cells = sweep(quick);
    let mut table = Table::new(
        "Corollary 6.7: P(F_T) under the bounded-delay adversary, Eq.12 rate, bound target 0.5",
        &[
            "d",
            "tau",
            "alpha (Eq.12)",
            "horizon T",
            "P(F_T) measured",
            "CI upper",
            "Eq.13 bound",
            "bound holds",
        ],
    );
    for c in &cells {
        table.row(&[
            c.d.to_string(),
            c.tau.to_string(),
            fmt_f(c.alpha),
            c.horizon.to_string(),
            fmt_f(c.measured),
            fmt_f(c.measured_ci_upper),
            fmt_f(c.bound),
            c.holds.to_string(),
        ]);
    }
    out.tables.push(table);
    let all_hold = cells.iter().all(|c| c.holds);
    out.notes.push(format!(
        "Eq. 13 bound dominates measurement in every cell: {all_hold}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_in_every_cell() {
        for c in sweep(true) {
            assert!(
                c.holds,
                "d={} τ={}: measured {} (CI ≤ {}) vs bound {}",
                c.d, c.tau, c.measured, c.measured_ci_upper, c.bound
            );
        }
    }

    #[test]
    fn horizon_scales_with_tau() {
        let cells = sweep(true);
        let small = cells.iter().find(|c| c.d == 4 && c.tau == 32).unwrap();
        let base = cells.iter().find(|c| c.d == 2 && c.tau == 8).unwrap();
        assert!(
            small.horizon > base.horizon,
            "more contention/dimension needs a longer horizon"
        );
    }
}
