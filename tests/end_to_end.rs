//! End-to-end integration: theory-derived learning rates driving real
//! executions, across the simulator and the native runtime.

use asyncsgd::oracle::MinibatchRegression;
use asyncsgd::prelude::*;
use asyncsgd::theory::bounds;
use std::sync::Arc;

#[test]
fn theory_rate_converges_under_adversary_in_simulator() {
    // Pipeline: workload constants → Eq. 12 rate → Eq. 13 horizon →
    // simulated adversarial execution → the accumulator must hit S within
    // the horizon in most trials (bound target 0.5, so a single seeded run
    // failing is possible; we run a few and require a majority).
    let d = 2;
    let oracle = Arc::new(NoisyQuadratic::new(d, 0.5).expect("valid"));
    let consts = oracle.constants(2.0);
    let (eps, tau, n, theta) = (0.04, 8, 3, 1.0);
    let alpha = bounds::corollary_6_7_learning_rate(&consts, eps, tau, n, d, theta);
    let horizon = bounds::corollary_6_7_horizon(&consts, eps, tau, n, d, theta, 0.5, 1.0);
    let mut hits = 0;
    let trials = 5;
    for seed in 0..trials {
        let run = LockFreeSgd::builder(Arc::clone(&oracle))
            .threads(n)
            .iterations(horizon)
            .learning_rate(alpha)
            .initial_point(vec![(0.5_f64).sqrt(); 2])
            .success_radius_sq(eps)
            .scheduler(BoundedDelayAdversary::new(tau))
            .seed(seed)
            .run();
        if run.hit_iteration.is_some() {
            hits += 1;
        }
    }
    assert!(
        hits * 2 > trials,
        "only {hits}/{trials} runs hit the region"
    );
}

#[test]
fn simulated_and_native_agree_on_serial_trajectories() {
    // One thread, same coin stream: the simulator and the native runtime
    // must produce bit-identical models (both are exactly Eq. 1).
    let d = 3;
    let oracle = Arc::new(NoisyQuadratic::new(d, 0.7).expect("valid"));
    let (alpha, t) = (0.05, 200);
    let x0 = vec![1.0, -1.0, 0.5];

    let sim = LockFreeSgd::builder(Arc::clone(&oracle))
        .threads(1)
        .iterations(t)
        .learning_rate(alpha)
        .initial_point(x0.clone())
        .scheduler(SerialScheduler::new())
        .seed(99)
        .run();

    let native = Hogwild::new(
        Arc::clone(&oracle),
        HogwildConfig {
            threads: 1,
            iterations: t,
            alpha,
            seed: 99,
            success_radius_sq: None,
        },
    )
    .run(&x0);

    for j in 0..d {
        assert_eq!(
            sim.final_model[j].to_bits(),
            native.final_model[j].to_bits(),
            "entry {j}: simulator and native single-thread runs must agree exactly"
        );
    }
}

#[test]
fn full_pipeline_on_every_workload() {
    // Every oracle in the crate trains to a sane distance with the same
    // lock-free simulated setup — the public API is uniform.
    let runs: Vec<(String, f64)> = {
        let mut v = Vec::new();
        let quad = Arc::new(NoisyQuadratic::new(3, 0.2).expect("valid"));
        let sparse = Arc::new(SparseQuadratic::uniform(3, 1.0, 0.2).expect("valid"));
        let linreg = Arc::new(LinearRegression::synthetic(120, 3, 0.05, 5).expect("ok"));
        let logreg = Arc::new(RidgeLogistic::synthetic(120, 3, 0.1, 0.2, 5).expect("ok"));
        let mb = Arc::new(MinibatchRegression::synthetic(120, 3, 0.05, 8, 5).expect("ok"));

        fn go<O: GradientOracle + Clone + 'static>(o: O, alpha: f64, t: u64) -> (String, f64) {
            let d = o.dimension();
            let x0 = o.minimizer().iter().map(|m| m + 0.8).collect::<Vec<_>>();
            let name = o.name().to_string();
            let run = LockFreeSgd::builder(o)
                .threads(2)
                .iterations(t)
                .learning_rate(alpha)
                .initial_point(x0)
                .scheduler(RandomScheduler::new(3))
                .seed(8)
                .run();
            let _ = d;
            (name, run.final_dist_sq)
        }
        v.push(go(quad, 0.03, 4000));
        v.push(go(sparse, 0.03, 6000));
        v.push(go(linreg, 0.03, 4000));
        v.push(go(logreg, 0.05, 6000));
        v.push(go(mb, 0.03, 2000));
        v
    };
    for (name, dist_sq) in runs {
        assert!(
            dist_sq < 0.5,
            "{name}: final dist² {dist_sq} did not improve from 3·0.64 ≈ 1.9"
        );
    }
}

#[test]
fn native_full_sgd_meets_corollary_7_1_budget() {
    let oracle = Arc::new(NoisyQuadratic::new(2, 1.0).expect("valid"));
    let consts = oracle.constants(4.0);
    let (alpha0, n, eps) = (0.25, 2, 0.04);
    let halving = asyncsgd::theory::corollary_7_1::epoch_count(alpha0, &consts, n, eps);
    let report = NativeFullSgd::new(
        Arc::clone(&oracle),
        NativeFullSgdConfig {
            alpha0,
            epoch_iterations: 1_500,
            halving_epochs: halving,
            threads: n,
            seed: 17,
        },
    )
    .run(&[2.0, -2.0]);
    assert!(
        report.dist_to_opt <= eps.sqrt() * 1.5,
        "‖r−x*‖ = {} vs target √ε = {} (1.5x slack for a single seed)",
        report.dist_to_opt,
        eps.sqrt()
    );
}
