//! One module per reproduced paper artifact. See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded outcomes.

pub mod c67;
pub mod c71;
pub mod contention;
pub mod fig1;
pub mod ingest;
pub mod regimes;
pub mod serving;
pub mod serving_net;
pub mod sparse;
pub mod sparse_scaling;
pub mod speedup;
pub mod stepsize;
pub mod t31;
pub mod t51;
pub mod t65;

use asgd_oracle::NoisyQuadratic;
use std::sync::Arc;

/// Standard §5-style quadratic used by several experiments.
#[must_use]
pub fn quad(d: usize, sigma: f64) -> Arc<NoisyQuadratic> {
    Arc::new(NoisyQuadratic::new(d, sigma).expect("valid quadratic workload"))
}

/// Median of a slice (by value); the slice is copied and sorted.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in medians"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn median_empty_panics() {
        let _ = median(&[]);
    }

    #[test]
    fn quad_fixture() {
        let q = quad(3, 0.5);
        assert_eq!(asgd_oracle::GradientOracle::dimension(&q), 3);
    }
}
