//! Topology-aware sharded parameter storage.
//!
//! Nothing in the paper's analysis requires the shared iterate `X` to live
//! in one flat allocation: the adversary model only needs per-entry atomic
//! reads and non-lost `fetch&add`s. At `d = 10M+` a single `Vec<AtomicF64>`
//! leaves locality on the table — every NUMA node and cache slice hammers
//! one arena. This module splits the iterate into contiguous index ranges
//! (*shards*), each backed by its own arena allocation:
//!
//! * [`ShardTopology`] — detected core count and coherency-line size (with
//!   explicit overrides) from which a default shard count is derived;
//! * [`ShardRouter`] — the index→(shard, offset) map. The hot path is
//!   binary-search-free: power-of-two chunk sizes make routing a shift and a
//!   mask. Ragged dimensions that cannot be chunked this way fall back to an
//!   exact range table walked by binary search;
//! * [`ShardedVec`] — a generic routed arena container (the sharded twin of
//!   a `Vec<T>`), reused by [`GuardedModel`](crate::GuardedModel) for its
//!   epoch-tagged words;
//! * [`ShardedModel`] — the `AtomicF64` store behind the router, plus one
//!   cache-line-padded update counter per shard. Every applied `fetch&add`
//!   bumps its shard's counter, so the counters are a *measured* per-range
//!   update rate — the per-shard τ a delay-adaptive backend can consume —
//!   and [`ShardedModel::coherent_update_counts`] reads them as an
//!   instantaneous cross-shard vector via double-collect validation. The
//!   serving tier's stats-scrape mirrors these counters into the
//!   process-wide telemetry registry (`asgd-telemetry`) as
//!   `asgd_shard_updates_total{model=…,shard=…}` counters plus derived
//!   `asgd_shard_update_rate` and `asgd_shard_claim_gap` gauges, and the
//!   registry's snapshot uses this same double-collect protocol;
//! * [`ParamStore`] — the executor-facing enum over the flat
//!   [`SharedModel`] and the sharded store. Enum dispatch costs one
//!   predictable branch next to the atomic op it guards, and spares every
//!   claim loop a generics explosion.
//!
//! Values are bit-identical across stores by construction: routing never
//! changes *which* `AtomicF64` cell an index denotes, only where the cell
//! lives, so a 1-shard `ShardedModel` and a `SharedModel` perform the exact
//! same reads and CAS loops in the exact same order.

use crate::atomic::{AtomicF64, CacheAligned};
use crate::model::{SharedModel, UpdateOrder};
use crate::tuning::{ExecTuning, ShardPolicy};
use asgd_oracle::ModelView;
use std::sync::atomic::{AtomicU64, Ordering};

/// Detected (or overridden) machine topology the default shard count is
/// derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTopology {
    /// Available cores (≥ 1).
    pub cores: usize,
    /// Coherency line size in bytes (≥ 8).
    pub cache_line: usize,
}

impl ShardTopology {
    /// Detects the topology: cores from `available_parallelism`, line size
    /// from sysfs on Linux (64 bytes when unreadable — correct for every
    /// current x86-64 part).
    #[must_use]
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let cache_line = std::fs::read_to_string(
            "/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size",
        )
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&b| b >= 8)
        .unwrap_or(64);
        Self { cores, cache_line }
    }

    /// Explicit override of both parameters (clamped to their minima).
    #[must_use]
    pub fn with(cores: usize, cache_line: usize) -> Self {
        Self {
            cores: cores.max(1),
            cache_line: cache_line.max(8),
        }
    }

    /// The default shard count for a `d`-dimensional model: one shard per
    /// core rounded up to a power of two (shift-and-mask routing), but never
    /// so many that a shard would span less than one coherency line of
    /// entries — at tiny `d` sharding cannot beat the padded flat layout and
    /// collapses to a single shard.
    #[must_use]
    pub fn auto_shards(&self, d: usize) -> usize {
        let per_line = (self.cache_line / std::mem::size_of::<f64>()).max(1);
        let max_shards = (d / per_line).max(1);
        // Round the cap *down* to a power of two so every shard keeps at
        // least a line of entries.
        let cap = if max_shards.is_power_of_two() {
            max_shards
        } else {
            max_shards.next_power_of_two() / 2
        };
        self.cores.next_power_of_two().min(cap)
    }
}

/// The index→(shard, offset) map.
///
/// [`ShardRouter::pow2`] covers every production store: chunk sizes are
/// powers of two, so routing entry `j` is `j >> shift` and `j & mask` — no
/// table, no branch, no search — with the final shard allowed to be ragged
/// (shorter than the chunk) when `d` is not a multiple. [`ShardRouter::
/// ranged`] is the exact fallback for arbitrary contiguous partitions
/// (balanced non-power-of-two shard counts, adversarial test partitions):
/// a sorted bound table routed by `partition_point` binary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardRouter {
    /// Shift-and-mask routing over power-of-two chunks.
    Pow2 {
        /// `log2` of the chunk size.
        shift: u32,
        /// `chunk − 1`, the offset mask.
        mask: usize,
        /// Shard count (= `ceil(d / chunk)`).
        shards: usize,
        /// Total dimension.
        d: usize,
    },
    /// Exact contiguous ranges: `bounds[s] .. bounds[s + 1]` is shard `s`.
    Ranged {
        /// `shards + 1` strictly increasing bounds; first `0`, last `d`.
        bounds: Vec<usize>,
    },
}

impl ShardRouter {
    /// A power-of-two router splitting `d` entries into at most `shards`
    /// chunks (clamped to `1..=d`). The chunk is `ceil(d / shards)` rounded
    /// up to a power of two, so the realised shard count can be lower than
    /// requested when rounding swallows a chunk; the last shard is ragged
    /// when `d` is not a chunk multiple.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn pow2(d: usize, shards: usize) -> Self {
        assert!(d > 0, "cannot route an empty model");
        let shards = shards.clamp(1, d);
        let chunk = d.div_ceil(shards).next_power_of_two();
        Self::Pow2 {
            shift: chunk.trailing_zeros(),
            mask: chunk - 1,
            shards: d.div_ceil(chunk),
            d,
        }
    }

    /// An exact-range router over the given bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `bounds` starts at 0, ends at `d > 0`, and is strictly
    /// increasing (every shard non-empty).
    #[must_use]
    pub fn ranged(bounds: Vec<usize>) -> Self {
        assert!(bounds.len() >= 2, "need at least one range");
        assert_eq!(bounds[0], 0, "ranges must start at 0");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "range bounds must be strictly increasing"
        );
        Self::Ranged { bounds }
    }

    /// A router with `shards` balanced contiguous ranges (sizes differing by
    /// at most one): power-of-two routing when the balanced chunk is exactly
    /// a power of two, the exact-range fallback otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn balanced(d: usize, shards: usize) -> Self {
        assert!(d > 0, "cannot route an empty model");
        let shards = shards.clamp(1, d);
        let chunk = d.div_ceil(shards);
        if chunk.is_power_of_two() && d.div_ceil(chunk) == shards {
            return Self::pow2(d, shards);
        }
        let (base, extra) = (d / shards, d % shards);
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut at = 0;
        bounds.push(0);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            bounds.push(at);
        }
        Self::ranged(bounds)
    }

    /// Total dimension routed.
    #[must_use]
    pub fn dimension(&self) -> usize {
        match self {
            Self::Pow2 { d, .. } => *d,
            Self::Ranged { bounds } => *bounds.last().expect("validated non-empty"),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        match self {
            Self::Pow2 { shards, .. } => *shards,
            Self::Ranged { bounds } => bounds.len() - 1,
        }
    }

    /// Routes entry `j` to `(shard, offset)`.
    ///
    /// # Panics
    ///
    /// May panic (or return an out-of-range shard) if `j ≥ d`; arena lookups
    /// bounds-check downstream.
    #[inline]
    #[must_use]
    pub fn route(&self, j: usize) -> (usize, usize) {
        match self {
            Self::Pow2 { shift, mask, .. } => (j >> shift, j & mask),
            Self::Ranged { bounds } => {
                let s = bounds.partition_point(|&b| b <= j) - 1;
                (s, j - bounds[s])
            }
        }
    }

    /// The index range shard `s` covers.
    ///
    /// # Panics
    ///
    /// Panics if `s ≥ shard_count()`.
    #[must_use]
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        match self {
            Self::Pow2 {
                shift, shards, d, ..
            } => {
                assert!(s < *shards, "shard {s} out of range");
                (s << shift)..(((s + 1) << shift).min(*d))
            }
            Self::Ranged { bounds } => bounds[s]..bounds[s + 1],
        }
    }
}

/// A `Vec<T>` split into per-shard arena allocations behind a
/// [`ShardRouter`]. Indexing cost is one route plus one bounds-checked
/// arena access; iteration walks the shards in index order.
#[derive(Debug)]
pub struct ShardedVec<T> {
    router: ShardRouter,
    arenas: Vec<Box<[T]>>,
}

impl<T> ShardedVec<T> {
    /// Builds the container, initialising entry `j` with `init(j)` (arenas
    /// are filled shard by shard, i.e. in index order).
    #[must_use]
    pub fn from_fn(router: ShardRouter, mut init: impl FnMut(usize) -> T) -> Self {
        let arenas = (0..router.shard_count())
            .map(|s| router.range(s).map(&mut init).collect())
            .collect();
        Self { router, arenas }
    }

    /// Total element count.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.router.dimension()
    }

    /// The routing map.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Routed access to entry `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ dimension()`.
    #[inline]
    #[must_use]
    pub fn get(&self, j: usize) -> &T {
        let (s, off) = self.router.route(j);
        &self.arenas[s][off]
    }

    /// One shard's contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn shard(&self, s: usize) -> &[T] {
        &self.arenas[s]
    }

    /// All entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.arenas.iter().flat_map(|a| a.iter())
    }
}

impl<'a, T> IntoIterator for &'a ShardedVec<T> {
    type Item = &'a T;
    type IntoIter = std::iter::FlatMap<
        std::slice::Iter<'a, Box<[T]>>,
        std::slice::Iter<'a, T>,
        fn(&'a Box<[T]>) -> std::slice::Iter<'a, T>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.arenas.iter().flat_map(|a| a.iter())
    }
}

/// How many times [`ShardedModel::coherent_update_counts`] re-collects
/// before settling for the (still per-entry-atomic) last collect.
const COHERENT_RETRIES: usize = 16;

/// The sharded `AtomicF64` parameter store: per-shard arenas behind a
/// [`ShardRouter`], plus one cache-line-padded update counter per shard.
///
/// Access semantics are identical to [`SharedModel`] — per-entry atomic
/// reads, CAS-loop `fetch&add` — with one addition: every applied
/// `fetch&add` bumps its shard's counter (relaxed; the counter is a
/// monotone progress observation, not a synchronisation edge). The counters
/// are the measured per-range update rate τ.
#[derive(Debug)]
pub struct ShardedModel {
    entries: ShardedVec<AtomicF64>,
    counters: Vec<CacheAligned<AtomicU64>>,
    order: UpdateOrder,
}

impl ShardedModel {
    /// Creates a store initialised to `x0` behind an explicit router.
    ///
    /// # Panics
    ///
    /// Panics if the router's dimension differs from `x0.len()`.
    #[must_use]
    pub fn with_router(x0: &[f64], router: ShardRouter, order: UpdateOrder) -> Self {
        assert_eq!(router.dimension(), x0.len(), "router dimension mismatch");
        let entries = ShardedVec::from_fn(router, |j| AtomicF64::new(x0[j]));
        let counters = (0..entries.router().shard_count())
            .map(|_| CacheAligned(AtomicU64::new(0)))
            .collect();
        Self {
            entries,
            counters,
            order,
        }
    }

    /// Creates a store initialised to `x0` with at most `shards` power-of-two
    /// chunked ranges — always shift-and-mask routing, never the exact-range
    /// binary search (whose per-access bounds loads serialise address
    /// generation against the atomics and halve random-access throughput at
    /// DRAM-resident `d`). Chunk rounding can realise fewer shards than
    /// requested; [`ShardedModel::shard_count`] reports the realised count.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    #[must_use]
    pub fn with_options(x0: &[f64], shards: usize, order: UpdateOrder) -> Self {
        Self::with_router(x0, ShardRouter::pow2(x0.len(), shards), order)
    }

    /// A zero store of dimension `d` (power-of-two chunked, like
    /// [`ShardedModel::with_options`]), without materialising a temporary
    /// `vec![0.0; d]`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn zeros_with(d: usize, shards: usize, order: UpdateOrder) -> Self {
        let router = ShardRouter::pow2(d, shards);
        let entries = ShardedVec::from_fn(router, |_| AtomicF64::new(0.0));
        let counters = (0..entries.router().shard_count())
            .map(|_| CacheAligned(AtomicU64::new(0)))
            .collect();
        Self {
            entries,
            counters,
            order,
        }
    }

    /// Model dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.entries.dimension()
    }

    /// The routing map.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        self.entries.router()
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.counters.len()
    }

    /// The update ordering this store was built with.
    #[must_use]
    pub fn order(&self) -> UpdateOrder {
        self.order
    }

    /// Atomically reads entry `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[inline]
    #[must_use]
    pub fn read(&self, j: usize) -> f64 {
        let e = self.entries.get(j);
        match self.order {
            UpdateOrder::SeqCst => e.load(),
            UpdateOrder::Relaxed => e.load_relaxed(),
        }
    }

    /// Entry-by-entry inconsistent view scan, walking the shards in index
    /// order (identical read order to the flat store's scan).
    ///
    /// # Panics
    ///
    /// Panics if `view.len() != d`.
    pub fn read_view(&self, view: &mut [f64]) {
        assert_eq!(view.len(), self.dimension(), "view dimension mismatch");
        let mut at = 0;
        for s in 0..self.shard_count() {
            for e in self.entries.shard(s) {
                view[at] = match self.order {
                    UpdateOrder::SeqCst => e.load(),
                    UpdateOrder::Relaxed => e.load_relaxed(),
                };
                at += 1;
            }
        }
    }

    /// Atomic `fetch&add` on entry `j`, returning the prior value and
    /// bumping the owning shard's update counter.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[inline]
    pub fn fetch_add(&self, j: usize, delta: f64) -> f64 {
        let (s, prev) = self.fetch_add_uncounted(j, delta);
        self.counters[s].0.fetch_add(1, Ordering::Relaxed);
        prev
    }

    /// Atomic `fetch&add` on entry `j` *without* bumping the shard counter,
    /// returning the owning shard and the prior value.
    ///
    /// The building block for [`StoreWriter`]'s batched accounting: the
    /// counter bump is a second lock-prefixed RMW next to the entry CAS and
    /// roughly doubles the cost of a cache-hot sparse update, so hot claim
    /// loops count locally and credit shards in bulk. Callers take on the
    /// obligation to [`credit_updates`](ShardedModel::credit_updates) the
    /// returned shard, or the counters undercount forever.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[inline]
    pub fn fetch_add_uncounted(&self, j: usize, delta: f64) -> (usize, f64) {
        let (s, off) = self.entries.router().route(j);
        let e = &self.entries.shard(s)[off];
        let prev = match self.order {
            UpdateOrder::SeqCst => e.fetch_add(delta),
            UpdateOrder::Relaxed => e.fetch_add_relaxed(delta),
        };
        (s, prev)
    }

    /// Credits `n` applied updates to shard `s`'s counter in one atomic add
    /// — the flush half of [`StoreWriter`]'s batched accounting.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn credit_updates(&self, s: usize, n: u64) {
        self.counters[s].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Atomically overwrites entry `j` (epoch initialisation only — not an
    /// SGD update, so the shard counter is untouched).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn write(&self, j: usize, value: f64) {
        self.entries.get(j).store(value);
    }

    /// Snapshots the store into a fresh vector (see
    /// [`SharedModel::snapshot`] for the consistency caveat).
    #[must_use]
    pub fn snapshot(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dimension()];
        self.read_view(&mut out);
        out
    }

    /// Updates applied to shard `s` so far (monotone, relaxed read).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn shard_updates(&self, s: usize) -> u64 {
        self.counters[s].0.load(Ordering::Relaxed)
    }

    /// Total updates applied across all shards (sum of per-shard counters;
    /// each counter read is atomic, the sum is not an instantaneous state —
    /// use [`ShardedModel::coherent_update_counts`] for that).
    #[must_use]
    pub fn total_updates(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.0.load(Ordering::Acquire))
            .sum()
    }

    /// Reads the per-shard update counters as an *instantaneous* vector via
    /// double-collect validation: collect all counters, collect again — if
    /// the two collects are equal, no counter moved between its two reads,
    /// so (counters being monotone) the vector is a state the store actually
    /// passed through. Retries a bounded number of times under churn and
    /// then returns `false` with the last collect (each entry still
    /// individually atomic, the cross-shard cut possibly torn).
    ///
    /// This is the read side snapshot tagging needs: summing a torn collect
    /// can attribute updates to a progress tag that never existed. The
    /// protocol (and a seeded split-read twin) is model-checked in
    /// `asgd-chaos` (`ShardedCounterModel`).
    pub fn coherent_update_counts(&self, out: &mut Vec<u64>) -> bool {
        let n = self.shard_count();
        out.clear();
        out.extend((0..n).map(|s| self.counters[s].0.load(Ordering::Acquire)));
        for _ in 0..COHERENT_RETRIES {
            let mut stable = true;
            for (seen, counter) in out.iter_mut().zip(&self.counters) {
                let again = counter.0.load(Ordering::Acquire);
                if again != *seen {
                    *seen = again;
                    stable = false;
                }
            }
            if stable {
                return true;
            }
        }
        false
    }
}

/// Per-entry reads for sparse oracles — one atomic load per call, routed.
impl ModelView for ShardedModel {
    fn dimension(&self) -> usize {
        self.dimension()
    }

    fn entry(&self, j: usize) -> f64 {
        self.read(j)
    }
}

/// The executor-facing parameter store: flat or sharded, one type.
///
/// Native claim loops hold a `ParamStore` and stay oblivious to the storage
/// topology; the enum dispatch is a predictable branch next to an atomic
/// operation that costs an order of magnitude more. Constructed from
/// [`ExecTuning`] so every executor resolves the shard policy identically.
#[derive(Debug)]
pub enum ParamStore {
    /// The flat store (compact or padded layout).
    Flat(SharedModel),
    /// The sharded store.
    Sharded(ShardedModel),
}

impl ParamStore {
    /// Builds the store `tuning` asks for, initialised to `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty and sharding was requested.
    #[must_use]
    pub fn with_tuning(x0: &[f64], tuning: &ExecTuning) -> Self {
        match tuning.shards.resolve(x0.len()) {
            None => Self::Flat(SharedModel::with_options(x0, tuning.layout, tuning.order)),
            Some(shards) => Self::Sharded(ShardedModel::with_options(x0, shards, tuning.order)),
        }
    }

    /// A zero store of dimension `d` per `tuning`, without a temporary
    /// `vec![0.0; d]`.
    #[must_use]
    pub fn zeros_with_tuning(d: usize, tuning: &ExecTuning) -> Self {
        match tuning.shards.resolve(d) {
            None => Self::Flat(SharedModel::zeros_with(d, tuning.layout, tuning.order)),
            Some(shards) => Self::Sharded(ShardedModel::zeros_with(d, shards, tuning.order)),
        }
    }

    /// Model dimension `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        match self {
            Self::Flat(m) => m.dimension(),
            Self::Sharded(m) => m.dimension(),
        }
    }

    /// Shard count (1 for the flat store).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        match self {
            Self::Flat(_) => 1,
            Self::Sharded(m) => m.shard_count(),
        }
    }

    /// The sharded store, when this is one.
    #[must_use]
    pub fn sharded(&self) -> Option<&ShardedModel> {
        match self {
            Self::Flat(_) => None,
            Self::Sharded(m) => Some(m),
        }
    }

    /// Atomically reads entry `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[inline]
    #[must_use]
    pub fn read(&self, j: usize) -> f64 {
        match self {
            Self::Flat(m) => m.read(j),
            Self::Sharded(m) => m.read(j),
        }
    }

    /// Entry-by-entry inconsistent view scan (Algorithm 1 line 4).
    ///
    /// # Panics
    ///
    /// Panics if `view.len() != d`.
    pub fn read_view(&self, view: &mut [f64]) {
        match self {
            Self::Flat(m) => m.read_view(view),
            Self::Sharded(m) => m.read_view(view),
        }
    }

    /// Atomic `fetch&add` on entry `j`, returning the prior value.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[inline]
    pub fn fetch_add(&self, j: usize, delta: f64) -> f64 {
        match self {
            Self::Flat(m) => m.fetch_add(j, delta),
            Self::Sharded(m) => m.fetch_add(j, delta),
        }
    }

    /// Atomically overwrites entry `j` (epoch initialisation only).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn write(&self, j: usize, value: f64) {
        match self {
            Self::Flat(m) => m.write(j, value),
            Self::Sharded(m) => m.write(j, value),
        }
    }

    /// Snapshots the store into a fresh vector.
    #[must_use]
    pub fn snapshot(&self) -> Vec<f64> {
        match self {
            Self::Flat(m) => m.snapshot(),
            Self::Sharded(m) => m.snapshot(),
        }
    }

    /// Streaming `‖X − y‖²`: per-entry atomic reads accumulated in index
    /// order — bit-identical to `l2_dist_sq(&view, y)` over a freshly read
    /// view, with no O(d) scratch materialised. This is what the sparse
    /// claim loops' strided success/metrics samples use.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != d`.
    #[must_use]
    pub fn dist_sq_to(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.dimension(), "dist_sq_to dimension mismatch");
        y.iter()
            .enumerate()
            .map(|(j, &b)| {
                let a = self.read(j);
                (a - b) * (a - b)
            })
            .sum()
    }
}

/// Per-entry reads for sparse oracles — one atomic load per call.
impl ModelView for ParamStore {
    fn dimension(&self) -> usize {
        self.dimension()
    }

    fn entry(&self, j: usize) -> f64 {
        self.read(j)
    }
}

/// Updates a [`StoreWriter`] buffers before crediting shard counters in
/// bulk. Mid-run counter observations therefore lag the applied updates by
/// at most `COUNTER_FLUSH − 1` per worker — a bounded, monotone skew that
/// observability reads (`ModelReader::shard_updates`, snapshot progress
/// tags) absorb by design; quiescent totals are exact because every writer
/// flushes on drop.
const COUNTER_FLUSH: u32 = 64;

/// A per-worker write handle over a [`ParamStore`] that batches shard
/// counter bumps.
///
/// [`ShardedModel::fetch_add`] pays a second lock-prefixed RMW (the shard
/// counter) next to every entry CAS — measurable against the flat store on
/// the O(Δ) sparse path, where the entry CAS is the whole iteration. Claim
/// loops instead route updates through a `StoreWriter`: entries update
/// atomically as always, while counts accumulate in a plain local table
/// credited to the shared counters every `COUNTER_FLUSH` (64) updates and on
/// drop. Values are untouched — bit-identity across stores is unaffected —
/// and counters stay monotone with bounded lag, exact at quiescence.
///
/// For a flat store the writer is a zero-cost passthrough.
#[derive(Debug)]
pub struct StoreWriter<'a> {
    store: &'a ParamStore,
    /// Locally accumulated per-shard bump counts (empty for flat stores).
    pending: Vec<u32>,
    /// Total buffered bumps since the last flush.
    buffered: u32,
}

impl<'a> StoreWriter<'a> {
    /// A writer over `store`.
    #[must_use]
    pub fn new(store: &'a ParamStore) -> Self {
        let shards = match store {
            ParamStore::Flat(_) => 0,
            ParamStore::Sharded(m) => m.shard_count(),
        };
        Self {
            store,
            pending: vec![0; shards],
            buffered: 0,
        }
    }

    /// Atomic `fetch&add` on entry `j`, returning the prior value; the
    /// shard counter credit is buffered.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[inline]
    pub fn fetch_add(&mut self, j: usize, delta: f64) -> f64 {
        match self.store {
            ParamStore::Flat(m) => m.fetch_add(j, delta),
            ParamStore::Sharded(m) => {
                let (s, prev) = m.fetch_add_uncounted(j, delta);
                self.pending[s] += 1;
                self.buffered += 1;
                if self.buffered >= COUNTER_FLUSH {
                    self.flush();
                }
                prev
            }
        }
    }

    /// Credits every buffered bump to its shard's counter now.
    pub fn flush(&mut self) {
        if self.buffered == 0 {
            return;
        }
        if let ParamStore::Sharded(m) = self.store {
            for (s, n) in self.pending.iter_mut().enumerate() {
                if *n > 0 {
                    m.credit_updates(s, u64::from(*n));
                    *n = 0;
                }
            }
        }
        self.buffered = 0;
    }
}

impl Drop for StoreWriter<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl ShardPolicy {
    /// Resolves the policy to a *requested* shard count for a
    /// `d`-dimensional model: `None` keeps the flat store, `Some(n)` builds
    /// a sharded one with at most `n` power-of-two chunks (clamped to
    /// `1..=d`; chunk rounding can realise fewer — see
    /// [`ShardRouter::pow2`]).
    #[must_use]
    pub fn resolve(self, d: usize) -> Option<usize> {
        match self {
            Self::Flat => None,
            Self::Auto => Some(ShardTopology::detect().auto_shards(d)),
            Self::Fixed(n) => Some(n.clamp(1, d.max(1))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelLayout;

    #[test]
    fn topology_detection_and_overrides() {
        let t = ShardTopology::detect();
        assert!(t.cores >= 1);
        assert!(t.cache_line >= 8);
        let o = ShardTopology::with(0, 0);
        assert_eq!((o.cores, o.cache_line), (1, 8));
    }

    #[test]
    fn auto_shards_respects_dimension_and_cores() {
        let t = ShardTopology::with(8, 64);
        assert_eq!(t.auto_shards(1 << 20), 8, "plenty of entries: one/core");
        assert_eq!(t.auto_shards(4), 1, "d below one line: single shard");
        assert_eq!(t.auto_shards(17), 2, "17 entries = 2 full lines");
        let many = ShardTopology::with(6, 64);
        assert_eq!(many.auto_shards(1 << 20), 8, "cores round up to pow2");
    }

    #[test]
    fn pow2_router_routes_every_index_to_its_range() {
        for (d, shards) in [(16, 4), (100, 4), (1, 1), (10, 3), (1 << 20, 8)] {
            let r = ShardRouter::pow2(d, shards);
            assert_eq!(r.dimension(), d);
            let n = r.shard_count();
            assert!(n >= 1 && n <= shards, "d={d} requested={shards} got={n}");
            let mut covered = 0;
            for s in 0..n {
                let range = r.range(s);
                assert_eq!(range.start, covered, "ranges contiguous");
                assert!(!range.is_empty(), "shard {s} empty at d={d}");
                for j in range.clone() {
                    assert_eq!(r.route(j), (s, j - range.start), "d={d} j={j}");
                }
                covered = range.end;
            }
            assert_eq!(covered, d, "ranges cover the dimension");
        }
    }

    #[test]
    fn ranged_router_handles_uneven_partitions() {
        let r = ShardRouter::ranged(vec![0, 3, 4, 10]);
        assert_eq!(r.shard_count(), 3);
        assert_eq!(r.dimension(), 10);
        assert_eq!(r.route(0), (0, 0));
        assert_eq!(r.route(2), (0, 2));
        assert_eq!(r.route(3), (1, 0));
        assert_eq!(r.route(4), (2, 0));
        assert_eq!(r.route(9), (2, 5));
        assert_eq!(r.range(1), 3..4);
    }

    #[test]
    fn balanced_router_prefers_pow2() {
        assert!(matches!(
            ShardRouter::balanced(1 << 16, 4),
            ShardRouter::Pow2 { .. }
        ));
        // chunk = ceil(10/3) = 4 is a power of two yielding exactly 3
        // shards, so even this ragged dimension routes shift-and-mask.
        let ten = ShardRouter::balanced(10, 3);
        assert!(matches!(ten, ShardRouter::Pow2 { .. }));
        assert_eq!(ten.shard_count(), 3);
        assert_eq!(ten.range(2), 8..10, "last shard ragged");
        // chunk = ceil(11/2) = 6 is not a power of two: exact-range fallback
        // with balanced sizes differing by at most one.
        let ragged = ShardRouter::balanced(11, 2);
        assert!(matches!(ragged, ShardRouter::Ranged { .. }));
        assert_eq!(ragged.shard_count(), 2);
        assert_eq!(ragged.range(0), 0..6);
        assert_eq!(ragged.range(1), 6..11);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn ranged_router_rejects_empty_shards() {
        let _ = ShardRouter::ranged(vec![0, 5, 5, 10]);
    }

    #[test]
    fn sharded_vec_orders_entries_like_a_flat_vec() {
        let r = ShardRouter::balanced(11, 3);
        let v = ShardedVec::from_fn(r, |j| j * 10);
        assert_eq!(v.dimension(), 11);
        for j in 0..11 {
            assert_eq!(*v.get(j), j * 10);
        }
        let flat: Vec<usize> = v.iter().copied().collect();
        assert_eq!(flat, (0..11).map(|j| j * 10).collect::<Vec<_>>());
        let by_ref: Vec<usize> = (&v).into_iter().copied().collect();
        assert_eq!(by_ref, flat);
    }

    #[test]
    fn sharded_model_matches_flat_semantics() {
        let x0: Vec<f64> = (0..37).map(|j| f64::from(j as u32) - 18.0).collect();
        for shards in [1, 2, 3, 8] {
            for order in [UpdateOrder::SeqCst, UpdateOrder::Relaxed] {
                let flat = SharedModel::with_options(&x0, ModelLayout::Compact, order);
                let sharded = ShardedModel::with_options(&x0, shards, order);
                assert_eq!(sharded.order(), order);
                for j in 0..x0.len() {
                    assert_eq!(
                        flat.fetch_add(j, 0.25).to_bits(),
                        sharded.fetch_add(j, 0.25).to_bits()
                    );
                }
                flat.write(5, -1.0);
                sharded.write(5, -1.0);
                let (a, b) = (flat.snapshot(), sharded.snapshot());
                for (j, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "entry {j} ({shards} shards)");
                }
                let mut view = vec![0.0; x0.len()];
                sharded.read_view(&mut view);
                assert_eq!(view, b);
            }
        }
    }

    #[test]
    fn per_shard_counters_track_applied_updates() {
        let m = ShardedModel::zeros_with(16, 4, UpdateOrder::SeqCst);
        assert_eq!(m.shard_count(), 4);
        m.fetch_add(0, 1.0);
        m.fetch_add(3, 1.0);
        m.fetch_add(4, 1.0);
        m.fetch_add(15, 1.0);
        m.write(8, 9.0); // writes are init, not updates
        assert_eq!(m.shard_updates(0), 2);
        assert_eq!(m.shard_updates(1), 1);
        assert_eq!(m.shard_updates(2), 0);
        assert_eq!(m.shard_updates(3), 1);
        assert_eq!(m.total_updates(), 4);
        let mut counts = Vec::new();
        assert!(m.coherent_update_counts(&mut counts), "quiescent: coherent");
        assert_eq!(counts, vec![2, 1, 0, 1]);
    }

    #[test]
    fn coherent_counts_are_instantaneous_under_churn() {
        use std::sync::atomic::AtomicBool;
        let m = ShardedModel::zeros_with(64, 4, UpdateOrder::SeqCst);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut j = 0;
                while !stop.load(Ordering::Relaxed) {
                    m.fetch_add(j % 64, 1.0);
                    j += 1;
                }
            });
            let mut counts = Vec::new();
            for _ in 0..200 {
                let coherent = m.coherent_update_counts(&mut counts);
                assert_eq!(counts.len(), 4);
                // A validated collect's total can never exceed a later total
                // (monotonicity of an instantaneous state).
                if coherent {
                    let total: u64 = counts.iter().sum();
                    assert!(total <= m.total_updates());
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn store_writer_batches_counter_credits_and_flushes_on_drop() {
        let x0 = vec![0.0; 16];
        let tuning = ExecTuning {
            shards: ShardPolicy::Fixed(4),
            ..ExecTuning::default()
        };
        let store = ParamStore::with_tuning(&x0, &tuning);
        let sharded = store.sharded().expect("sharded store");
        {
            let mut w = StoreWriter::new(&store);
            // Values land immediately; counter credits are buffered.
            assert_eq!(w.fetch_add(0, 1.0), 0.0);
            assert_eq!(w.fetch_add(0, 1.0), 1.0);
            assert_eq!(w.fetch_add(15, 2.0), 0.0);
            assert_eq!(store.read(0), 2.0);
            assert_eq!(store.read(15), 2.0);
            assert_eq!(sharded.total_updates(), 0, "credits still buffered");
            w.flush();
            assert_eq!(sharded.shard_updates(0), 2);
            assert_eq!(sharded.shard_updates(3), 1);
            w.fetch_add(4, 1.0);
            // Dropped without an explicit flush: the drop flushes.
        }
        assert_eq!(sharded.shard_updates(1), 1);
        assert_eq!(sharded.total_updates(), 4);
    }

    #[test]
    fn store_writer_crosses_the_flush_threshold_mid_stream() {
        let store = ParamStore::Sharded(ShardedModel::zeros_with(8, 2, UpdateOrder::SeqCst));
        let sharded = store.sharded().unwrap();
        let mut w = StoreWriter::new(&store);
        for i in 0..200 {
            w.fetch_add(i % 8, 1.0);
        }
        // 200 = 3 × 64 + 8: three threshold flushes have happened, the tail
        // is still buffered — mid-run observations lag by less than one
        // flush window.
        assert_eq!(sharded.total_updates(), 192);
        drop(w);
        assert_eq!(sharded.total_updates(), 200);
        assert_eq!(sharded.shard_updates(0), 100);
        assert_eq!(sharded.shard_updates(1), 100);
    }

    #[test]
    fn store_writer_is_a_passthrough_for_flat_stores() {
        let store = ParamStore::Flat(SharedModel::zeros(4));
        let mut w = StoreWriter::new(&store);
        assert_eq!(w.fetch_add(2, 3.0), 0.0);
        w.flush();
        assert_eq!(store.read(2), 3.0);
    }

    #[test]
    fn param_store_dispatches_both_variants() {
        let x0 = [1.0, 2.0, 3.0, 4.0];
        let tuning = ExecTuning::default();
        let flat = ParamStore::with_tuning(&x0, &tuning);
        assert!(flat.sharded().is_none());
        assert_eq!(flat.shard_count(), 1);
        let sharded = ParamStore::with_tuning(
            &x0,
            &ExecTuning {
                shards: ShardPolicy::Fixed(2),
                ..tuning
            },
        );
        assert_eq!(sharded.shard_count(), 2);
        assert!(sharded.sharded().is_some());
        for store in [&flat, &sharded] {
            assert_eq!(store.dimension(), 4);
            assert_eq!(store.read(2), 3.0);
            assert_eq!(store.fetch_add(2, 1.0), 3.0);
            store.write(0, 0.5);
            let mut view = vec![0.0; 4];
            store.read_view(&mut view);
            assert_eq!(view, store.snapshot());
            let view_ref: &dyn ModelView = store;
            assert_eq!(view_ref.entry(1), 2.0);
        }
        let zeros = ParamStore::zeros_with_tuning(
            6,
            &ExecTuning {
                shards: ShardPolicy::Fixed(3),
                ..tuning
            },
        );
        assert_eq!(zeros.snapshot(), vec![0.0; 6]);
    }

    #[test]
    fn dist_sq_streams_bit_identically_to_the_dense_scan() {
        let x0: Vec<f64> = (0..23).map(|j| (f64::from(j as u32)).sin()).collect();
        let y: Vec<f64> = (0..23).map(|j| (f64::from(j as u32)).cos()).collect();
        let store = ParamStore::with_tuning(
            &x0,
            &ExecTuning {
                shards: ShardPolicy::Fixed(5),
                ..ExecTuning::default()
            },
        );
        let mut view = vec![0.0; 23];
        store.read_view(&mut view);
        let dense = asgd_math::vec::l2_dist_sq(&view, &y);
        assert_eq!(store.dist_sq_to(&y).to_bits(), dense.to_bits());
    }

    #[test]
    fn shard_policy_resolution() {
        assert_eq!(ShardPolicy::Flat.resolve(1 << 20), None);
        assert_eq!(ShardPolicy::Fixed(4).resolve(1 << 20), Some(4));
        assert_eq!(ShardPolicy::Fixed(0).resolve(8), Some(1), "clamps up");
        assert_eq!(ShardPolicy::Fixed(64).resolve(8), Some(8), "clamps to d");
        let auto = ShardPolicy::Auto.resolve(1 << 20).expect("auto shards");
        assert!(auto >= 1 && auto.is_power_of_two());
    }

    #[test]
    fn one_shard_store_is_bit_identical_to_flat_under_concurrency() {
        // Same claim schedule isn't needed: with powers of two every
        // interleaving produces the same exact sum per entry.
        let flat = SharedModel::zeros(8);
        let sharded = ShardedModel::zeros_with(8, 1, UpdateOrder::SeqCst);
        std::thread::scope(|s| {
            for t in 0..4 {
                let (flat, sharded) = (&flat, &sharded);
                s.spawn(move || {
                    let delta = 2.0_f64.powi(t);
                    for j in 0..8 {
                        for _ in 0..1000 {
                            flat.fetch_add(j, delta);
                            sharded.fetch_add(j, delta);
                        }
                    }
                });
            }
        });
        for j in 0..8 {
            assert_eq!(flat.read(j).to_bits(), sharded.read(j).to_bits());
        }
        assert_eq!(sharded.total_updates(), 4 * 8 * 1000);
    }
}
