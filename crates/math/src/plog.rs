//! The paper's piecewise logarithm (Lemma 6.6).
//!
//! ```text
//! plog(x) = log(e·x)  if x ≥ 1
//!         = x          if x ≤ 1
//! ```
//!
//! `plog` appears in every failure-probability bound of the paper (Theorems
//! 3.1, 6.3 and Corollary 6.7) applied to `e·‖x₀ − x*‖²/ε`.

/// The piecewise logarithm of Lemma 6.6.
///
/// Continuous and non-decreasing on all of `R`; `plog(1) = 1` from both
/// branches (`log(e·1) = 1`).
///
/// # Example
///
/// ```
/// use asgd_math::plog;
///
/// assert_eq!(plog(0.5), 0.5);
/// assert_eq!(plog(1.0), 1.0);
/// assert!((plog(std::f64::consts::E) - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn plog(x: f64) -> f64 {
    if x >= 1.0 {
        (std::f64::consts::E * x).ln()
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_branch_below_one() {
        assert_eq!(plog(-3.0), -3.0);
        assert_eq!(plog(0.0), 0.0);
        assert_eq!(plog(0.999), 0.999);
    }

    #[test]
    fn log_branch_above_one() {
        assert!((plog(1.0) - 1.0).abs() < 1e-15);
        assert!((plog(std::f64::consts::E.powi(3)) - 4.0).abs() < 1e-12);
    }

    proptest! {
        /// plog is non-decreasing.
        #[test]
        fn monotone(a in -1e6_f64..1e6, b in -1e6_f64..1e6) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(plog(lo) <= plog(hi) + 1e-12);
        }

        /// plog(x) ≤ x for all x (log(e·x) ≤ x by convexity of exp).
        #[test]
        fn dominated_by_identity(x in -1e6_f64..1e6) {
            prop_assert!(plog(x) <= x + 1e-12);
        }

        /// Continuity at the knee: values straddling 1 stay close.
        #[test]
        fn continuous_at_one(eps in 1e-9_f64..1e-3) {
            prop_assert!((plog(1.0 + eps) - plog(1.0 - eps)).abs() < 10.0 * eps);
        }
    }
}
