//! Quickstart: train linear regression with lock-free SGD on real threads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the headline API: build a workload with known constants,
//! derive the paper's learning rate (Corollary 6.7, Eq. 12) from them, run
//! Hogwild-style SGD on several threads, and compare against the
//! coarse-grained-locking baseline the paper's introduction contrasts with.

use asyncsgd::oracle::MinibatchRegression;
use asyncsgd::prelude::*;
use std::sync::Arc;

fn main() {
    // A synthetic least-squares problem: 2000 points in 64 dimensions,
    // minibatch-64 gradients (compute-heavy iterations — the regime where
    // lock-free parallelism pays, per §8 of the paper).
    let d = 64;
    let oracle =
        Arc::new(MinibatchRegression::synthetic(2_000, d, 0.05, 64, 42).expect("well-conditioned"));
    let consts = oracle.constants(2.0);
    println!("workload: {} with constants {consts}", oracle.name());

    // The paper's worst-case learning rate for an assumed contention level.
    // It is deliberately conservative (built for an adversarial scheduler);
    // benign hardware schedules tolerate far larger steps, so the demo
    // trains with a practical rate and prints the adversarial-safe one.
    let eps = 0.01;
    let (tau_max, n) = (16, 2);
    let safe_alpha = bounds::corollary_6_7_learning_rate(&consts, eps, tau_max, n, d, 1.0);
    println!("Eq. 12 adversarial-safe rate for (τ_max={tau_max}, n={n}): α = {safe_alpha:.3e}");
    let alpha = 0.002;
    println!("training rate used (benign scheduler): α = {alpha}");

    let x0 = vec![0.0; d];
    let iterations = 60_000;

    for threads in [1, 2] {
        let lockfree = Hogwild::new(
            Arc::clone(&oracle),
            HogwildConfig {
                threads,
                iterations,
                alpha,
                seed: 7,
                success_radius_sq: Some(eps),
            },
        )
        .run(&x0);
        let locked = LockedSgd::new(Arc::clone(&oracle), threads, iterations, alpha, 7).run(&x0);
        println!(
            "n={threads}: lock-free {:>9.0} it/s (‖x−x*‖² = {:.2e}) | locked {:>9.0} it/s (‖x−x*‖² = {:.2e}) | ratio {:.2}x",
            lockfree.iterations_per_sec(),
            lockfree.final_dist_sq,
            locked.iterations_per_sec(),
            locked.final_dist_sq,
            lockfree.iterations_per_sec() / locked.iterations_per_sec(),
        );
    }
    println!("note: lock-free scales with cores; the coarse lock serialises and degrades.");
}
