//! **Serving over the wire** — real TCP clients querying live training
//! runs through `asgd-net`, sweeping clients × read mode × hosted models,
//! plus a deliberate saturation cell demonstrating SLO load shedding.
//!
//! Where the `serving` experiment measures the in-process query path,
//! this one puts the socket boundary in the measured path: a
//! [`NetServer`] over a multi-model [`ModelRegistry`], closed-loop
//! dot-score clients for the grid, and an **open-loop overload pair**
//! (fixed-rate predict traffic past capacity against a compute-heavy
//! model, priorities mixed low/normal/high) run with shedding off and
//! on: the off row shows every class collapsing together, the on row
//! shows the shedder refusing low-priority traffic with explicit `Shed`
//! frames so the executed-request p99 holds at the SLO.
//!
//! Full (non-quick) runs write `BENCH_net.json` into the current
//! directory — the committed wire-serving artifact.

use crate::ExperimentOutput;
use asgd_driver::json::Value;
use asgd_driver::{BackendKind, RunSpec};
use asgd_metrics::table::fmt_f;
use asgd_metrics::Table;
use asgd_net::{
    run_net_workload, NetConfig, NetOp, NetServer, NetWorkloadSpec, Priority, SloPolicy,
};
use asgd_oracle::OracleSpec;
use asgd_serve::{Arrival, ModelRegistry, ReadMode};
use std::sync::Arc;
use std::time::Duration;

/// Model dimension of the grid cells (matches the in-process `serving`
/// experiment, so the socket tax is directly readable by comparison).
pub const DIM: usize = 4_096;

/// Model dimension of the overload cells. Deliberately large: a predict
/// walks the whole iterate, so service time (~hundreds of µs) dominates
/// scheduling noise and the shedder's feedback loop genuinely controls
/// the executed-request p99 it observes. With a small model the latency
/// tail is thread-preemption, which no admission policy can remove.
pub const OVERLOAD_DIM: usize = 262_144;

/// The overload cell's latency objective on executed requests, in ns.
pub const OVERLOAD_SLO_NS: u64 = 5_000_000; // 5 ms

/// One measured wire-serving configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"grid"` (closed-loop dot-score), `"overload"` (open-loop predict
    /// at a fixed rate past capacity, mixed priorities, SLO shedding on)
    /// or `"overload-unshed"` (identical traffic, shedding off — the
    /// uncontrolled baseline the shed cell is read against).
    pub cell: &'static str,
    /// Model dimension hosted by the cell.
    pub dim: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// `"live"` or `"snapshot"` (every model in the cell).
    pub mode: &'static str,
    /// Hosted models in the registry (clients round-robin across them).
    pub models: usize,
    /// Arrival label (`closed-loop` / `rate:QPS` per client).
    pub arrival: String,
    /// Op label.
    pub op: &'static str,
    /// Requests put on the wire.
    pub sent: u64,
    /// Requests answered with a value.
    pub answered: u64,
    /// Requests refused with a `Shed` frame.
    pub shed: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Answered throughput (requests/s).
    pub qps: f64,
    /// Median answered latency (ns; client-side, queueing included).
    pub p50_ns: u64,
    /// 99th-percentile answered latency (ns).
    pub p99_ns: u64,
    /// High-priority-class p99 (ns; equals `p99_ns` for grid cells).
    pub high_p99_ns: u64,
    /// The SLO on executed requests (ns; 0 = shedding off).
    pub slo_ns: u64,
    /// The server's rolling p99 over executed requests at window close
    /// (ns; 0 = not enough samples). This is the quantity the SLO
    /// governs — client-side latency additionally pays queueing.
    pub server_p99_ns: u64,
}

/// Builds a registry hosting `models` training runs (one trainer thread
/// each — cells must not oversubscribe the measurement machine more than
/// the sweep intends).
fn build_registry(dim: usize, models: usize, mode: ReadMode) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    for m in 0..models {
        let train = RunSpec::new(
            OracleSpec::new("sparse-quadratic", dim).sigma(0.0),
            BackendKind::Hogwild,
        )
        .threads(1)
        .iterations(u64::MAX / 2)
        .learning_rate(0.5 / dim as f64)
        .x0(vec![1.0; dim])
        .seed(0x5E1_F00D + m as u64);
        registry
            .create(&format!("model-{m}"), &train, mode, 2_048)
            .expect("sweep model starts");
    }
    registry
}

/// Runs one cell: fresh registry, fresh server, one socket workload.
fn run_cell(
    cell: &'static str,
    dim: usize,
    clients: usize,
    mode: ReadMode,
    models: usize,
    spec_for: impl FnOnce(Vec<u32>) -> NetWorkloadSpec,
    config: NetConfig,
) -> Row {
    let registry = build_registry(dim, models, mode);
    let ids: Vec<u32> = registry.list().iter().map(|e| e.id().0).collect();
    let server = NetServer::serve(Arc::clone(&registry), config).expect("server binds loopback");
    let spec = spec_for(ids);
    let report = run_net_workload(server.local_addr(), &spec).expect("workload cell runs");
    let stats = server.stats();
    server.stop();
    registry.shutdown();
    let high_p99_ns = report
        .classes
        .iter()
        .rev() // classes are lowest-priority first
        .find(|c| c.answered > 0)
        .map_or(0, |c| c.latency.p99_ns);
    Row {
        cell,
        dim,
        clients,
        mode: mode.label(),
        models,
        arrival: report.arrival.clone(),
        op: spec.op.label(),
        sent: report.sent,
        answered: report.answered,
        shed: report.shed,
        errors: report.errors,
        qps: report.qps,
        p50_ns: report.latency.p50_ns,
        p99_ns: report.latency.p99_ns,
        high_p99_ns,
        slo_ns: server
            .shedder()
            .policy()
            .slo
            .map_or(0, |s| s.as_nanos().min(u128::from(u64::MAX)) as u64),
        server_p99_ns: stats.rolling_p99_ns.unwrap_or(0),
    }
}

/// Runs the sweep serially (each cell owns the machine).
#[must_use]
pub fn sweep(quick: bool) -> Vec<Row> {
    // Cell duration bounds the gate's noise floor: closed-loop qps on a
    // shared core swings ~2x between back-to-back 80 ms windows, so the
    // quick cells `bench-check` re-runs need a long enough window to sit
    // inside the 30% tolerance, and the committed full cells longer still.
    let (client_counts, model_counts, secs) = if quick {
        (vec![1, 4], vec![1, 2], 0.25)
    } else {
        (vec![1, 4, 16], vec![1, 4], 1.0)
    };
    let mut rows = Vec::new();
    for &clients in &client_counts {
        for mode in [ReadMode::Live, ReadMode::Snapshot] {
            for &models in &model_counts {
                rows.push(run_cell(
                    "grid",
                    DIM,
                    clients,
                    mode,
                    models,
                    |ids| {
                        NetWorkloadSpec::new(ids)
                            .clients(clients)
                            .duration_secs(secs)
                            .op(NetOp::DotScore)
                            .probe_len(8)
                            .seed(0xCAFE)
                    },
                    NetConfig::default(),
                ));
            }
        }
    }
    rows.extend(overload_cells(quick));
    rows
}

/// The deliberate saturation pair: identical open-loop predict traffic
/// past single-core capacity (one third of the clients in each priority
/// class), run once with shedding off and once with the SLO on. The
/// demonstration the committed artifact carries is the contrast: unshed,
/// every class's latency collapses together; shed, low-priority traffic
/// is refused with explicit frames and the server's executed-request p99
/// holds at the objective for the admitted classes.
#[must_use]
pub fn overload_cells(quick: bool) -> Vec<Row> {
    let (dim, clients, rate, secs) = if quick {
        (32_768, 6, 2_000.0, 0.25)
    } else {
        (OVERLOAD_DIM, 6, 600.0, 2.0)
    };
    let cell = |name: &'static str, config: NetConfig| {
        run_cell(
            name,
            dim,
            clients,
            ReadMode::Snapshot,
            1,
            |ids| {
                NetWorkloadSpec::new(ids)
                    .clients(clients)
                    .duration_secs(secs)
                    .arrival(Arrival::FixedRate { qps: rate })
                    .op(NetOp::Predict)
                    // Client i sends at priorities[i % len]: with six
                    // clients this pins 3×Low / 2×Normal / 1×High, so
                    // the degraded tiers carry 1/2 and 1/6 of the
                    // offered load — room for the admitted classes to
                    // actually meet the objective once Low is refused.
                    .priorities(vec![
                        Priority::Low,
                        Priority::Low,
                        Priority::Low,
                        Priority::Normal,
                        Priority::Normal,
                        Priority::High,
                    ])
                    .seed(0xBAD_10AD)
            },
            config.max_connections(clients + 4),
        )
    };
    vec![
        cell("overload-unshed", NetConfig::default()),
        cell(
            "overload",
            NetConfig::default().slo(SloPolicy {
                slo: Some(Duration::from_nanos(OVERLOAD_SLO_NS)),
                // Shed at 70% of the objective: the threshold controller
                // regulates the rolling p99 to its trigger, so the
                // headroom is what keeps the settled value *inside* the
                // declared SLO rather than hovering at it.
                trigger_ratio: 0.7,
                release_ratio: 0.85,
                window_buckets: 8,
                bucket_capacity: 128,
                min_samples: 64,
            }),
        ),
    ]
}

/// Serialises the sweep to the `BENCH_net.json` value tree.
#[must_use]
pub fn to_json(rows: &[Row]) -> Value {
    Value::obj([
        ("experiment", Value::Str("serving-net".to_string())),
        ("backend", Value::Str("hogwild".to_string())),
        ("oracle", Value::Str("sparse-quadratic".to_string())),
        ("dim", Value::U64(DIM as u64)),
        ("transport", Value::Str("tcp-loopback".to_string())),
        (
            "rows",
            Value::Arr(
                rows.iter()
                    .map(|r| {
                        Value::obj([
                            ("cell", Value::Str(r.cell.to_string())),
                            ("dim", Value::U64(r.dim as u64)),
                            ("clients", Value::U64(r.clients as u64)),
                            ("mode", Value::Str(r.mode.to_string())),
                            ("models", Value::U64(r.models as u64)),
                            ("arrival", Value::Str(r.arrival.clone())),
                            ("op", Value::Str(r.op.to_string())),
                            ("sent", Value::U64(r.sent)),
                            ("answered", Value::U64(r.answered)),
                            ("shed", Value::U64(r.shed)),
                            ("errors", Value::U64(r.errors)),
                            ("qps", Value::f64(r.qps)),
                            ("p50_ns", Value::U64(r.p50_ns)),
                            ("p99_ns", Value::U64(r.p99_ns)),
                            ("high_p99_ns", Value::U64(r.high_p99_ns)),
                            ("slo_ns", Value::U64(r.slo_ns)),
                            ("server_p99_ns", Value::U64(r.server_p99_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs the experiment. Non-quick runs also write `BENCH_net.json` into
/// the current directory.
#[must_use]
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("serving-net");
    let rows = sweep(quick);
    let mut table = Table::new(
        "Serving over TCP loopback: wire-protocol clients vs live hogwild training (sparse-quadratic, multi-model registry)",
        &[
            "cell", "dim", "clients", "mode", "models", "arrival", "op", "sent", "answered",
            "shed", "qps", "p50 µs", "p99 µs", "high p99 µs", "srv p99 µs", "slo µs",
        ],
    );
    for r in &rows {
        table.row(&[
            r.cell.to_string(),
            r.dim.to_string(),
            r.clients.to_string(),
            r.mode.to_string(),
            r.models.to_string(),
            r.arrival.clone(),
            r.op.to_string(),
            r.sent.to_string(),
            r.answered.to_string(),
            r.shed.to_string(),
            fmt_f(r.qps),
            format!("{:.1}", r.p50_ns as f64 / 1e3),
            format!("{:.1}", r.p99_ns as f64 / 1e3),
            format!("{:.1}", r.high_p99_ns as f64 / 1e3),
            format!("{:.1}", r.server_p99_ns as f64 / 1e3),
            format!("{:.1}", r.slo_ns as f64 / 1e3),
        ]);
    }
    out.tables.push(table);
    if let Some(over) = rows.iter().find(|r| r.cell == "overload") {
        out.notes.push(format!(
            "[overload] offered {} reqs, answered {}, shed {} ({}%); server executed-request p99 {:.1} µs against a {:.1} µs SLO",
            over.sent,
            over.answered,
            over.shed,
            (over.shed * 100).checked_div(over.sent).unwrap_or(0),
            over.server_p99_ns as f64 / 1e3,
            over.slo_ns as f64 / 1e3,
        ));
        if let Some(base) = rows.iter().find(|r| r.cell == "overload-unshed") {
            out.notes.push(format!(
                "[overload] same traffic unshed: client p99 {:.1} µs vs {:.1} µs shed ({:.1}x); server p99 {:.1} µs vs {:.1} µs",
                base.p99_ns as f64 / 1e3,
                over.p99_ns as f64 / 1e3,
                if over.p99_ns > 0 { base.p99_ns as f64 / over.p99_ns as f64 } else { 0.0 },
                base.server_p99_ns as f64 / 1e3,
                over.server_p99_ns as f64 / 1e3,
            ));
        }
    }
    if !quick {
        let path = std::path::Path::new("BENCH_net.json");
        match std::fs::write(path, to_json(&rows).to_json_pretty() + "\n") {
            Ok(()) => out.notes.push(format!("[json] {}", path.display())),
            Err(e) => out
                .notes
                .push(format!("[json] failed to write {}: {e}", path.display())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_grid_and_overload_and_round_trips_json() {
        let rows = sweep(true);
        assert_eq!(rows.len(), 2 * 2 * 2 + 2, "grid cells + overload pair");
        assert!(rows.iter().any(|r| r.mode == "live"));
        assert!(rows.iter().any(|r| r.mode == "snapshot"));
        for r in rows.iter().filter(|r| r.cell == "grid") {
            assert!(r.answered > 0, "{r:?}: nothing answered");
            assert_eq!(r.errors, 0, "{r:?}: grid traffic must not error");
            assert_eq!(r.shed, 0, "{r:?}: shedding is off for grid cells");
            assert!(r.qps > 0.0, "{r:?}");
            assert!(r.p99_ns >= r.p50_ns, "{r:?}: percentile order");
        }
        let base = rows
            .iter()
            .find(|r| r.cell == "overload-unshed")
            .expect("baseline cell");
        assert_eq!(base.slo_ns, 0, "{base:?}: baseline runs with shedding off");
        assert_eq!(base.shed, 0, "{base:?}: nothing to shed without an SLO");
        let over = rows.iter().find(|r| r.cell == "overload").expect("cell");
        assert!(over.sent > 0 && over.answered > 0, "{over:?}");
        assert_eq!(over.slo_ns, OVERLOAD_SLO_NS);
        assert_eq!(
            over.errors, 0,
            "{over:?}: overload answers are shed, not errors"
        );
        // Whether shedding engages in a sub-second quick cell is machine-
        // dependent; the committed BENCH_net.json carries the full-run
        // demonstration. Structure must hold either way:
        assert_eq!(
            over.sent,
            over.answered + over.shed + over.errors,
            "{over:?}: every request gets an explicit outcome"
        );
        let json = to_json(&rows).to_json();
        let back = asgd_driver::json::parse(&json).expect("valid JSON");
        assert_eq!(
            back.get("rows").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(rows.len())
        );
    }
}
